"""The balanced-checkbook tableau of Figure 3 / Example 2.4, plus containment.

Run:  python examples/checkbook.py
"""

from fractions import Fraction

from repro import GeneralizedDatabase, RealPolynomialTheory
from repro.constraints.real_poly import poly_eq
from repro.poly.polynomial import Polynomial
from repro.tableaux.containment import contained_linear, evaluate_tableau, find_homomorphism
from repro.tableaux.tableau import TableauQuery, checkbook_query


def main() -> None:
    theory = RealPolynomialTheory()
    query = checkbook_query()
    print("the Figure 3 tableau (normal form: distinct variables + constraints):")
    print(query)
    print()

    db = GeneralizedDatabase(theory)
    expenses = db.create_relation("Expenses", ("z", "f", "r", "m"))
    savings = db.create_relation("Savings", ("z", "s", "d1", "d2"))
    income = db.create_relation("Income", ("z", "w", "i", "d3"))

    # user 1: food 300 + rent 900 + misc 100 + savings 200 = wages 1450 + interest 50
    expenses.add_point([1, 300, 900, 100])
    savings.add_point([1, 200, 0, 0])
    income.add_point([1, 1450, 50, 0])
    # user 2: the books do not balance
    expenses.add_point([2, 300, 900, 100])
    savings.add_point([2, 200, 0, 0])
    income.add_point([2, 1400, 50, 0])

    result = evaluate_tableau(query, db)
    print("balanced users:")
    for user in (1, 2):
        status = "balanced" if result.contains_values([Fraction(user)]) else "NOT balanced"
        print(f"  user {user}: {status}")
    assert result.contains_values([Fraction(1)])
    assert not result.contains_values([Fraction(2)])
    print()

    # Theorem 2.6 in action: a stricter checkbook (no interest: i = 0) is
    # contained in the general one, witnessed by a homomorphism
    strict = TableauQuery(
        query.summary,
        query.rows,
        query.constraints
        + (poly_eq(Polynomial.variable(_income_interest_var(query)), 0),),
        name="BalancedNoInterest",
    )
    print("containment (Theorem 2.6): BalancedNoInterest vs Balanced")
    print("  strict <= general:", contained_linear(strict, query))
    print("  general <= strict:", contained_linear(query, strict))
    witness = find_homomorphism(query, strict)
    print(f"  homomorphism witness maps {len(witness)} symbols")
    assert contained_linear(strict, query)
    assert not contained_linear(query, strict)


def _income_interest_var(query: TableauQuery) -> str:
    # the Income row's third column is the interest variable
    income_row = next(r for r in query.rows if r.tag == "Income")
    return income_row.symbols[2]


if __name__ == "__main__":
    main()
