"""Quickstart: the rectangle-intersection query of Example 1.1 / Figure 2.

A generalized tuple is a conjunction of constraints; a rectangle named n is
simply the ternary generalized tuple

    Rect(z, x, y)  with  z = n and a <= x <= c and b <= y <= d

and "the set of all intersecting rectangles can now be expressed as

    { (n1, n2) | n1 != n2 and exists x, y (Rect(n1,x,y) and Rect(n2,x,y)) }"

-- one line, no case analysis, and the same program works for any shapes.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import DenseOrderTheory, GeneralizedDatabase, evaluate_calculus
from repro.logic.parser import parse_query


def main() -> None:
    order = DenseOrderTheory()
    db = GeneralizedDatabase(order)

    rect = db.create_relation("Rect", ("n", "x", "y"))
    rectangles = {
        1: (0, 0, 4, 4),
        2: (3, 3, 7, 7),  # overlaps 1
        3: (5, 0, 9, 2),  # overlaps nothing but 4
        4: (8, 1, 12, 6),  # overlaps 3 and 5
        5: (10, 5, 13, 9),  # overlaps 4
    }
    for name, (a, b, c, d) in rectangles.items():
        rect.add_tuple(
            [
                order.eq("n", name),
                order.le(a, "x"),
                order.le("x", c),
                order.le(b, "y"),
                order.le("y", d),
            ]
        )

    query = parse_query(
        "exists x, y . Rect(n1, x, y) and Rect(n2, x, y) and n1 != n2",
        theory=order,
    )
    result = evaluate_calculus(query, db, output=("n1", "n2"))

    print("generalized database: 5 rectangles as generalized tuples")
    print(rect)
    print()
    print("query: exists x, y . Rect(n1,x,y) and Rect(n2,x,y) and n1 != n2")
    print()
    print("intersecting pairs (closed-form output, a generalized relation):")
    pairs = sorted(
        (m, n)
        for m in rectangles
        for n in rectangles
        if result.contains_values([Fraction(m), Fraction(n)])
    )
    for m, n in pairs:
        if m < n:
            print(f"  rectangle {m} intersects rectangle {n}")
    expected = {(1, 2), (3, 4), (4, 5)}
    assert {(m, n) for m, n in pairs if m < n} == expected
    print()
    print("output relation representation:")
    print(result)


if __name__ == "__main__":
    main()
