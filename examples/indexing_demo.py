"""Generalized 1-dimensional indexing (Section 1.1, point (3)).

Every generalized tuple projects onto an attribute as one interval (its
*generalized key*); a range search then touches only the tuples whose keys
intersect the query range, via an interval tree -- versus the paper's
"trivial, but inefficient, solution" of conjoining the range constraint to
every tuple.

Run:  python examples/indexing_demo.py
"""

import time
from fractions import Fraction

from repro.constraints.dense_order import DenseOrderTheory, eq, le
from repro.core.generalized import GeneralizedRelation
from repro.indexing.generalized_index import (
    GeneralizedIndex1D,
    NaiveGeneralizedSearch,
    tuple_projection_interval,
)
from repro.indexing.priority_search_tree import PrioritySearchTree


def main() -> None:
    order = DenseOrderTheory()
    relation = GeneralizedRelation("Spans", ("n", "x"), order)
    count = 400
    for i in range(count):
        relation.add_tuple([eq("n", i), le(5 * i, "x"), le("x", 5 * i + 8)])

    print(f"{count} generalized tuples; keys are their x-projections:")
    sample = next(iter(relation))
    key = tuple_projection_interval(sample, "x", order)
    print(f"  e.g. tuple {sample}")
    print(f"       has generalized key {key}")
    print()

    index = GeneralizedIndex1D(relation, "x")
    naive = NaiveGeneralizedSearch(relation, "x")

    low, high = 1000, 1030
    start = time.perf_counter()
    indexed_hits = index.candidates(low, high)
    indexed_time = time.perf_counter() - start
    start = time.perf_counter()
    naive_hits = naive.candidates(low, high)
    naive_time = time.perf_counter() - start

    assert {id(t) for t in indexed_hits} == {id(t) for t in naive_hits}
    print(f"range search x in [{low}, {high}]:")
    print(f"  interval-tree index: {len(indexed_hits)} tuples in {indexed_time*1e6:.0f} us")
    print(f"  naive linear scan:   {len(naive_hits)} tuples in {naive_time*1e6:.0f} us")
    print()

    result = index.search(low, high)
    print("closed-form search result (range constraint conjoined to hits only):")
    for item in result:
        print(f"  {item}")
    print()

    # the same data through McCreight's priority search tree
    intervals = [
        tuple_projection_interval(item, "x", order) for item in relation
    ]
    pst = PrioritySearchTree.for_intervals(intervals)
    stabbed = pst.stab_intervals(Fraction(1004))
    print(f"priority-search-tree stabbing query at x = 1004: {len(stabbed)} interval(s)")
    for interval in stabbed:
        print(f"  {interval}")


if __name__ == "__main__":
    main()
