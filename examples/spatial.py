"""Spatial queries with real polynomial constraints (Sections 2.1, Examples
2.1 and 2.2): convex hull as a relational calculus query, disk intersection,
and the Voronoi dual.

Run:  python examples/spatial.py
"""

from fractions import Fraction

from repro import GeneralizedDatabase, RealPolynomialTheory, evaluate_calculus
from repro.constraints.real_poly import poly_eq, poly_le
from repro.geometry.convex_hull import convex_hull_graham, in_triangle
from repro.geometry.voronoi import voronoi_dual_naive
from repro.logic.parser import parse_query
from repro.poly.polynomial import Polynomial


def convex_hull_as_query() -> None:
    """Example 2.1: a point is on the hull iff no 3 db points triangle it.

    The Intriangle predicate is a polynomial constraint formula; here we run
    Floyd's method directly with the same exact orientation predicates the
    constraint formula denotes, and cross-check with Graham scan.
    """
    points = [
        (Fraction(0), Fraction(0)),
        (Fraction(6), Fraction(1)),
        (Fraction(5), Fraction(6)),
        (Fraction(1), Fraction(5)),
        (Fraction(3), Fraction(3)),  # interior
        (Fraction(2), Fraction(2)),  # interior
    ]
    hull = []
    for p in points:
        others = [q for q in points if q != p]
        import itertools

        inside = any(
            in_triangle(p, a, b, c)
            for a, b, c in itertools.combinations(others, 3)
            if not _collinear(a, b, c)
        )
        if not inside:
            hull.append(p)
    fast = set(convex_hull_graham(points))
    assert set(hull) == fast
    print("convex hull (Floyd's method = the Example 2.1 query semantics):")
    for p in hull:
        print(f"  ({p[0]}, {p[1]})")
    print()


def _collinear(a, b, c) -> bool:
    return (b[0] - a[0]) * (c[1] - a[1]) == (b[1] - a[1]) * (c[0] - a[0])


def disk_intersection() -> None:
    """Example 1.1 for non-rectangles: the same program intersects disks."""
    theory = RealPolynomialTheory()
    db = GeneralizedDatabase(theory)
    disks = db.create_relation("Shape", ("n", "x", "y"))
    x, y, n = (Polynomial.variable(v) for v in ("x", "y", "n"))
    definitions = {
        1: poly_le(x * x + y * y, 4),                      # disk at origin, r=2
        2: poly_le((x - 3) ** 2 + y * y, 4),               # disk at (3,0), r=2
        3: poly_le((x - 10) ** 2 + (y - 10) ** 2, 1),      # far away
    }
    for name, constraint in definitions.items():
        disks.add_tuple([poly_eq(n, name), constraint])
    query = parse_query(
        "exists x, y . Shape(n1, x, y) and Shape(n2, x, y) and n1 != n2",
        theory=theory,
    )
    result = evaluate_calculus(query, db, output=("n1", "n2"))
    print("disk intersections (same one-line program as rectangles):")
    for a in definitions:
        for b in definitions:
            if a < b and result.contains_values([Fraction(a), Fraction(b)]):
                print(f"  disk {a} intersects disk {b}")
    assert result.contains_values([Fraction(1), Fraction(2)])
    assert not result.contains_values([Fraction(1), Fraction(3)])
    print()


def voronoi_dual() -> None:
    """Example 2.2: u, v adjacent iff the segment uv is closest to u or v."""
    points = [
        (Fraction(0), Fraction(0)),
        (Fraction(4), Fraction(0)),
        (Fraction(2), Fraction(3)),
        (Fraction(2), Fraction(-3)),
    ]
    dual = voronoi_dual_naive(points)
    print("Voronoi dual (Delaunay adjacency) of 4 points:")
    seen = set()
    for u, v in sorted(dual):
        if (v, u) in seen:
            continue
        seen.add((u, v))
        print(f"  ({u[0]},{u[1]}) -- ({v[0]},{v[1]})")
    print()


def circle_projection() -> None:
    """Quantifier elimination in action: the shadow of a circle."""
    theory = RealPolynomialTheory()
    db = GeneralizedDatabase(theory)
    x, y = Polynomial.variable("x"), Polynomial.variable("y")
    circle = db.create_relation("C", ("x", "y"))
    circle.add_tuple([poly_eq(x * x + y * y, 1)])
    query = parse_query("exists y . C(x, y)", theory=theory)
    shadow = evaluate_calculus(query, db, output=("x",))
    print("projection of the unit circle onto the x-axis:")
    for value in (-2, -1, 0, 1, 2):
        mark = "in" if shadow.contains_values([Fraction(value)]) else "out"
        print(f"  x = {value}: {mark}")
    assert shadow.contains_values([Fraction(1)])
    assert not shadow.contains_values([Fraction(2)])


def main() -> None:
    convex_hull_as_query()
    disk_intersection()
    voronoi_dual()
    circle_projection()


if __name__ == "__main__":
    main()
