"""Query optimization in the CQL framework (Section 6, open question (3)).

The paper asks "how do various optimization methods combine with our
framework?" and cites Ramakrishnan's magic templates [44].  This example
runs the two optimizers implemented here on the same workload:

* **selection propagation / join ordering** for calculus queries -- the
  selective conjuncts are evaluated first, keeping intermediate generalized
  relations small;
* **magic sets** for Datalog -- a reachability query bound to one source
  only explores the relevant component of the graph.

Run:  python examples/optimization.py
"""

import time
from fractions import Fraction

from repro import DatalogProgram, DenseOrderTheory, GeneralizedDatabase
from repro.constraints.dense_order import lt
from repro.core.calculus import evaluate_calculus
from repro.core.magic import MagicQuery, answer_magic_query, magic_rewrite
from repro.core.optimize import optimize
from repro.logic.parser import parse_rules
from repro.logic.syntax import And, RelationAtom

order = DenseOrderTheory()


def selection_propagation() -> None:
    db = GeneralizedDatabase(order)
    big = db.create_relation("Big", ("x", "y"))
    for i in range(40):
        big.add_point([i, i + 1])
    small = db.create_relation("Small", ("x",))
    small.add_point([3])

    query = And(
        (RelationAtom("Big", ("x", "y")), RelationAtom("Small", ("x",)), lt("y", 10))
    )
    rewritten = optimize(query, db)

    start = time.perf_counter()
    base = evaluate_calculus(query, db)
    base_time = time.perf_counter() - start
    start = time.perf_counter()
    fast = evaluate_calculus(rewritten, db, output=base.variables)
    fast_time = time.perf_counter() - start

    point = {"x": Fraction(3), "y": Fraction(4)}
    assert base.contains_point(point) and fast.contains_point(point)
    print("selection propagation (calculus):")
    print(f"  original order:  Big |x| Small |x| sigma  -> {base_time*1000:.1f}ms")
    print(f"  optimized order: sigma, Small, Big        -> {fast_time*1000:.1f}ms")
    print()


def magic_sets() -> None:
    # two disconnected chains; the query asks for reachability from node 0
    db = GeneralizedDatabase(order)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(12):
        edge.add_point([i, i + 1])          # relevant chain
        edge.add_point([100 + i, 101 + i])  # irrelevant chain
    rules = parse_rules(
        """
        T(x, y) :- E(x, y).
        T(x, y) :- T(x, z), E(z, y).
        """,
        theory=order,
    )

    start = time.perf_counter()
    full_world, full_stats = DatalogProgram(rules, order).evaluate(db)
    full_time = time.perf_counter() - start

    query = MagicQuery("T", 2, {0: 0})
    start = time.perf_counter()
    answers = answer_magic_query(rules, query, db)
    magic_time = time.perf_counter() - start

    assert answers.contains_values([Fraction(0), Fraction(12)])
    assert not answers.contains_values([Fraction(100), Fraction(101)])
    print("magic sets (Datalog, query T(0, y)):")
    print(
        f"  full bottom-up: {len(full_world.relation('T'))} tuples, "
        f"{full_stats.tuples_added} added, {full_time*1000:.0f}ms"
    )
    rewritten, answer_name = magic_rewrite(rules, query, order)
    world = db.copy()
    world.create_relation("_magic_T_bf", ("_m0",)).add_point([0])
    magic_world, magic_stats = DatalogProgram(rewritten, order).evaluate(world)
    print(
        f"  magic rewrite:  {len(magic_world.relation(answer_name))} tuples, "
        f"{magic_stats.tuples_added} added, {magic_time*1000:.0f}ms"
    )
    print("  only the component reachable from node 0 is ever explored")


def main() -> None:
    selection_propagation()
    magic_sets()


if __name__ == "__main__":
    main()
