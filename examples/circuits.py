"""Boolean equality constraints: the adder and parity examples of Section 5.

Example 5.4 builds a full adder from two half-adders by bottom-up Datalog
evaluation with Boole's-lemma quantifier elimination; Example 5.5
instantiates it parametrically; Example 5.7 computes the parity of n
parametric bits.

Run:  python examples/circuits.py
"""

from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.boolean_algebra.datalog_bool import (
    BodyAtom,
    BooleanDatalogProgram,
    BooleanRule,
)
from repro.boolean_algebra.terms import (
    BAnd,
    BConst,
    BOr,
    BVar,
    BXor,
    table_evaluate,
)


def adder() -> None:
    b0 = FreeBooleanAlgebra()  # the two-element algebra {0, 1}
    program = BooleanDatalogProgram(b0)

    x, y, z, w = BVar("x"), BVar("y"), BVar("z"), BVar("w")
    # Halfadder(x, y, z, w) :- (x ^ y ^ z) | ((x & y) ^ w) = 0
    program.add_fact(
        "Halfadder",
        ["x", "y", "z", "w"],
        BOr(BXor(BXor(x, y), z), BXor(BAnd(x, y), w)),
    )
    # Adder(x,y,c,s,d) :- Halfadder(x,y,s1,c1), Halfadder(s1,c,s,c2), d = c1|c2
    program.add_rule(
        BooleanRule(
            head_predicate="Adder",
            head_arguments=("x", "y", "c", "s", "d"),
            body=(
                BodyAtom("Halfadder", ("x", "y", "s1", "c1")),
                BodyAtom("Halfadder", ("s1", "c", "s", "c2")),
            ),
            constraint=BXor(BVar("d"), BOr(BVar("c1"), BVar("c2"))),
        )
    )
    facts = program.evaluate()
    (fact,) = facts["Adder"]
    names = fact.variable_names()
    print("full adder derived by bottom-up evaluation (Example 5.4):")
    print("  x y c | s d")
    for mask in range(8):
        bits = [bool(mask & (1 << k)) for k in range(3)]
        x_in, y_in, c_in = (b0.from_bool(b) for b in bits)
        s_out = b0.xor(b0.xor(x_in, y_in), c_in)
        d_out = b0.join(
            b0.join(b0.meet(x_in, y_in), b0.meet(x_in, c_in)), b0.meet(y_in, c_in)
        )
        env = dict(zip(names, [x_in, y_in, c_in, s_out, d_out]))
        assert b0.is_zero(table_evaluate(fact.table, names, b0, env))
        print(
            f"  {int(bits[0])} {int(bits[1])} {int(bits[2])} | "
            f"{int(s_out == b0.one())} {int(d_out == b0.one())}"
        )
    print()


def parity(n: int = 4) -> None:
    """Example 5.7: the parity of n parametric bits, derived recursively."""
    algebra = FreeBooleanAlgebra.with_generators(n)
    program = BooleanDatalogProgram(algebra)
    program.add_fact("Parity1", ["x"], BXor(BVar("x"), BConst("c0")))
    for i in range(2, n + 1):
        program.add_rule(
            BooleanRule(
                head_predicate=f"Parity{i}",
                head_arguments=("x",),
                body=(BodyAtom(f"Parity{i-1}", ("y",)),),
                constraint=BXor(BVar("x"), BXor(BVar("y"), BConst(f"c{i-1}"))),
            )
        )
    facts = program.evaluate()
    (fact,) = facts[f"Parity{n}"]
    # the parametric answer: x = c0 ^ c1 ^ ... ^ c_{n-1}
    expected = algebra.zero()
    for i in range(n):
        expected = algebra.xor(expected, algebra.generator(i))
    value = table_evaluate(fact.table, ("_0",), algebra, {"_0": expected})
    assert algebra.is_zero(value)
    print(f"parity of {n} parametric bits (Example 5.7):")
    print(f"  derived constraint has the unique solution x = c0 ^ ... ^ c{n-1}")
    # Remark G: interpret the parametric fact over B_0 for every input
    b0 = FreeBooleanAlgebra()
    print("  interpreted truth table:")
    for mask in range(2**n):
        images = [b0.from_bool(bool(mask & (1 << i))) for i in range(n)]
        interpreted = program.interpret_fact(fact, images, b0)
        answer = None
        for candidate in (b0.zero(), b0.one()):
            if b0.is_zero(
                table_evaluate(interpreted.table, ("_0",), b0, {"_0": candidate})
            ):
                answer = candidate
        parity_bit = int(answer == b0.one())
        expected_bit = bin(mask).count("1") % 2
        assert parity_bit == expected_bit
        if mask < 4 or mask == 2**n - 1:
            bits = "".join(str((mask >> i) & 1) for i in range(n))
            print(f"    bits {bits} -> parity {parity_bit}")
    print("    ... (all 2^n rows verified)")


def main() -> None:
    adder()
    parity(4)


if __name__ == "__main__":
    main()
