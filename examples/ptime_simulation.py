"""Datalog-not + dense order computing PTIME queries (Theorem 3.15 territory).

Theorem 3.15: inflationary Datalog-not with dense linear order expresses
*exactly* the PTIME relational queries.  This example runs a classical PTIME
query that pure relational calculus cannot express (it needs recursion) and
pure positive Datalog cannot express either (it needs negation):
*unreachability* -- the complement of the transitive closure.

The program is stratified (negation applies to the fully computed closure),
which is the well-behaved fragment of Datalog-not; the engine also supports
the paper's inflationary semantics (used by the win-move example in the
tests, where negation recurses).

Run:  python examples/ptime_simulation.py
"""

from fractions import Fraction

from repro import DatalogProgram, DenseOrderTheory, GeneralizedDatabase
from repro.logic.parser import parse_rules


def reference_unreachable(edges: list[tuple[int, int]], nodes: list[int]):
    """Plain BFS complement, the PTIME reference."""
    adjacency: dict[int, list[int]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
    unreachable = set()
    for source in nodes:
        seen = set()
        stack = [source]
        while stack:
            node = stack.pop()
            for successor in adjacency.get(node, []):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        for target in nodes:
            if target not in seen:
                unreachable.add((source, target))
    return unreachable


def main() -> None:
    order = DenseOrderTheory()
    edges = [(1, 2), (2, 3), (3, 1), (4, 5)]  # a 3-cycle and a separate edge
    nodes = [1, 2, 3, 4, 5]

    db = GeneralizedDatabase(order)
    edge_rel = db.create_relation("E", ("x", "y"))
    for a, b in edges:
        edge_rel.add_point([a, b])
    node_rel = db.create_relation("V", ("x",))
    for n in nodes:
        node_rel.add_point([n])

    program = DatalogProgram(
        parse_rules(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            U(x, y) :- V(x), V(y), not T(x, y).
            """,
            theory=order,
        ),
        order,
    )
    strata = program.stratify()
    assert strata is not None and len(strata) == 2
    print("program (stratified Datalog-not + dense order):")
    print("    T(x,y) :- E(x,y).")
    print("    T(x,y) :- T(x,z), E(z,y).")
    print("    U(x,y) :- V(x), V(y), not T(x,y).")
    print(f"  strata: {[len(s) for s in strata]} rules per stratum")
    print()

    world, stats = program.evaluate(db)
    u = world.relation("U")
    expected = reference_unreachable(edges, nodes)
    print("unreachable pairs (x cannot reach y):")
    mismatches = 0
    for x in nodes:
        for y in nodes:
            datalog_says = u.contains_values([Fraction(x), Fraction(y)])
            reference = (x, y) in expected
            if datalog_says != reference:
                mismatches += 1
            if datalog_says:
                print(f"  {x} -/-> {y}")
    assert mismatches == 0, "Datalog-not disagrees with the BFS reference"
    print()
    print(f"fixpoint in {stats.iterations} rounds, {stats.tuples_added} tuples added")
    print("stratified Datalog-not agrees with the PTIME reference algorithm")


if __name__ == "__main__":
    main()
