"""Experiment F1: the CQL framework of Figure 1 -- closed form, bottom-up.

Paper claim: for every input generalized database, the output of a query
program is again a generalized relation (closed form), produced bottom-up.
Measured: over randomized dense-order inputs, a query with quantifiers,
negation and disjunction always yields a generalized relation whose
membership agrees with direct pointwise evaluation of the query semantics;
the Herbrand T_P evaluation (Section 3.2) agrees with the engine.
"""

from fractions import Fraction


from benchmarks.conftest import bench_seed, report
from repro.constraints.dense_order import DenseOrderTheory
from repro.core.calculus import evaluate_calculus
from repro.core.datalog import DatalogProgram
from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation
from repro.core.herbrand import HerbrandProgram
from repro.logic.parser import parse_query, parse_rules
from repro.workloads.orders import random_interval_database

order = DenseOrderTheory()

QUERY = "(exists y . R(y) and y < x) and not R(x)"


def _closure_check(seed):
    db = random_interval_database(8, seed=seed, universe=60)
    query = parse_query(QUERY, theory=order)
    result = evaluate_calculus(query, db, output=("x",))
    assert isinstance(result, GeneralizedRelation)
    # semantic agreement at probe points
    r = db.relation("R")
    agreements = 0
    for value in [Fraction(v, 2) for v in range(-4, 140)]:
        exists_below = any(
            r.contains_values([Fraction(w, 2)]) for w in range(-8, int(value * 2))
        )
        direct = exists_below and not r.contains_values([value])
        assert result.contains_values([value]) == direct
        agreements += 1
    return agreements


def test_closed_form_random_inputs(benchmark):
    checked = benchmark(lambda: _closure_check(seed=bench_seed(13)))
    for offset in range(5):
        _closure_check(bench_seed(offset))
    report(
        "Figure 1: closed-form, bottom-up evaluation",
        "query(generalized db) is again a generalized relation",
        [
            f"quantifier+negation+disjunction query verified pointwise on "
            f"{checked} probes across 6 random databases"
        ],
    )


def test_herbrand_tp_agrees_with_engine(benchmark):
    rules = parse_rules(
        """
        T(x, y) :- E(x, y).
        T(x, y) :- T(x, z), E(z, y).
        """,
        theory=order,
    )
    db = GeneralizedDatabase(order)
    edge = db.create_relation("E", ("x", "y"))
    edge.add_point([0, 1])
    edge.add_point([1, 2])

    def both():
        herbrand = HerbrandProgram(rules, db)
        world_h = herbrand.as_relations(herbrand.least_fixpoint())
        world_e, _ = DatalogProgram(rules, order).evaluate(db)
        return world_h, world_e

    world_h, world_e = benchmark(both)
    for a in range(3):
        for b in range(3):
            point = [Fraction(a), Fraction(b)]
            assert world_h.relation("T").contains_values(point) == world_e.relation(
                "T"
            ).contains_values(point)
    report(
        "Section 3.2 (Thms 3.19/3.20): T_P least fixpoint",
        "generalized naive evaluation is sound and complete",
        ["Herbrand T_P fixpoint and the engine agree on all 9 probe points"],
    )
