"""Experiment T1.3 (Datalog-not + dense order cell) and E1.11.

Paper claims: inflationary Datalog-not with dense linear order evaluates
bottom-up in closed form with PTIME data complexity (Theorem 3.14.2); the
least fixpoint of Example 1.11's program exists and is finitely
representable.  Measured: transitive closure over growing chains scales
polynomially; the fixpoint of an interval-based (infinite relation) input
terminates with a small closed-form representation; the stratified
complement query also stays polynomial.
"""

from fractions import Fraction


from benchmarks.conftest import report
from repro.constraints.dense_order import DenseOrderTheory, le, lt
from repro.core.datalog import DatalogProgram
from repro.core.generalized import GeneralizedDatabase
from repro.harness.benchjson import record_bench
from repro.harness.measure import fit_exponent, time_callable
from repro.logic.parser import parse_rules
from repro.workloads.orders import chain_edges

order = DenseOrderTheory()

TC_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""


def _closure(db):
    program = DatalogProgram(parse_rules(TC_RULES, theory=order), order)
    world, stats = program.evaluate(db)
    return world, stats


def test_datalog_dense_scaling(benchmark):
    sizes = [4, 8, 16]
    times = []
    stats_rows = {}
    for n in sizes:
        db = chain_edges(n)
        times.append(time_callable(lambda d=db: _closure(d)))
        _, stats = _closure(db)
        stats_rows[n] = {
            "time_s": times[-1],
            "cache_hits": stats.cache_hits,
            "pin_prunes": stats.pin_prunes,
            "iterations": stats.iterations,
        }
    exponent = fit_exponent(sizes, times)
    record_bench(
        "datalog_dense_scaling",
        {
            "workload": "transitive closure over chains (Thm 3.14.2 cell)",
            "sizes": sizes,
            "times_s": times,
            "fitted_exponent": exponent,
            "per_size": stats_rows,
        },
    )
    benchmark(lambda: _closure(chain_edges(8)))
    report(
        "Table 1.3 cell: Datalog-not + dense order",
        "PTIME data complexity (Thm 3.14.2)",
        [
            f"chain sizes {sizes} -> {[f'{t*1000:.0f}ms' for t in times]}",
            f"fitted exponent {exponent:.2f} (polynomial; closure has O(N^2) tuples)",
        ],
    )
    assert exponent < 4.5


def test_infinite_relation_fixpoint(benchmark):
    # Example 1.11 flavour: the EDB is an *infinite* relation (an interval
    # constraint); the closed-form fixpoint is reached in few iterations
    db = GeneralizedDatabase(order)
    edge = db.create_relation("E", ("x", "y"))
    edge.add_tuple([le(0, "x"), lt("x", "y"), le("y", 1)])
    edge.add_tuple([le(2, "x"), lt("x", "y"), le("y", 3)])

    world, stats = benchmark(lambda: _closure(db))
    t = world.relation("T")
    assert t.contains_values([Fraction(0), Fraction(1)])
    assert not t.contains_values([Fraction(1), Fraction(5, 2)])
    report(
        "Example 1.11: fixpoint over an infinite input relation",
        "the least fixpoint exists and is finitely representable",
        [
            f"fixpoint: {len(t)} generalized tuples in {stats.iterations} iterations",
        ],
    )


def test_stratified_complement_scaling(benchmark):
    rules = parse_rules(
        TC_RULES + "U(x, y) :- V(x), V(y), not T(x, y).",
        theory=order,
    )

    def run(n):
        db = chain_edges(n)
        nodes = db.create_relation("V", ("x",))
        for i in range(n + 1):
            nodes.add_point([i])
        program = DatalogProgram(rules, order)
        return program.evaluate(db)

    sizes = [3, 6, 9]
    times = [time_callable(lambda k=n: run(k)) for n in sizes]
    exponent = fit_exponent(sizes, times)
    benchmark(lambda: run(4))
    report(
        "Table 1.3 cell: Datalog-not (stratified complement query)",
        "negation stays PTIME: complement of the closure is closed form",
        [
            f"sizes {sizes} -> {[f'{t*1000:.0f}ms' for t in times]}",
            f"fitted exponent {exponent:.2f}",
        ],
    )
