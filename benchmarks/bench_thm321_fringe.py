"""Experiment T3.21: polynomial-fringe programs evaluate in NC.

Paper claim: programs with the generalized polynomial fringe property (in
particular piecewise linear programs) evaluate in NC -- polylogarithmically
many parallel rounds.  Measured: the round-synchronous evaluator needs O(N)
rounds for the right-linear closure but O(log N) rounds for the recursive-
doubling program, whose derivation trees have logarithmic depth and
polynomial fringe -- the executable content of the Ullman-van Gelder bound.
"""

import math


from benchmarks.conftest import report
from repro.constraints.dense_order import DenseOrderTheory
from repro.core.fringe import (
    RoundSynchronousEvaluator,
    is_piecewise_linear,
    linear_closure_rules,
    squared_closure_rules,
)
from repro.workloads.orders import chain_edges

order = DenseOrderTheory()


def test_piecewise_linear_syntax(benchmark):
    linear = linear_closure_rules("E", "T", order)
    squared = squared_closure_rules("E", "T", order)
    result = benchmark(lambda: (is_piecewise_linear(linear), is_piecewise_linear(squared)))
    assert result == (True, False)
    report(
        "Theorem 3.21: the piecewise linear class",
        "right-linear closure is piecewise linear; the squared program is not",
        ["syntactic classifier agrees on both programs"],
    )


def test_rounds_linear_vs_logarithmic(benchmark):
    sizes = [4, 8, 16]
    linear_rounds = []
    squared_rounds = []
    for n in sizes:
        db = chain_edges(n)
        _, _, rounds_lin = RoundSynchronousEvaluator(
            linear_closure_rules("E", "T", order), order
        ).evaluate(db)
        _, _, rounds_sq = RoundSynchronousEvaluator(
            squared_closure_rules("E", "T", order), order
        ).evaluate(db)
        linear_rounds.append(rounds_lin)
        squared_rounds.append(rounds_sq)
    benchmark(
        lambda: RoundSynchronousEvaluator(
            squared_closure_rules("E", "T", order), order
        ).evaluate(chain_edges(8))
    )
    report(
        "Theorem 3.21: parallel rounds to fixpoint",
        "polynomial fringe + balanced trees => polylog rounds (NC)",
        [
            f"chain sizes {sizes}",
            f"right-linear rounds: {linear_rounds} (~N)",
            f"recursive-doubling rounds: {squared_rounds} (~log N)",
        ],
    )
    assert linear_rounds[-1] >= sizes[-1] - 1
    assert squared_rounds[-1] <= math.ceil(math.log2(sizes[-1])) + 2


def test_fringe_and_depth_tracked(benchmark):
    db = chain_edges(12)
    evaluator = RoundSynchronousEvaluator(squared_closure_rules("E", "T", order), order)
    _, info, _ = benchmark(lambda: evaluator.evaluate(db))
    max_fringe = max(meta.fringe for meta in info["T"].values())
    max_depth = max(meta.depth for meta in info["T"].values())
    assert max_fringe <= 12  # polynomial (= path length)
    assert max_depth <= math.ceil(math.log2(12)) + 1
    report(
        "Section 3.3: generalized derivation trees",
        "minimum-depth tree depth = rounds needed; fringe stays polynomial",
        [
            f"N=12 chain: max min-fringe {max_fringe} (<= N), "
            f"max min-depth {max_depth} (<= ceil(log2 N) + 1)"
        ],
    )
