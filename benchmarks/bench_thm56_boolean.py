"""Experiments T5.6 and E5.4/5.7: Datalog with boolean equality constraints.

Paper claims: bottom-up evaluation terminates in closed form (Theorem 5.6,
by counting DNF normal forms, at most 2^(2^m) per coefficient); "the data
complexity here is higher than in the previous cases".  Measured: the adder
derives in one firing; the parity chain's evaluation time grows *doubly
exponentially* with the number of generators m -- visible already for
m = 1..4 -- which is the Section 5.3 cost shape.
"""


from benchmarks.conftest import report
from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.boolean_algebra.datalog_bool import (
    BodyAtom,
    BooleanDatalogProgram,
    BooleanRule,
)
from repro.boolean_algebra.terms import BAnd, BConst, BOr, BVar, BXor
from repro.harness.measure import time_callable


def _parity_program(m):
    algebra = FreeBooleanAlgebra.with_generators(m)
    program = BooleanDatalogProgram(algebra)
    program.add_fact("Parity1", ["x"], BXor(BVar("x"), BConst("c0")))
    for i in range(2, m + 1):
        program.add_rule(
            BooleanRule(
                head_predicate=f"Parity{i}",
                head_arguments=("x",),
                body=(BodyAtom(f"Parity{i-1}", ("y",)),),
                constraint=BXor(BVar("x"), BXor(BVar("y"), BConst(f"c{i-1}"))),
            )
        )
    return program


def test_adder_derivation(benchmark):
    def derive():
        b0 = FreeBooleanAlgebra()
        program = BooleanDatalogProgram(b0)
        x, y, z, w = BVar("x"), BVar("y"), BVar("z"), BVar("w")
        program.add_fact(
            "Halfadder",
            ["x", "y", "z", "w"],
            BOr(BXor(BXor(x, y), z), BXor(BAnd(x, y), w)),
        )
        program.add_rule(
            BooleanRule(
                head_predicate="Adder",
                head_arguments=("x", "y", "c", "s", "d"),
                body=(
                    BodyAtom("Halfadder", ("x", "y", "s1", "c1")),
                    BodyAtom("Halfadder", ("s1", "c", "s", "c2")),
                ),
                constraint=BXor(BVar("d"), BOr(BVar("c1"), BVar("c2"))),
            )
        )
        return program.evaluate()

    facts = benchmark(derive)
    assert len(facts["Adder"]) == 1
    report(
        "Example 5.4: the adder from two half-adders",
        "Boole's lemma eliminates s1, c1, c2; one canonical adder constraint",
        ["bottom-up evaluation converges to a single Adder fact"],
    )


def test_parity_cost_growth(benchmark):
    times = {}
    for m in (1, 2, 3, 4):
        program = _parity_program(m)
        times[m] = time_callable(lambda p=program: p.evaluate())
        # rebuild because evaluate mutates fact stores
    benchmark(lambda: _parity_program(3).evaluate())
    report(
        "Theorem 5.6 + Section 5.3: boolean Datalog cost",
        "terminates, but cost grows with |B_m| = 2^(2^m) -- not PTIME-like",
        [
            "parity-chain evaluation by generator count m: "
            + ", ".join(f"m={m}: {t*1000:.1f}ms" for m, t in sorted(times.items()))
        ],
    )
    # the doubly-exponential blowup should be visible by m=4
    assert times[4] > times[1]


def test_termination_with_cyclic_rules(benchmark):
    def run():
        algebra = FreeBooleanAlgebra.with_generators(2)
        program = BooleanDatalogProgram(algebra)
        program.add_fact("S", ["x"], BXor(BVar("x"), BConst("c0")))
        program.add_rule(
            BooleanRule(
                head_predicate="S",
                head_arguments=("x",),
                body=(BodyAtom("S", ("y",)),),
                constraint=BXor(BVar("x"), BXor(BVar("y"), BConst("c1"))),
            )
        )
        return program.evaluate(max_iterations=1000)

    facts = benchmark(run)
    # x = c0, then x = c0^c1, then x = c0 (cycle) -> exactly two facts
    assert len(facts["S"]) == 2
    report(
        "Theorem 5.6: termination by canonical forms",
        "finitely many DNF tables => recursive rules reach a fixpoint",
        [f"cyclic xor program converges to {len(facts['S'])} canonical facts"],
    )
