"""Experiment T1.3 (dense-order column) + L3.6-3.13: relational calculus with
dense linear order.

Paper claims: LOGSPACE data complexity (Theorem 3.14.1), realized by the
EVAL-phi algorithm over r-configurations; the r-configuration count is
polynomial in the database constants for a fixed query.  Measured: the
direct evaluator's time scales polynomially with low exponent; EVAL-phi and
the direct evaluator agree pointwise; the size-1 configuration count is
exactly 2c + 1.
"""

from fractions import Fraction


from benchmarks.conftest import report
from repro.core.calculus import evaluate_calculus
from repro.core.rconfig import enumerate_rconfigs, evaluate_query_rconfig
from repro.harness.measure import fit_exponent, time_callable
from repro.logic.parser import parse_query
from repro.workloads.orders import random_interval_database

QUERY_TEXT = "exists y . R(y) and y < x"


def _run_direct(db):
    query = parse_query(QUERY_TEXT, theory=db.theory)
    return evaluate_calculus(query, db, output=("x",))


def test_rc_dense_scaling(benchmark):
    sizes = [20, 40, 80, 160]
    times = []
    for n in sizes:
        db = random_interval_database(n, seed=2)
        times.append(time_callable(lambda d=db: _run_direct(d)))
    exponent = fit_exponent(sizes, times)
    benchmark(lambda: _run_direct(random_interval_database(40, seed=2)))
    report(
        "Table 1.3 cell: relational calculus + dense order",
        "LOGSPACE data complexity (Thm 3.14.1) => low-degree polynomial time",
        [
            f"sizes {sizes} -> {[f'{t*1000:.1f}ms' for t in times]}",
            f"fitted exponent {exponent:.2f} (low-degree polynomial)",
        ],
    )
    assert exponent < 2.5


def test_evalphi_agrees_with_direct(benchmark):
    db = random_interval_database(4, seed=7, universe=40)
    query = parse_query(QUERY_TEXT, theory=db.theory)

    def both():
        via_config = evaluate_query_rconfig(query, db, output=("x",))
        via_direct = evaluate_calculus(query, db, output=("x",))
        return via_config, via_direct

    via_config, via_direct = benchmark(both)
    checked = 0
    for value in [Fraction(v, 2) for v in range(-2, 100)]:
        assert via_config.contains_values([value]) == via_direct.contains_values(
            [value]
        )
        checked += 1
    report(
        "Lemmas 3.6-3.13: EVAL-phi over r-configurations",
        "EVAL-phi outputs a DNF equivalent to the query (Lemma 3.12)",
        [f"agrees with the direct evaluator on {checked} probe points"],
    )


def test_rconfig_count_polynomial(benchmark):
    counts = {}
    for c in (2, 4, 8, 16):
        constants = [Fraction(i) for i in range(c)]
        counts[c] = sum(1 for _ in enumerate_rconfigs(1, constants))
    benchmark(
        lambda: sum(1 for _ in enumerate_rconfigs(2, [Fraction(i) for i in range(6)]))
    )
    report(
        "Section 3.1: r-configuration space",
        "polynomially many configurations in the constants, for fixed arity",
        [f"size-1 configurations over c constants: {counts} (= 2c + 1)"],
    )
    assert all(count == 2 * c + 1 for c, count in counts.items())
