"""Experiment F3/E2.4: the balanced-checkbook tableau query.

Paper claim: the query is a four-row tableau with one linear equation
constraint; evaluation is a nonrecursive join + the constraint check.
Measured: evaluation over growing user populations scales polynomially (the
join has three database atoms sharing the user key, so effectively linear
after the key join), and containment checks against variants run through
the Theorem 2.6 machinery.
"""

import random
from fractions import Fraction


from benchmarks.conftest import report
from repro.constraints.real_poly import RealPolynomialTheory, poly_eq
from repro.core.generalized import GeneralizedDatabase
from repro.harness.measure import fit_exponent, time_callable
from repro.poly.polynomial import Polynomial
from repro.tableaux.containment import contained_linear, evaluate_tableau
from repro.tableaux.tableau import TableauQuery, checkbook_query

theory = RealPolynomialTheory()


def _checkbook_db(n_users, seed=0):
    rng = random.Random(seed)
    db = GeneralizedDatabase(theory)
    expenses = db.create_relation("Expenses", ("z", "f", "r", "m"))
    savings = db.create_relation("Savings", ("z", "s", "d1", "d2"))
    income = db.create_relation("Income", ("z", "w", "i", "d3"))
    balanced = set()
    for user in range(n_users):
        f, r, m, s = (rng.randrange(100, 999) for _ in range(4))
        interest = rng.randrange(0, 50)
        if rng.random() < 0.5:
            wages = f + r + m + s - interest
            balanced.add(user)
        else:
            wages = f + r + m + s - interest + rng.randrange(1, 100)
        expenses.add_point([user, f, r, m])
        savings.add_point([user, s, 0, 0])
        income.add_point([user, wages, interest, 0])
    return db, balanced


def test_checkbook_correctness(benchmark):
    db, balanced = _checkbook_db(12, seed=3)
    query = checkbook_query()
    result = benchmark(lambda: evaluate_tableau(query, db))
    for user in range(12):
        assert result.contains_values([Fraction(user)]) == (user in balanced)
    report(
        "Figure 3 / Example 2.4: balanced checkbook",
        "the tableau + one linear equation selects exactly balancing users",
        [f"12 users classified correctly ({len(balanced)} balanced)"],
    )


def test_checkbook_scaling(benchmark):
    sizes = [5, 10, 20]
    times = []
    query = checkbook_query()
    for n in sizes:
        db, _ = _checkbook_db(n, seed=1)
        times.append(time_callable(lambda d=db: evaluate_tableau(query, d)))
    exponent = fit_exponent(sizes, times)
    db, _ = _checkbook_db(8, seed=1)
    benchmark(lambda: evaluate_tableau(query, db))
    report(
        "Figure 3: checkbook evaluation data complexity",
        "nonrecursive tableau: polynomial (join of three relations)",
        [
            f"users {sizes} -> {[f'{t*1000:.0f}ms' for t in times]}",
            f"fitted exponent {exponent:.2f}",
        ],
    )


def test_containment_with_variant(benchmark):
    query = checkbook_query()
    income_row = next(r for r in query.rows if r.tag == "Income")
    strict = TableauQuery(
        query.summary,
        query.rows,
        query.constraints
        + (poly_eq(Polynomial.variable(income_row.symbols[2]), 0),),
        name="strict",
    )
    result = benchmark(lambda: (contained_linear(strict, query), contained_linear(query, strict)))
    assert result == (True, False)
    report(
        "Figure 3 + Theorem 2.6: containment of checkbook variants",
        "adding a constraint can only shrink the query (homomorphism found)",
        ["strict <= general holds; general <= strict refuted"],
    )
