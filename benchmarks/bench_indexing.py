"""Experiment §1.1(3): generalized 1-dimensional indexing.

Paper claims: with interval projections as generalized keys, 1-d searching
on a generalized attribute reduces to dynamic interval intersection --
O(log N + K) per query with interval trees / priority search trees versus
the O(N) naive scan that conjoins the constraint to every tuple.  Measured:
the indexed search visits only the K matching tuples, the speedup over the
naive scan grows with N, and updates stay logarithmic.
"""

from fractions import Fraction


from benchmarks.conftest import report
from repro.constraints.dense_order import DenseOrderTheory, eq, le
from repro.core.generalized import GeneralizedRelation
from repro.harness.measure import fit_exponent, time_callable
from repro.indexing.generalized_index import GeneralizedIndex1D, NaiveGeneralizedSearch
from repro.indexing.interval import Interval
from repro.indexing.interval_tree import IntervalTree
from repro.indexing.priority_search_tree import PrioritySearchTree

order = DenseOrderTheory()


def _spans_relation(n):
    relation = GeneralizedRelation("Spans", ("n", "x"), order)
    for i in range(n):
        relation.add_tuple([eq("n", i), le(5 * i, "x"), le("x", 5 * i + 8)])
    return relation


def test_indexed_vs_naive_search(benchmark):
    sizes = [100, 200, 400]
    index_times = []
    naive_times = []
    for n in sizes:
        relation = _spans_relation(n)
        index = GeneralizedIndex1D(relation, "x")
        naive = NaiveGeneralizedSearch(relation, "x")
        low, high = 5 * n // 2, 5 * n // 2 + 30
        index_times.append(
            time_callable(lambda i=index, a=low, b=high: i.candidates(a, b), repeats=3)
        )
        naive_times.append(
            time_callable(lambda s=naive, a=low, b=high: s.candidates(a, b))
        )
        assert {id(t) for t in index.candidates(low, high)} == {
            id(t) for t in naive.candidates(low, high)
        }
    relation = _spans_relation(200)
    index = GeneralizedIndex1D(relation, "x")
    benchmark(lambda: index.candidates(500, 530))
    naive_exp = fit_exponent(sizes, naive_times)
    report(
        "Section 1.1(3): generalized 1-d search",
        "indexed O(log N + K) vs the naive O(N) constraint-everywhere scan",
        [
            f"sizes {sizes}",
            f"indexed: {[f'{t*1e6:.0f}us' for t in index_times]} (output-bound)",
            f"naive:   {[f'{t*1e6:.0f}us' for t in naive_times]} "
            f"(exponent {naive_exp:.2f}, ~linear)",
        ],
    )
    assert index_times[-1] < naive_times[-1]


def test_interval_tree_updates_logarithmic(benchmark):
    def insert_many(n):
        tree = IntervalTree()
        for i in range(n):
            tree.insert(Interval.closed(i, i + 3))
        return tree

    sizes = [200, 400, 800]
    times = [time_callable(lambda k=n: insert_many(k)) for n in sizes]
    exponent = fit_exponent(sizes, times)
    tree = benchmark(lambda: insert_many(300))
    assert tree.height() <= 2 * (300).bit_length()
    report(
        "Section 1.1(3): dynamic updates",
        "insert/delete in O(log N) (balanced augmented tree)",
        [
            f"bulk-insert times {sizes} -> {[f'{t*1000:.1f}ms' for t in times]}",
            f"fitted exponent {exponent:.2f} (~1: N inserts x log factor)",
            "AVL height stays within 2 log2 N",
        ],
    )
    assert exponent < 1.6


def test_priority_search_tree_stabbing(benchmark):
    intervals = [Interval.closed(5 * i, 5 * i + 8, payload=i) for i in range(500)]
    pst = PrioritySearchTree.for_intervals(intervals)
    tree = IntervalTree(intervals)

    def stab_both():
        a = sorted(i.payload for i in pst.stab_intervals(Fraction(1203)))
        b = sorted(i.payload for i in tree.stab(Fraction(1203)))
        return a, b

    a, b = benchmark(stab_both)
    assert a == b and len(a) >= 1
    report(
        "Section 1.1(3): priority search tree (McCreight [41])",
        "the 1.5-dimensional structure answers stabbing in O(log N + K)",
        [f"PST and interval tree agree: {len(a)} hits at the probe point"],
    )


def test_bptree_relational_baseline(benchmark):
    """Section 6(1): can generalized 1-d searching match the relational
    B+-tree access bounds?  We measure both: B+-tree accesses for classical
    tuples, interval-tree work for generalized tuples."""
    import math

    from repro.indexing.bptree import BPlusTree

    n = 4096
    tree = BPlusTree(branching=16)
    for i in range(n):
        tree.insert(i, ("tuple", i))
    tree.stats.reset()
    hits = tree.range_search(2000, 2063)
    accesses = tree.stats.reads
    bound = math.ceil(math.log(n, 8)) + math.ceil(64 / 8) + 4

    def run():
        tree.stats.reset()
        return tree.range_search(2000, 2063)

    benchmark(run)
    assert len(hits) == 64
    assert accesses <= bound
    report(
        "Section 1.1(3)/6(1): the relational B+-tree baseline",
        "range search in O(log_B N + K/B) node accesses",
        [
            f"N={n}, K=64, B=16: {accesses} node accesses "
            f"(bound ~log_B N + K/B = {bound}); generalized search matches "
            "this shape via the interval tree (see the blocks above)"
        ],
    )
