"""Ablation experiments for the design choices DESIGN.md calls out.

Not paper tables, but measurements justifying the engineering decisions:

* semi-naive vs naive Datalog evaluation (delta restriction);
* the QE ladder's Fourier-Motzkin fast path vs forcing virtual substitution
  on purely linear instances;
* canonical-form deduplication (the termination mechanism) keeping fixpoint
  representations small on redundant inputs.
"""


from benchmarks.conftest import report
from repro.constraints.dense_order import DenseOrderTheory, le, lt
from repro.core.datalog import DatalogProgram, EngineOptions
from repro.core.generalized import GeneralizedDatabase
from repro.harness.benchjson import record_bench
from repro.harness.measure import time_callable
from repro.logic.parser import parse_rules
from repro.poly.polynomial import poly_var
from repro.qe.fourier_motzkin import fourier_motzkin_eliminate
from repro.qe.signs import SignCond, dnf_holds
from repro.qe.virtual_substitution import vs_eliminate
from repro.workloads.orders import chain_edges

order = DenseOrderTheory()

TC_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""


def test_semi_naive_vs_naive(benchmark):
    rules = parse_rules(TC_RULES, theory=order)
    db = chain_edges(10)
    semi_time = time_callable(
        lambda: DatalogProgram(rules, order).evaluate(db, semi_naive=True)
    )
    naive_time = time_callable(
        lambda: DatalogProgram(rules, order).evaluate(db, semi_naive=False)
    )
    _, semi_stats = DatalogProgram(rules, order).evaluate(db, semi_naive=True)
    _, naive_stats = DatalogProgram(rules, order).evaluate(db, semi_naive=False)
    benchmark(lambda: DatalogProgram(rules, order).evaluate(db, semi_naive=True))
    report(
        "Ablation: semi-naive evaluation",
        "delta restriction avoids refiring rules on old facts",
        [
            f"chain N=10: semi-naive {semi_time*1000:.0f}ms "
            f"({semi_stats.rule_firings} firings) vs naive {naive_time*1000:.0f}ms "
            f"({naive_stats.rule_firings} firings)"
        ],
    )
    assert semi_stats.rule_firings < naive_stats.rule_firings


def test_fastpath_ablation(benchmark):
    """The engine fast path (tentpole): all optimizations on vs off.

    Uses the same transitive-closure workload as
    ``bench_table13_datalog_dense`` at that benchmark's largest size and
    requires the full fast path to be at least 2x faster than the stripped
    engine while deriving the *identical* fixpoint.  Per-flag rows measure
    each layer's individual contribution and land in BENCH_datalog.json.
    """
    n = 16  # largest size of the dense-order scaling benchmark

    def run(options):
        # fresh theory and database per configuration: no warm TheoryCache
        # carries over between the measured configurations
        theory = DenseOrderTheory()
        db = chain_edges(n)
        rules = parse_rules(TC_RULES, theory=theory)
        program = DatalogProgram(rules, theory, options=options)
        elapsed = time_callable(lambda: program.evaluate(db), repeats=2)
        world, stats = program.evaluate(db)
        canonical = frozenset(
            frozenset(t.atoms) for t in world.relation("T")
        )
        return elapsed, stats, canonical

    on_time, on_stats, on_result = run(EngineOptions.all_on())
    off_time, off_stats, off_result = run(EngineOptions.all_off())
    assert on_result == off_result, "fast path changed the derived relation"
    assert on_stats.cache_hits > 0
    speedup = off_time / on_time
    assert speedup >= 2.0, f"fast path speedup {speedup:.2f}x < 2x"

    # per-flag ablation: each optimization disabled in isolation
    flag_rows = {}
    for flag in EngineOptions.all_on().as_dict():
        options = EngineOptions(**{flag: False})
        flag_time, flag_stats, flag_result = run(options)
        assert flag_result == on_result
        flag_rows[flag] = {
            "time_s": flag_time,
            "slowdown_vs_all_on": flag_time / on_time,
            "sat_checks": flag_stats.sat_checks,
            "join_prunes": flag_stats.join_prunes,
            "cache_hits": flag_stats.cache_hits,
        }

    path = record_bench(
        "datalog_dense_ablation",
        {
            "workload": f"transitive closure over a chain, N={n}",
            "all_on_time_s": on_time,
            "all_off_time_s": off_time,
            "speedup": speedup,
            "all_on_stats": on_stats.as_dict(),
            "all_off_stats": off_stats.as_dict(),
            "single_flag_off": flag_rows,
        },
    )
    bench_db = chain_edges(n)
    benchmark(
        lambda: DatalogProgram(
            parse_rules(TC_RULES, theory=order), order
        ).evaluate(bench_db)
    )
    report(
        "Ablation: constraint-engine fast path",
        "memoized sat/canon + join caches keep the PTIME constant small",
        [
            f"chain N={n}: all-on {on_time*1000:.0f}ms vs all-off "
            f"{off_time*1000:.0f}ms ({speedup:.1f}x); identical fixpoints "
            f"({len(on_result)} tuples)",
            f"all-on: {on_stats.pin_prunes} pin prunes, "
            f"{on_stats.cache_hits} cache hits, "
            f"{on_stats.sat_checks} sat checks "
            f"(all-off: {off_stats.sat_checks})",
            f"per-flag rows written to {path}",
        ],
    )


def test_fm_fast_path_vs_vs(benchmark):
    x, z = poly_var("x"), poly_var("z")
    conds = [
        SignCond(z - x, "<"),
        SignCond(x * 0 + 1 - z, "<"),
        SignCond(z - 10, "<="),
        SignCond(2 * z - x - 7, "<"),
    ]
    fm_time = time_callable(lambda: fourier_motzkin_eliminate(conds, "z"), repeats=5)
    vs_time = time_callable(lambda: vs_eliminate(conds, "z"), repeats=5)
    fm_result = fourier_motzkin_eliminate(conds, "z")
    vs_result = vs_eliminate(conds, "z")
    for value in range(-5, 15):
        assert dnf_holds(fm_result, {"x": value}) == dnf_holds(
            vs_result, {"x": value}
        )
    benchmark(lambda: fourier_motzkin_eliminate(conds, "z"))
    report(
        "Ablation: the QE ladder's Fourier-Motzkin fast path",
        "FM handles constant-coefficient linear atoms cheaper than VS",
        [
            f"same linear instance: FM {fm_time*1e6:.0f}us "
            f"({len(fm_result)} conjuncts) vs VS {vs_time*1e6:.0f}us "
            f"({len(vs_result)} conjuncts); outputs agree on 20 probes"
        ],
    )


def test_canonical_dedup_keeps_fixpoint_small(benchmark):
    # feed the closure 20 syntactically different but equivalent edge tuples:
    # dedup collapses them to one, keeping the fixpoint tiny
    def build():
        db = GeneralizedDatabase(order)
        edge = db.create_relation("E", ("x", "y"))
        for k in range(1, 21):
            # all equivalent to 0 <= x < y <= 1
            edge.add_tuple(
                [le(0, "x"), lt("x", "y"), le("y", 1), le("y", 1 + k * 0)]
            )
        return db

    db = build()
    assert len(db.relation("E")) == 1
    rules = parse_rules(TC_RULES, theory=order)
    world, stats = benchmark(
        lambda: DatalogProgram(rules, order).evaluate(build())
    )
    assert len(world.relation("T")) == 1
    report(
        "Ablation: canonical-form deduplication",
        "termination & compactness come from canonical conjunctions",
        [
            "20 equivalent input tuples collapse to 1; the closure fixpoint "
            f"holds {len(world.relation('T'))} tuple after {stats.iterations} iterations"
        ],
    )


def test_selection_propagation(benchmark):
    from repro.core.calculus import evaluate_calculus
    from repro.core.optimize import optimize
    from repro.core.generalized import GeneralizedDatabase
    from repro.logic.syntax import And, RelationAtom

    db = GeneralizedDatabase(order)
    big = db.create_relation("Big", ("x", "y"))
    for i in range(60):
        big.add_point([i, i + 1])
    small = db.create_relation("Small", ("x",))
    small.add_point([3])
    # the unoptimized order joins Big x Small before filtering
    query = And(
        (RelationAtom("Big", ("x", "y")), RelationAtom("Small", ("x",)), lt("y", 10))
    )
    rewritten = optimize(query, db)
    base_time = time_callable(lambda: evaluate_calculus(query, db))
    optimized_time = time_callable(lambda: evaluate_calculus(rewritten, db))
    base = evaluate_calculus(query, db)
    optimized = evaluate_calculus(rewritten, db, output=base.variables)
    from fractions import Fraction

    for a in range(8):
        point = {"x": Fraction(a), "y": Fraction(a + 1)}
        assert base.contains_point(point) == optimized.contains_point(point)
    benchmark(lambda: evaluate_calculus(rewritten, db))
    report(
        "Ablation: selection propagation + join ordering (Section 6(3))",
        "evaluating selective conjuncts first shrinks intermediates",
        [
            f"N=60 join: unoptimized {base_time*1000:.0f}ms vs "
            f"optimized {optimized_time*1000:.0f}ms (same answers)"
        ],
    )
