"""Experiment T1.3 (equality column) + T4.11: equality over an infinite domain.

Paper claims: relational calculus LOGSPACE, inflationary Datalog-not PTIME
(Theorem 4.11); e-configurations mirror r-configurations.  Measured:
polynomial scaling of calculus evaluation including the *unsafe* complement
query (closed thanks to disequality constraints), Datalog closure scaling,
and e-configuration EVAL-phi agreement with the direct evaluator.
"""


from benchmarks.conftest import report
from repro.constraints.equality import EqualityTheory
from repro.core.calculus import evaluate_calculus
from repro.core.datalog import DatalogProgram
from repro.core.econfig import evaluate_query_econfig
from repro.core.generalized import GeneralizedDatabase
from repro.harness.measure import fit_exponent, time_callable
from repro.logic.parser import parse_query, parse_rules
from repro.logic.syntax import Not, RelationAtom

theory = EqualityTheory()


def _point_db(n, arity=1, name="R"):
    db = GeneralizedDatabase(theory)
    relation = db.create_relation(name, tuple(f"a{i}" for i in range(arity)))
    for i in range(n):
        relation.add_point([i * 7 % (3 * n)] * arity)
    return db


def test_unsafe_complement_closed_and_polynomial(benchmark):
    sizes = [25, 50, 100]
    times = []
    for n in sizes:
        db = _point_db(n)
        query = Not(RelationAtom("R", ("x",)))
        times.append(
            time_callable(lambda d=db, q=query: evaluate_calculus(q, d, output=("x",)))
        )
    exponent = fit_exponent(sizes, times)
    db = _point_db(50)
    result = benchmark(
        lambda: evaluate_calculus(Not(RelationAtom("R", ("x",))), db, output=("x",))
    )
    assert result.contains_values([10**9])  # infinite answer, finitely represented
    report(
        "Table 1.3 cell: relational calculus + equality (unsafe query)",
        "closed form even for infinite answers; LOGSPACE (Thm 4.11.1)",
        [
            f"not R(x) over sizes {sizes} -> {[f'{t*1000:.1f}ms' for t in times]}",
            f"fitted exponent {exponent:.2f}",
        ],
    )


def test_equality_datalog_scaling(benchmark):
    rules = parse_rules(
        """
        T(x, y) :- E(x, y).
        T(x, y) :- T(x, z), E(z, y).
        """,
        theory=theory,
    )

    def run(n):
        db = GeneralizedDatabase(theory)
        edge = db.create_relation("E", ("x", "y"))
        for i in range(n):
            edge.add_point([i, i + 1])
        return DatalogProgram(rules, theory).evaluate(db)

    sizes = [4, 8, 16]
    times = [time_callable(lambda k=n: run(k)) for n in sizes]
    exponent = fit_exponent(sizes, times)
    benchmark(lambda: run(8))
    report(
        "Table 1.3 cell: Datalog-not + equality",
        "PTIME data complexity (Thm 4.11.2)",
        [
            f"chain sizes {sizes} -> {[f'{t*1000:.0f}ms' for t in times]}",
            f"fitted exponent {exponent:.2f}",
        ],
    )
    assert exponent < 4.5


def test_econfig_agrees(benchmark):
    db = _point_db(4)
    query = parse_query("exists y . R(y) and x != y", theory=theory)

    def both():
        return (
            evaluate_query_econfig(query, db, output=("x",)),
            evaluate_calculus(query, db, output=("x",)),
        )

    via_config, via_direct = benchmark(both)
    for value in range(0, 30):
        assert via_config.contains_values([value]) == via_direct.contains_values(
            [value]
        )
    report(
        "Section 4: EVAL-phi over e-configurations",
        "the equality analogue of Lemmas 3.6-3.13 is sound and complete",
        ["agrees with the direct evaluator on 30 probe points"],
    )
