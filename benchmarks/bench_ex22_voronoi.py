"""Experiment E2.2: the Voronoi dual by the calculus-expressible definition.

Paper claim: "two points u and v are adjacent in the Voronoi dual iff all
the points on the line from u to v are closer to u or to v than to any
other point in the database.  This condition can easily be expressed in our
language."  Measured: the direct implementation of that definition (exact
rational arithmetic, per-witness linear conditions in the segment parameter)
produces a planar-graph-sized edge set and scales polynomially (N^3 witness
checks).
"""


from benchmarks.conftest import report
from repro.geometry.voronoi import voronoi_dual_naive
from repro.harness.measure import fit_exponent, time_callable
from repro.workloads.spatial import random_points


def test_dual_edge_count_planar(benchmark):
    points = random_points(24, seed=6, universe=400)
    dual = benchmark(lambda: voronoi_dual_naive(points))
    undirected = {frozenset(edge) for edge in dual}
    n = len(points)
    assert len(undirected) <= 3 * n - 6  # Delaunay graphs are planar
    assert len(undirected) >= n - 1  # and connected
    report(
        "Example 2.2: Voronoi dual",
        "the segment-domination definition yields the Delaunay adjacency",
        [
            f"N={n}: {len(undirected)} dual edges "
            f"(planar bound {3 * n - 6}, connectivity bound {n - 1})"
        ],
    )


def test_scaling(benchmark):
    sizes = [8, 16, 32]
    times = []
    for n in sizes:
        points = random_points(n, seed=2, universe=500)
        times.append(time_callable(lambda p=points: voronoi_dual_naive(p)))
    exponent = fit_exponent(sizes, times)
    benchmark(lambda: voronoi_dual_naive(random_points(12, seed=2, universe=500)))
    report(
        "Example 2.2: data complexity of the dual query",
        "three database atoms in the defining formula => ~cubic evaluation",
        [
            f"sizes {sizes} -> {[f'{t*1000:.1f}ms' for t in times]}",
            f"fitted exponent {exponent:.2f} (expected ~3)",
        ],
    )
    assert exponent < 4.2
