"""Experiment E2.1: the convex hull as a calculus query (Floyd's method).

Paper claims: the hull is expressible in relational calculus + polynomial
constraints via the Intriangle predicate; "the naive algorithm based on this
observation, known as Floyd's method, takes O(N^4) time ...  it cannot
compete with various known O(N log N) algorithms".  Measured: Floyd's
method and Graham scan agree on general-position inputs; the fitted scaling
gap matches the prediction (naive ~N^4 worst case, here measured on its
realistic early-exit behaviour, still far steeper than Graham scan).
"""


from benchmarks.conftest import report
from repro.geometry.convex_hull import convex_hull_graham, convex_hull_naive
from repro.harness.measure import fit_exponent, time_callable
from repro.workloads.spatial import random_points_general_position


def test_agreement(benchmark):
    points = random_points_general_position(16, seed=4, universe=500)
    naive = benchmark(lambda: set(convex_hull_naive(points)))
    fast = set(convex_hull_graham(points))
    assert naive == fast
    report(
        "Example 2.1: convex hull via the Intriangle query",
        "the query's semantics (Floyd) equals the geometric hull",
        [f"N=16: both methods find the same {len(fast)} hull vertices"],
    )


def test_scaling_gap(benchmark):
    sizes = [8, 12, 18, 27]
    naive_times = []
    fast_times = []
    for n in sizes:
        points = random_points_general_position(n, seed=1, universe=1000)
        naive_times.append(time_callable(lambda p=points: convex_hull_naive(p)))
        fast_times.append(time_callable(lambda p=points: convex_hull_graham(p), repeats=3))
    naive_exp = fit_exponent(sizes, naive_times)
    fast_exp = fit_exponent(sizes, fast_times)
    points = random_points_general_position(12, seed=1, universe=1000)
    benchmark(lambda: convex_hull_naive(points))
    report(
        "Example 2.1: O(N^4) query vs O(N log N) algorithm",
        "Floyd's method cannot compete with specialized algorithms",
        [
            f"naive times {[f'{t*1000:.1f}ms' for t in naive_times]} "
            f"(exponent {naive_exp:.2f})",
            f"graham times {[f'{t*1000:.2f}ms' for t in fast_times]} "
            f"(exponent {fast_exp:.2f})",
            "the naive exponent is far above the near-linear Graham scan",
        ],
    )
    assert naive_exp > fast_exp + 0.8
