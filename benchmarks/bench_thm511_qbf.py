"""Experiment L5.9/T5.11: the Pi-2-p machinery, executably.

Paper claims: AE-QBF truth equals constraint solvability in B_m (Lemma 5.9)
and embeds in a fixed boolean-constraint Datalog query (Theorem 5.11), whose
generic evaluation is doubly exponential in the parameter count (the Aexpr
table).  Measured: the three deciders agree; the Datalog-style decision cost
explodes with the number of universally quantified variables exactly as the
construction predicts (|Aexpr| = 2^(2^p)).
"""


from benchmarks.conftest import report
from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.boolean_algebra.qbf import (
    aexpr_closure,
    decide_qbf_via_datalog,
    decide_qbf_via_lemma59,
    qbf_truth,
)
from repro.harness.measure import time_callable
from repro.tableaux.reductions import BNode, BVarRef


def _xor_formula():
    """psi = x0 xor y0 (zero iff x0 = y0): true instance."""
    return BNode(
        "or",
        BNode("and", BVarRef("x", 0), BVarRef("y", 0, True)),
        BNode("and", BVarRef("x", 0, True), BVarRef("y", 0)),
    )


def test_deciders_agree(benchmark):
    formula = _xor_formula()

    def all_three():
        return (
            qbf_truth(formula, 1, 1),
            decide_qbf_via_lemma59(formula, 1, 1),
            decide_qbf_via_datalog(formula, 1, 1),
        )

    results = benchmark(all_three)
    assert results == (True, True, True)
    report(
        "Lemma 5.9 / Theorem 5.11: three QBF deciders",
        "brute force == Boole-elimination == the Datalog reduction",
        ["all three agree on the xor instance (and on random instances in tests)"],
    )


def test_aexpr_doubly_exponential(benchmark):
    sizes = {}
    for p in (0, 1, 2):
        algebra = FreeBooleanAlgebra.with_generators(p + 1)
        sizes[p] = len(aexpr_closure(algebra, list(range(p))))
    benchmark(lambda: aexpr_closure(FreeBooleanAlgebra.with_generators(3), [0, 1]))
    assert sizes == {0: 2, 1: 4, 2: 16}
    report(
        "Theorem 5.11: the Aexpr table",
        "|Aexpr| = 2^(2^p): the doubly exponential heart of the hardness",
        [f"measured sizes by universal-variable count p: {sizes}"],
    )


def test_datalog_decision_cost_explodes(benchmark):
    formula = _xor_formula()
    times = {}
    for p in (1, 2):
        # pad with extra unused universal variables to grow Aexpr
        times[p] = time_callable(
            lambda k=p: decide_qbf_via_datalog(formula, 1, k)
        )
    benchmark(lambda: decide_qbf_via_datalog(formula, 1, 1))
    report(
        "Theorem 5.11: generic evaluation cost",
        "cost grows with 2^(2^p) parametric substitutions",
        [
            "decision times by p: "
            + ", ".join(f"p={p}: {t*1000:.1f}ms" for p, t in sorted(times.items()))
        ],
    )
    assert times[2] > times[1]
