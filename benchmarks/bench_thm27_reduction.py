"""Experiment T2.7: quadratic-equation tableau containment is Pi-2-p-hard.

Paper claim: the AE-QBF problem reduces to containment of two tableaux with
quadratic equation constraints.  Hardness cannot be measured, but the
reduction is executable: we verify it against brute-force QBF on small
instances and measure the doubling of the verification space per added
boolean variable -- the exponential shape the hardness predicts for any
generic decision procedure.
"""



from benchmarks.conftest import report
from repro.harness.measure import time_callable
from repro.tableaux.reductions import (
    BNode,
    BVarRef,
    qbf_ae_truth,
    qbf_to_tableaux,
    tableau_output_01,
)


def _pigeonhole_formula(n_x, n_y):
    """forall xs exists ys: OR_i (x_i and y_0) or (not x_i and not y_0)."""
    def lit(kind, index, neg=False):
        return BVarRef(kind, index, neg)

    clauses = []
    for i in range(n_x):
        clauses.append(
            BNode(
                "or",
                BNode("and", lit("x", i), lit("y", 0)),
                BNode("and", lit("x", i, True), lit("y", 0, True)),
            )
        )
    formula = clauses[0]
    for clause in clauses[1:]:
        formula = BNode("or", formula, clause)
    return formula


def test_reduction_correct_on_suite(benchmark):
    cases = []
    for n_x in (1, 2):
        formula = _pigeonhole_formula(n_x, 1)
        cases.append((formula, n_x, 1))

    def verify_all():
        results = []
        for formula, n_x, n_y in cases:
            expected = qbf_ae_truth(formula, n_x, n_y)
            phi1, phi2 = qbf_to_tableaux(formula, n_x, n_y)
            out1 = tableau_output_01(phi1, n_x)
            out2 = tableau_output_01(phi2, n_x)
            results.append((out1 <= out2) == expected)
        return all(results)

    assert benchmark(verify_all)
    report(
        "Theorem 2.7: QBF -> quadratic tableau containment",
        "phi1 subseteq phi2 iff the AE-QBF is true",
        [f"verified on {len(cases)} formula instances against brute force"],
    )


def test_verification_space_doubles(benchmark):
    times = {}
    for n_x in (1, 2, 3, 4):
        formula = _pigeonhole_formula(n_x, 1)
        phi1, phi2 = qbf_to_tableaux(formula, n_x, 1)
        times[n_x] = time_callable(
            lambda p1=phi1, p2=phi2, k=n_x: tableau_output_01(p1, k) <= tableau_output_01(p2, k)
        )
    formula = _pigeonhole_formula(2, 1)
    phi1, phi2 = qbf_to_tableaux(formula, 2, 1)
    benchmark(lambda: tableau_output_01(phi1, 2) <= tableau_output_01(phi2, 2))
    report(
        "Theorem 2.7: exponential verification space",
        "Pi-2-p-hardness: generic decision doubles per boolean variable",
        [
            "containment-check times by #universals: "
            + ", ".join(f"{k}: {t*1000:.2f}ms" for k, t in sorted(times.items()))
        ],
    )
