"""Experiment T2.6: containment of linear-equation tableaux is NP-complete.

Paper claim: guess a symbol mapping (exponentially many in the *query* size)
and verify affine containment in polynomial time.  Measured: the affine
check itself is fast and polynomial; the number of symbol mappings -- and
with it the worst-case decision time -- grows exponentially with the number
of same-tag rows, which is exactly the NP shape (query complexity, not data
complexity).
"""


from benchmarks.conftest import report
from repro.constraints.real_poly import poly_eq
from repro.harness.measure import time_callable
from repro.tableaux.containment import contained_linear, symbol_mappings
from repro.tableaux.tableau import TableauQuery, TableauRow


def _chain_query(rows, name):
    """A query with ``rows`` same-tag rows chained by equalities."""
    symbols = []
    table_rows = []
    constraints = []
    summary = (f"{name}_s",)
    previous = f"{name}_s"
    for index in range(rows):
        a, b = f"{name}_a{index}", f"{name}_b{index}"
        table_rows.append(TableauRow("R", (a, b)))
        constraints.append(poly_eq(previous, a))
        previous = b
    return TableauQuery(summary, tuple(table_rows), tuple(constraints), name)


def test_mapping_count_exponential(benchmark):
    counts = {}
    for rows in (2, 3, 4):
        target = _chain_query(rows, "t")
        source = _chain_query(rows, "s")
        counts[rows] = sum(1 for _ in symbol_mappings(target, source))
    benchmark(
        lambda: sum(1 for _ in symbol_mappings(_chain_query(3, "t"), _chain_query(3, "s")))
    )
    assert counts == {2: 4, 3: 27, 4: 256}
    report(
        "Theorem 2.6: the NP guess space",
        "containment = exists a homomorphism among rows^rows symbol mappings",
        [f"same-tag rows k -> k^k mappings: {counts}"],
    )


def test_containment_decision_times(benchmark):
    times = {}
    for rows in (2, 3, 4):
        query = _chain_query(rows, "q")
        times[rows] = time_callable(lambda q=query: contained_linear(q, q))
    query = _chain_query(3, "q")
    decided = benchmark(lambda: contained_linear(query, query))
    assert decided
    report(
        "Theorem 2.6: decision cost growth",
        "NP in the query size; affine check per mapping is polynomial",
        [
            "self-containment times by row count: "
            + ", ".join(f"{k}: {t*1000:.1f}ms" for k, t in sorted(times.items()))
        ],
    )


def test_affine_check_is_fast(benchmark):
    from repro.tableaux.affine import LinearSystem, equation

    def build_and_check():
        system = LinearSystem(
            [equation({f"x{i}": 1, f"x{i+1}": -1}, 0) for i in range(60)]
        )
        return all(
            system.implies({f"x0": 1, f"x{i}": -1}, 0) for i in range(1, 61)
        )

    assert benchmark(build_and_check)
    report(
        "Theorem 2.6: polynomial verification step",
        "affine-space containment checks in polynomial time (Gaussian elim.)",
        ["61-variable chain system: all 60 implications verified"],
    )
