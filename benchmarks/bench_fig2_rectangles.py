"""Experiment F2/E1.1: rectangle intersection (Figure 2, Example 1.1).

Paper claim: the CQL expresses the query in one generalized-tuple program
that also works for other shapes; the classical 5-ary relational encoding
needs the case analysis; specialized geometry (sweep line) is faster but
less general.  Measured: all three produce identical pair sets; the CQL
evaluator scales polynomially (fixed query, growing data: ~quadratic, one
pair of database atoms); sweep line is the fastest, as the paper predicts.
"""



from benchmarks.conftest import report
from repro.core.calculus import evaluate_calculus
from repro.geometry.rectangles import (
    intersecting_pairs_bruteforce,
    intersecting_pairs_sweepline,
)
from repro.harness.measure import fit_exponent, time_callable
from repro.logic.parser import parse_query
from repro.relational.rectangles import (
    classical_rectangle_relation,
    intersecting_pairs_classical,
)
from repro.workloads.spatial import random_rectangles, rectangles_to_generalized

QUERY_TEXT = "exists x, y . Rect(n1, x, y) and Rect(n2, x, y) and n1 != n2"


def _cql_pairs(rects):
    db = rectangles_to_generalized(rects)
    query = parse_query(QUERY_TEXT, theory=db.theory)
    result = evaluate_calculus(query, db, output=("n1", "n2"))
    pairs = set()
    for item in result:
        point = db.theory.sample_point(item.atoms, ("n1", "n2"))
        pairs.add((point["n1"], point["n2"]))
    return pairs


def test_agreement_all_formulations(benchmark):
    rects = random_rectangles(25, seed=11, universe=120, max_side=40)
    classical = intersecting_pairs_classical(classical_rectangle_relation(rects))
    sweep = intersecting_pairs_sweepline(rects)
    brute = intersecting_pairs_bruteforce(rects)
    cql = benchmark(lambda: _cql_pairs(rects))
    normalized_cql = {(int(a), int(b)) for a, b in cql}
    assert normalized_cql == classical == sweep == brute
    report(
        "Figure 2 / Example 1.1: rectangle intersection",
        "one 3-line CQL program == classical 5-ary case analysis == geometry",
        [f"all four formulations agree on {len(brute)} intersecting pairs (N=25)"],
    )


def test_cql_scaling(benchmark):
    sizes = [8, 16, 32]
    times = []
    for n in sizes:
        rects = random_rectangles(n, seed=5, universe=150, max_side=40)
        times.append(time_callable(lambda r=rects: _cql_pairs(r)))
    exponent = fit_exponent(sizes, times)
    benchmark(lambda: _cql_pairs(random_rectangles(16, seed=5, universe=150, max_side=40)))
    report(
        "Figure 2: CQL evaluation data complexity",
        "polynomial data complexity for the fixed query (two database atoms)",
        [
            f"sizes {sizes} -> times {[f'{t*1000:.1f}ms' for t in times]}",
            f"fitted scaling exponent {exponent:.2f} (expected ~2, two db atoms)",
        ],
    )
    assert exponent < 3.6


def test_sweepline_vs_bruteforce(benchmark):
    rects = random_rectangles(300, seed=9, universe=800, max_side=30)
    sweep_time = time_callable(lambda: intersecting_pairs_sweepline(rects))
    brute_time = time_callable(lambda: intersecting_pairs_bruteforce(rects))
    benchmark(lambda: intersecting_pairs_sweepline(rects))
    report(
        "Figure 2: specialized geometry baseline",
        "sweep line O((N+K) log N) beats the naive O(N^2) pair test",
        [
            f"N=300: sweep {sweep_time*1000:.1f}ms vs brute force {brute_time*1000:.1f}ms"
        ],
    )
