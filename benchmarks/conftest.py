"""Shared benchmark plumbing: every bench prints a paper-vs-measured block."""

import pytest


def report(title: str, paper_claim: str, lines: list[str]) -> None:
    """Print the standardized experiment block recorded in EXPERIMENTS.md."""
    print()
    print(f"== {title}")
    print(f"   paper: {paper_claim}")
    for line in lines:
        print(f"   measured: {line}")
