"""Shared benchmark plumbing: paper-vs-measured blocks and seed replay.

Benchmarks draw their random inputs through :func:`bench_seed`, which
folds the ``REPRO_SEED`` environment variable (when set) into each
benchmark's per-site offset.  The default run is therefore byte-for-byte
the historical one (``REPRO_SEED`` unset leaves every seed unchanged),
while ``REPRO_SEED=<n> pytest benchmarks`` re-randomizes the whole suite
deterministically.  Failures print the active base seed for replay.
"""

import pytest

from repro.conformance.generators import SEED_ENV_VAR, resolve_seed


def bench_seed(offset: int = 0) -> int:
    """The benchmark's random seed: its historical offset shifted by REPRO_SEED."""
    return resolve_seed(0) + offset


def report(title: str, paper_claim: str, lines: list[str]) -> None:
    """Print the standardized experiment block recorded in EXPERIMENTS.md."""
    print()
    print(f"== {title}")
    print(f"   paper: {paper_claim}")
    for line in lines:
        print(f"   measured: {line}")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    rep = outcome.get_result()
    if rep.when == "call" and rep.failed:
        rep.sections.append(
            (
                "benchmark seed",
                f"base seed {resolve_seed(0)} "
                f"(set {SEED_ENV_VAR}=<n> to replay this randomization)",
            )
        )
