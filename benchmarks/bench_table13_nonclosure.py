"""Experiment E1.12: Datalog + polynomial constraints is NOT closed.

Paper claim (Example 1.12): the transitive closure of ``y = 2x`` is the set
of points with ``y = 2^i x``, not finitely representable by polynomial
constraints -- the engine must refuse the combination.  Measured: the guard
raises :class:`NotClosedError` up front; with the guard overridden, every
iteration derives a genuinely new constraint (``y = 2^i x``) and the
iteration budget is exhausted -- divergence, exactly as predicted.
"""

import pytest

from benchmarks.conftest import report
from repro.constraints.real_poly import RealPolynomialTheory, poly_eq
from repro.core.datalog import DatalogProgram, Rule
from repro.core.generalized import GeneralizedDatabase
from repro.errors import FixpointDivergenceError, NotClosedError
from repro.logic.syntax import RelationAtom
from repro.poly.polynomial import poly_var

theory = RealPolynomialTheory()


def _rules():
    return [
        Rule(RelationAtom("S", ("x", "y")), (RelationAtom("R", ("x", "y")),)),
        Rule(
            RelationAtom("S", ("x", "y")),
            (RelationAtom("R", ("x", "z")), RelationAtom("S", ("z", "y"))),
        ),
    ]


def _db():
    db = GeneralizedDatabase(theory)
    r = db.create_relation("R", ("x", "y"))
    x, y = poly_var("x"), poly_var("y")
    r.add_tuple([poly_eq(y, 2 * x)])
    return db


def test_guard_refuses_recursion(benchmark):
    def attempt():
        try:
            DatalogProgram(_rules(), theory)
            return False
        except NotClosedError:
            return True

    refused = benchmark(attempt)
    assert refused
    report(
        "Example 1.12: closure guard",
        "Datalog + polynomial constraints is not closed; must be rejected",
        ["engine raises NotClosedError for recursive polynomial programs"],
    )


def test_divergence_when_overridden(benchmark):
    budgets = [4, 8, 12]
    derived_counts = []
    for budget in budgets:
        program = DatalogProgram(_rules(), theory, allow_unsafe_recursion=True)
        try:
            program.evaluate(_db(), max_iterations=budget)
            pytest.fail("expected divergence")
        except FixpointDivergenceError:
            pass
        # count distinct S tuples accumulated before the budget ran out
        program2 = DatalogProgram(_rules(), theory, allow_unsafe_recursion=True)
        try:
            program2.evaluate(_db(), max_iterations=budget)
        except FixpointDivergenceError as error:
            derived_counts.append(error.iterations)

    def one_budgeted_run():
        program = DatalogProgram(_rules(), theory, allow_unsafe_recursion=True)
        try:
            program.evaluate(_db(), max_iterations=5)
        except FixpointDivergenceError:
            return True
        return False

    assert benchmark(one_budgeted_run)
    report(
        "Example 1.12: divergence of the unsafe fixpoint",
        "each iteration i derives the new constraint y = 2^i x, forever",
        [
            f"iteration budgets {budgets} all exhausted without convergence",
        ],
    )
