"""Experiment T1.3 (polynomial column): relational calculus + real polynomial
inequality constraints.

Paper claim (Theorem 2.3): evaluable bottom-up in closed form with NC data
complexity -- in particular polynomial sequential time for a fixed query.
Measured: a disk-intersection query over a growing database of quadratic
constraints scales polynomially; the quantifier elimination (Example 1.9's
``exists x . y = x^2``) produces the exact closed-form answer ``y >= 0``.
"""

from fractions import Fraction


from benchmarks.conftest import report
from repro.constraints.real_poly import RealPolynomialTheory, poly_eq, poly_le
from repro.core.calculus import evaluate_calculus
from repro.core.generalized import GeneralizedDatabase
from repro.harness.measure import fit_exponent, time_callable
from repro.logic.parser import parse_query
from repro.poly.polynomial import Polynomial

theory = RealPolynomialTheory()


def _disk_db(n):
    db = GeneralizedDatabase(theory)
    disks = db.create_relation("D", ("n", "x", "y"))
    x, y, name = (Polynomial.variable(v) for v in ("x", "y", "n"))
    for i in range(n):
        center = Fraction(3 * i, 2)
        disks.add_tuple(
            [poly_eq(name, i), poly_le((x - center) ** 2 + y * y, 1)]
        )
    return db


def _intersections(db):
    query = parse_query(
        "exists x, y . D(n1, x, y) and D(n2, x, y) and n1 != n2", theory=theory
    )
    return evaluate_calculus(query, db, output=("n1", "n2"))


def test_rc_poly_scaling(benchmark):
    sizes = [3, 6, 12]
    times = []
    for n in sizes:
        db = _disk_db(n)
        times.append(time_callable(lambda d=db: _intersections(d)))
    exponent = fit_exponent(sizes, times)
    benchmark(lambda: _intersections(_disk_db(4)))
    report(
        "Table 1.3 cell: relational calculus + real polynomial constraints",
        "NC data complexity (Thm 2.3) => polynomial sequential time",
        [
            f"disk counts {sizes} -> {[f'{t*1000:.0f}ms' for t in times]}",
            f"fitted exponent {exponent:.2f} (two database atoms: ~2)",
        ],
    )
    assert exponent < 3.6


def test_closed_form_parabola_projection(benchmark):
    # Example 1.9: with *equality constraints only* the projection of
    # y = x^2 is not representable; with inequalities it is exactly y >= 0
    db = GeneralizedDatabase(theory)
    parabola = db.create_relation("P", ("x", "y"))
    x, y = Polynomial.variable("x"), Polynomial.variable("y")
    parabola.add_tuple([poly_eq(y, x * x)])
    query = parse_query("exists x . P(x, y)", theory=theory)
    result = benchmark(lambda: evaluate_calculus(query, db, output=("y",)))
    assert result.contains_values([Fraction(0)])
    assert result.contains_values([Fraction(5)])
    assert not result.contains_values([Fraction(-1)])
    report(
        "Example 1.9: closure requires inequalities",
        "exists x . y = x^2 equals y >= 0 -- inexpressible with equations alone",
        ["projection computed in closed form; answer is exactly y >= 0"],
    )


def test_intersection_correctness(benchmark):
    db = _disk_db(5)
    result = benchmark(lambda: _intersections(db))
    # neighbouring disks (centers 1.5 apart, radius 1) intersect; others not
    assert result.contains_values([Fraction(0), Fraction(1)])
    assert not result.contains_values([Fraction(0), Fraction(2)])
    report(
        "Section 2.1: polynomial-constraint spatial query",
        "object intersection expressible and evaluable for arbitrary shapes",
        ["adjacency structure of 5 disks computed exactly"],
    )
