"""Seeded fault injection for constraint theories (the chaos harness).

The supervisor's promise is *predictable degradation*: under resource
pressure or solver faults the engine may slow down, retry, or give up with a
structured error -- but it must never return a wrong answer.  This module
provides the adversary that proves it:

- :class:`ChaosPolicy` -- a seeded, probabilistic fault plan over named
  injection sites (``sat``, ``canonicalize``, ``qe_step``, ``join``);
- :class:`ChaosTheory` -- wraps any :class:`ConstraintTheory` and fires
  injections at those sites before delegating to the real solver;
- :class:`ResilientTheory` -- retry-with-exponential-backoff for the
  transient fault class (:class:`repro.errors.TransientTheoryError`);
- :func:`chaos_scope` -- arms a policy for a dynamic extent.  Outside the
  scope a wrapped theory is inert, so differential oracles can re-examine
  relations produced under chaos without re-triggering faults.

Faults are modeled after failpoint-style harnesses: every injection is drawn
from one seeded :class:`random.Random`, so a run is reproducible from
``(seed, p)`` alone.  A *fairness bound* (``max_consecutive``, kept at or
below ``max_retries``) guarantees a site never fails more than that many
times in a row, which makes retry success deterministic -- the conformance
runner's zero-mismatch acceptance test is therefore non-flaky.

Injected fault kinds:

``transient``
    raises :class:`TransientTheoryError`; the retry wrapper recovers.
``spurious_unsat``
    raises :class:`SpuriousUnsatError` -- a certificate-less UNSAT is a
    protocol violation surfaced as a retryable error, never a silent tuple
    drop (which would corrupt answers and defeat the differential oracles).
``latency``
    sleeps ``latency_seconds`` (exercises deadlines).
``memory_spike``
    allocates and immediately drops ``memory_spike_bytes``.
``theory_error``
    raises a hard, non-retryable :class:`TheoryError` (off by default).
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence, TypeVar

from repro.constraints.base import ConjunctionContext, Conjunction, ConstraintTheory
from repro.errors import SpuriousUnsatError, TheoryError, TransientTheoryError
from repro.logic.syntax import Atom, Formula

T = TypeVar("T")

#: sites a policy may target (the theory-facing subset of the budget sites)
CHAOS_SITES = ("sat", "canonicalize", "qe_step", "join")

#: fault kinds that abort the call (subject to the fairness bound)
RAISING_FAULTS = frozenset({"transient", "spurious_unsat", "theory_error"})

#: fault kinds enabled by default (hard theory_error is opt-in)
DEFAULT_FAULTS = ("transient", "latency", "spurious_unsat", "memory_spike")

#: process-level fault kinds injected by the sharded executor's workers
PROCESS_FAULTS = (
    "worker_kill",
    "heartbeat_stall",
    "drop_result",
    "corrupt_result",
)


@dataclass(frozen=True)
class ProcessFaultPolicy:
    """Seeded process-level fault plan for the sharded executor.

    Decisions are a pure function of ``(seed, round, shard, attempt)`` --
    *not* of which worker happens to execute the shard -- so a re-dispatched
    shard replays deterministically and the conformance runner's
    zero-mismatch acceptance stays non-flaky.  The fairness bound mirrors
    :class:`ChaosPolicy.max_consecutive`: once a shard has been retried
    ``max_consecutive`` times, no further fault is injected for it, so a
    per-task retry budget of at least ``max_consecutive`` always converges.

    Fault kinds (see :data:`PROCESS_FAULTS`):

    ``worker_kill``
        the worker process exits hard (``os._exit``) before reporting;
    ``heartbeat_stall``
        the worker pauses its heartbeat past the liveness deadline while
        sleeping, forcing the supervisor down the suspect/restart path;
    ``drop_result``
        the shard computes but its result message is never sent
        (exercises the straggler timeout and speculative re-dispatch);
    ``corrupt_result``
        the result message arrives with a garbage program fingerprint and
        must be discarded by driver-side validation.
    """

    seed: int = 0
    #: per-shard-attempt injection probability
    p: float = 0.05
    faults: tuple[str, ...] = PROCESS_FAULTS
    #: fairness bound on the shard's *attempt* number: attempts at or past
    #: this count are never faulted, so bounded retries always succeed
    max_consecutive: int = 2
    #: how long a stalled heartbeat stays silent (seconds)
    stall_seconds: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"injection probability must be in [0,1], got {self.p}")
        if self.max_consecutive < 1:
            raise ValueError("max_consecutive must be >= 1")
        unknown = set(self.faults) - set(PROCESS_FAULTS)
        if unknown:
            raise ValueError(f"unknown process faults: {sorted(unknown)}")

    def decide(self, round_id: int, shard_id: int, attempt: int) -> str | None:
        """The fault (if any) for one shard attempt -- deterministic."""
        if not self.faults or attempt >= self.max_consecutive:
            return None
        # mix the coordinates into one integer seed; Random(seed) is then
        # stable across processes and re-dispatches (unlike hash(), which
        # is salted per interpreter)
        mixed = (
            self.seed * 1_000_003
            + round_id * 8_191
            + shard_id * 131
            + attempt
        )
        rng = random.Random(mixed)
        if rng.random() >= self.p:
            return None
        return self.faults[rng.randrange(len(self.faults))]

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "p": self.p,
            "faults": list(self.faults),
            "max_consecutive": self.max_consecutive,
            "stall_seconds": self.stall_seconds,
        }


@dataclass(frozen=True)
class ChaosPolicy:
    """A reproducible fault plan: everything derives from ``(seed, p)``."""

    seed: int = 0
    #: per-call injection probability at each targeted site
    p: float = 0.05
    sites: tuple[str, ...] = CHAOS_SITES
    faults: tuple[str, ...] = DEFAULT_FAULTS
    latency_seconds: float = 0.001
    memory_spike_bytes: int = 1 << 20
    #: retries granted to the transient class (used by :func:`harden`)
    max_retries: int = 3
    backoff_base_seconds: float = 0.0005
    #: fairness bound: never raise more than this many times in a row per
    #: site; keep <= max_retries so retried operations always succeed
    max_consecutive: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"injection probability must be in [0,1], got {self.p}")
        if self.max_consecutive > self.max_retries:
            raise ValueError(
                "max_consecutive must not exceed max_retries "
                f"({self.max_consecutive} > {self.max_retries}): retries could "
                "be exhausted by back-to-back injections"
            )
        unknown = set(self.sites) - set(CHAOS_SITES)
        if unknown:
            raise ValueError(f"unknown chaos sites: {sorted(unknown)}")
        unknown = set(self.faults) - (RAISING_FAULTS | {"latency", "memory_spike"})
        if unknown:
            raise ValueError(f"unknown chaos faults: {sorted(unknown)}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "p": self.p,
            "sites": list(self.sites),
            "faults": list(self.faults),
            "max_retries": self.max_retries,
            "max_consecutive": self.max_consecutive,
        }


@dataclass
class ChaosStats:
    """Injection/retry accounting for one :class:`ChaosRuntime`."""

    calls: int = 0
    injected: dict[str, int] = field(default_factory=dict)
    by_site: dict[str, int] = field(default_factory=dict)
    suppressed_by_fairness: int = 0
    retries: int = 0
    retry_successes: int = 0

    def record(self, site: str, fault: str) -> None:
        self.injected[fault] = self.injected.get(fault, 0) + 1
        self.by_site[site] = self.by_site.get(site, 0) + 1

    def merge(self, other: "ChaosStats") -> None:
        """Fold another runtime's accounting into this one.

        The sharded executor arms a fresh :class:`ChaosRuntime` inside each
        worker (from the same frozen policy); accepted shard results carry
        the worker's stats back, and the driver merges them here so
        ``.as_dict()`` reflects the whole distributed run.
        """
        self.calls += other.calls
        for fault, count in other.injected.items():
            self.injected[fault] = self.injected.get(fault, 0) + count
        for site, count in other.by_site.items():
            self.by_site[site] = self.by_site.get(site, 0) + count
        self.suppressed_by_fairness += other.suppressed_by_fairness
        self.retries += other.retries
        self.retry_successes += other.retry_successes

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def process_faults_injected(self) -> int:
        return sum(
            count
            for fault, count in self.injected.items()
            if fault in PROCESS_FAULTS
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "total_injected": self.total_injected,
            "injected_by_fault": dict(sorted(self.injected.items())),
            "injected_by_site": dict(sorted(self.by_site.items())),
            "suppressed_by_fairness": self.suppressed_by_fairness,
            "retries": self.retries,
            "retry_successes": self.retry_successes,
        }


class ChaosRuntime:
    """A policy armed with its seeded RNG, stats, and fairness counters."""

    def __init__(self, policy: ChaosPolicy) -> None:
        self.policy = policy
        self.rng = random.Random(policy.seed)
        self.stats = ChaosStats()
        self._consecutive: dict[str, int] = {}

    def fire(self, site: str) -> None:
        """Maybe inject one fault at ``site`` (called from wrapped theories)."""
        policy = self.policy
        if site not in policy.sites:
            return
        self.stats.calls += 1
        if self.rng.random() >= policy.p:
            # a clean pass-through resets the consecutive-failure streak
            self._consecutive[site] = 0
            return
        fault = self.rng.choice(policy.faults)
        if fault in RAISING_FAULTS:
            if self._consecutive.get(site, 0) >= policy.max_consecutive:
                # fairness bound: let the retry succeed deterministically
                self._consecutive[site] = 0
                self.stats.suppressed_by_fairness += 1
                return
            self._consecutive[site] = self._consecutive.get(site, 0) + 1
        self.stats.record(site, fault)
        if fault == "latency":
            time.sleep(policy.latency_seconds)
        elif fault == "memory_spike":
            spike = bytearray(policy.memory_spike_bytes)
            del spike
        elif fault == "transient":
            raise TransientTheoryError(
                f"chaos: injected transient solver fault at site {site!r}"
            )
        elif fault == "spurious_unsat":
            raise SpuriousUnsatError(
                f"chaos: solver claimed UNSAT without a certificate at "
                f"site {site!r}"
            )
        elif fault == "theory_error":
            raise TheoryError(
                f"chaos: injected hard theory fault at site {site!r}"
            )


#: the ambient armed runtime; None means chaos is disarmed
_ACTIVE_CHAOS: ContextVar[ChaosRuntime | None] = ContextVar(
    "repro_chaos_runtime", default=None
)


def current_chaos() -> ChaosRuntime | None:
    """The armed :class:`ChaosRuntime`, if any."""
    return _ACTIVE_CHAOS.get()


@contextmanager
def chaos_scope(policy: ChaosPolicy | ChaosRuntime | None) -> Iterator[ChaosRuntime | None]:
    """Arm ``policy`` for the dynamic extent (``None``: leave disarmed).

    Pass an existing :class:`ChaosRuntime` to continue its RNG stream and
    stats across several scopes (the conformance runner arms one runtime per
    strategy execution but keeps a single stream per case).
    """
    if policy is None:
        yield None
        return
    runtime = policy if isinstance(policy, ChaosRuntime) else ChaosRuntime(policy)
    saved = _ACTIVE_CHAOS.set(runtime)
    try:
        yield runtime
    finally:
        _ACTIVE_CHAOS.reset(saved)


def _inject(site: str) -> None:
    runtime = _ACTIVE_CHAOS.get()
    if runtime is not None:
        runtime.fire(site)


def unwrap_theory(theory: ConstraintTheory) -> ConstraintTheory:
    """Strip chaos/retry wrappers down to the underlying theory.

    Call sites that dispatch on the concrete theory class (boolean algebra
    access, spec decoding) must unwrap first -- ``isinstance`` checks do not
    see through the delegating wrappers.
    """
    while isinstance(theory, _TheoryWrapper):
        theory = theory.inner
    return theory


class _TheoryWrapper(ConstraintTheory):
    """Shared delegation plumbing for :class:`ChaosTheory`/:class:`ResilientTheory`.

    The wrapper shares the inner theory's :class:`TheoryCache` object (the
    engine flips ``theory.cache.enabled`` -- both layers must observe it) and
    delegates every operation; subclasses interpose on the public entry
    points only.
    """

    def __init__(self, inner: ConstraintTheory) -> None:
        self.inner = inner
        self.cache = inner.cache

    # identity follows the wrapped theory
    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    @property
    def canonical_decides_sat(self) -> bool:  # type: ignore[override]
        return self.inner.canonical_decides_sat

    # ------------------------------------------------------- pure delegation
    def validate_atom(self, atom: Atom) -> None:
        self.inner.validate_atom(atom)

    def negate_atom(self, atom: Atom) -> Formula:
        return self.inner.negate_atom(atom)

    def equality(self, left: object, right: object) -> Atom:
        return self.inner.equality(left, right)

    def constant(self, value: object) -> object:
        return self.inner.constant(value)

    def atom_constants(self, atom: Atom) -> frozenset:
        return self.inner.atom_constants(atom)

    def pinned_constants(self, atoms: Sequence[Atom]) -> Mapping[str, Any]:
        return self.inner.pinned_constants(atoms)

    def conjunction_bounds(
        self, context: ConjunctionContext | Sequence[Atom], name: str
    ) -> tuple[Any, Any] | None:
        return self.inner.conjunction_bounds(context, name)

    def _is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        return self.inner._is_satisfiable(atoms)

    def _canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        return self.inner._canonicalize(atoms)

    # public entry points (overridden by subclasses to interpose)
    def is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        return self.inner.is_satisfiable(atoms)

    def canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        return self.inner.canonicalize(atoms)

    def eliminate(
        self, atoms: Sequence[Atom], drop: Iterable[str]
    ) -> list[Conjunction]:
        return self.inner.eliminate(atoms, drop)

    def sample_point(
        self, atoms: Sequence[Atom], variables: Sequence[str]
    ) -> dict[str, Any] | None:
        return self.inner.sample_point(atoms, variables)

    def begin_conjunction(self, atoms: Sequence[Atom]) -> ConjunctionContext:
        return self.inner.begin_conjunction(atoms)

    def extend_conjunction(
        self, context: ConjunctionContext, new_atoms: Sequence[Atom]
    ) -> ConjunctionContext:
        return self.inner.extend_conjunction(context, new_atoms)


class ChaosTheory(_TheoryWrapper):
    """Fire ambient chaos injections before delegating to the real solver.

    Inert unless a :func:`chaos_scope` is armed, so wrapped theories can be
    built once and reused; relations holding a reference to this wrapper are
    safe to inspect after the scope exits.
    """

    def is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        _inject("sat")
        return self.inner.is_satisfiable(atoms)

    def canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        _inject("canonicalize")
        return self.inner.canonicalize(atoms)

    def eliminate(
        self, atoms: Sequence[Atom], drop: Iterable[str]
    ) -> list[Conjunction]:
        _inject("qe_step")
        return self.inner.eliminate(atoms, drop)

    def begin_conjunction(self, atoms: Sequence[Atom]) -> ConjunctionContext:
        _inject("join")
        return self.inner.begin_conjunction(atoms)

    def extend_conjunction(
        self, context: ConjunctionContext, new_atoms: Sequence[Atom]
    ) -> ConjunctionContext:
        _inject("join")
        return self.inner.extend_conjunction(context, new_atoms)


class ResilientTheory(_TheoryWrapper):
    """Retry the transient fault class with exponential backoff.

    Wraps (typically) a :class:`ChaosTheory`; any
    :class:`TransientTheoryError` raised below is retried up to
    ``max_retries`` times, sleeping ``backoff_base * 2**attempt`` between
    attempts.  Hard :class:`TheoryError`\\ s propagate immediately.
    """

    def __init__(
        self,
        inner: ConstraintTheory,
        max_retries: int = 3,
        backoff_base_seconds: float = 0.0005,
    ) -> None:
        super().__init__(inner)
        self.max_retries = max_retries
        self.backoff_base_seconds = backoff_base_seconds

    def _with_retry(self, operation: Callable[[], T]) -> T:
        runtime = _ACTIVE_CHAOS.get()
        attempt = 0
        while True:
            try:
                result = operation()
            except TransientTheoryError:
                if attempt >= self.max_retries:
                    raise
                if runtime is not None:
                    runtime.stats.retries += 1
                time.sleep(self.backoff_base_seconds * (2**attempt))
                attempt += 1
            else:
                if attempt and runtime is not None:
                    runtime.stats.retry_successes += 1
                return result

    def is_satisfiable(self, atoms: Sequence[Atom]) -> bool:
        return self._with_retry(lambda: self.inner.is_satisfiable(atoms))

    def canonicalize(self, atoms: Sequence[Atom]) -> Conjunction | None:
        return self._with_retry(lambda: self.inner.canonicalize(atoms))

    def eliminate(
        self, atoms: Sequence[Atom], drop: Iterable[str]
    ) -> list[Conjunction]:
        frozen = tuple(drop)
        return self._with_retry(lambda: self.inner.eliminate(atoms, frozen))

    def sample_point(
        self, atoms: Sequence[Atom], variables: Sequence[str]
    ) -> dict[str, Any] | None:
        return self._with_retry(lambda: self.inner.sample_point(atoms, variables))

    def begin_conjunction(self, atoms: Sequence[Atom]) -> ConjunctionContext:
        return self._with_retry(lambda: self.inner.begin_conjunction(atoms))

    def extend_conjunction(
        self, context: ConjunctionContext, new_atoms: Sequence[Atom]
    ) -> ConjunctionContext:
        return self._with_retry(
            lambda: self.inner.extend_conjunction(context, new_atoms)
        )


def harden(
    theory: ConstraintTheory, policy: ChaosPolicy | None = None
) -> ConstraintTheory:
    """The standard chaos stack: retry wrapper over an injection wrapper.

    ``policy`` only supplies the retry parameters here; injection itself is
    governed by whichever policy is armed via :func:`chaos_scope` at call
    time.
    """
    retries = policy.max_retries if policy is not None else 3
    backoff = policy.backoff_base_seconds if policy is not None else 0.0005
    return ResilientTheory(
        ChaosTheory(theory), max_retries=retries, backoff_base_seconds=backoff
    )


def parse_chaos_spec(tokens: str | list[str]) -> ChaosPolicy:
    """Parse ``--chaos`` tokens like ``p=0.05 seed=7 latency=0.002``."""
    if isinstance(tokens, str):
        tokens = tokens.split()
    fields: dict[str, Any] = {}
    for token in tokens:
        token = token.strip()
        if not token:
            continue
        key, sep, value = token.partition("=")
        if not sep:
            raise ValueError(f"bad chaos token {token!r} (expected key=value)")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "p":
                fields["p"] = float(value)
            elif key == "seed":
                fields["seed"] = int(value)
            elif key in ("latency", "latency_seconds"):
                fields["latency_seconds"] = float(value)
            elif key == "retries":
                fields["max_retries"] = int(value)
            elif key == "sites":
                fields["sites"] = tuple(s for s in value.split(",") if s)
            elif key == "faults":
                fields["faults"] = tuple(s for s in value.split(",") if s)
            else:
                raise ValueError(f"unknown chaos key {key!r}")
        except ValueError as error:
            if "unknown chaos key" in str(error):
                raise
            raise ValueError(f"bad chaos value in {token!r}") from error
    return ChaosPolicy(**fields)
