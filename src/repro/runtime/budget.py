"""Resource budgets and the cooperative execution supervisor.

The paper's closed-form evaluation theorems (Thm 2.3, 3.14, 4.11) bound *data*
complexity, but the worst cases are still brutal: Tarski-style QE blow-up,
Example 1.12 divergence, |adom|-exponential boolean joins (Thm 5.11).  A
production evaluator therefore runs every query under an enforceable
:class:`Budget` -- wall-clock deadline, QE step budget, fixpoint round budget,
tuple/constraint-count budget, and a cooperative :class:`CancellationToken`.

Design: budgets are *ambient*.  A frozen :class:`Budget` travels in
``EngineOptions``; the engine (or any caller, via :func:`supervised`) installs
a mutable :class:`BudgetMeter` into a :class:`contextvars.ContextVar`, and the
hot loops call the module-level :func:`tick` at their natural tick points:

- each Datalog(not) round (``core/datalog.py``, site ``"round"``);
- each eliminated variable / QE branch (``qe/*.py``, site ``"qe_step"``);
- each tuple admitted by the algebra (``relational/algebra.py`` and
  ``core/algebra.py``, site ``"tuple"``);
- each join extension step (``core/datalog.py``, site ``"join"``).

:func:`tick` is a no-op when no meter is installed, so unsupervised callers
pay one ContextVar read and nothing else.  When a limit trips the meter
raises :class:`repro.errors.BudgetExceededError` carrying a structured
:class:`ResourceReport` (which budget, limit vs. observed, elapsed seconds,
per-site counts).

Per-rung QE sub-budgets chain meters: a child meter forwards every tick to
its parent (so global limits still apply inside a rung) while enforcing its
own step cap with ``scope="qe_rung"`` -- the degradation ladder in
``constraints/real_poly.py`` catches exactly that scope and falls through to
the next elimination backend.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import BudgetExceededError

#: tick sites recognized by the supervisor (chaos uses the same vocabulary)
SITES = ("round", "qe_step", "tuple", "join", "sat", "canonicalize")


class CancellationToken:
    """Cooperative cancellation: flip once, observed at every tick point.

    Thread-safe in the only way that matters (a single boolean store); a
    caller on another thread -- a signal handler, a server timeout -- calls
    :meth:`cancel` and the supervised evaluation raises
    :class:`BudgetExceededError` at its next tick.
    """

    def __init__(self) -> None:
        self._cancelled = False
        self.reason: str | None = None

    def cancel(self, reason: str | None = None) -> None:
        self.reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


@dataclass(frozen=True)
class ResourceReport:
    """Structured account of a budget trip (carried by BudgetExceededError).

    ``budget_kind`` names the limit that tripped (``"deadline"``,
    ``"qe_steps"``, ``"rounds"``, ``"tuples"``, ``"joins"``, ``"cancelled"``);
    ``scope`` distinguishes a global budget (``"global"``) from a QE-ladder
    rung sub-budget (``"qe_rung"``) and a sharded-worker lease (``"shard"``);
    ``counts`` has the per-site tick totals observed so far -- the "partial
    progress" of the run.  Frozen (and lock/lambda-free) so reports pickle
    across the process boundary and back into the parent meter.
    """

    budget_kind: str
    limit: float
    used: float
    elapsed_seconds: float
    counts: dict[str, int] = field(default_factory=dict)
    scope: str = "global"
    note: str | None = None

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "budget_kind": self.budget_kind,
            "limit": self.limit,
            "used": self.used,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "counts": dict(self.counts),
            "scope": self.scope,
        }
        if self.note:
            payload["note"] = self.note
        return payload


@dataclass(frozen=True)
class Budget:
    """Immutable resource limits for one supervised evaluation.

    ``None`` disables the corresponding limit.  ``partial_results`` selects
    the failure mode of a budget-killed *fixpoint*: ``"raise"`` propagates
    :class:`BudgetExceededError`; ``"fringe"`` makes the Datalog evaluator
    return the last sound stage tagged ``incomplete=True`` (see
    ``DatalogProgram.evaluate`` for the soundness argument).
    """

    #: wall-clock limit in seconds, measured from :meth:`start`
    deadline_seconds: float | None = None
    #: total QE elimination steps (branches/candidates/cells) across the run
    qe_steps: int | None = None
    #: Datalog fixpoint rounds (applies on top of ``max_iterations``)
    rounds: int | None = None
    #: generalized/finite tuples admitted by the algebra operators
    tuples: int | None = None
    #: join extension steps inside the Datalog join
    joins: int | None = None
    #: per-rung QE step cap for the degradation ladder (FM and VS rungs)
    qe_rung_steps: int | None = None
    #: cooperative cancellation token (shared, mutable by design)
    token: CancellationToken | None = None
    #: "raise" | "fringe"
    partial_results: str = "raise"

    def __post_init__(self) -> None:
        if self.partial_results not in ("raise", "fringe"):
            raise ValueError(
                f"partial_results must be 'raise' or 'fringe', "
                f"not {self.partial_results!r}"
            )

    def start(self) -> "BudgetMeter":
        """Begin metering against this budget (starts the deadline clock)."""
        return BudgetMeter(self)

    def as_dict(self) -> dict[str, Any]:
        return {
            "deadline_seconds": self.deadline_seconds,
            "qe_steps": self.qe_steps,
            "rounds": self.rounds,
            "tuples": self.tuples,
            "joins": self.joins,
            "qe_rung_steps": self.qe_rung_steps,
            "partial_results": self.partial_results,
        }


#: maps tick sites onto the budget limit they consume
_SITE_LIMITS = {
    "round": ("rounds", "rounds"),
    "qe_step": ("qe_steps", "qe_steps"),
    "tuple": ("tuples", "tuples"),
    "join": ("joins", "joins"),
}


class BudgetMeter:
    """Mutable per-run counters enforcing one :class:`Budget`.

    Created by :meth:`Budget.start`; installed ambiently by
    :func:`supervised` (or by the Datalog engine).  ``parent`` chains a
    QE-rung sub-meter onto the run's global meter: ticks forward to the
    parent first (global limits win), then the child enforces its own cap
    with ``scope="qe_rung"``.
    """

    def __init__(
        self,
        budget: Budget,
        parent: "BudgetMeter | None" = None,
        scope: str = "global",
    ) -> None:
        self.budget = budget
        self.parent = parent
        self.scope = scope
        self.started = time.monotonic()
        self.counts: dict[str, int] = {site: 0 for site in SITES}
        # the engine's parallel rounds tick one shared meter from several
        # worker threads; the lock keeps the read-modify-write lossless
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ ticks
    def tick(self, site: str, amount: int = 1) -> None:
        """Record ``amount`` units of work at ``site``; raise if over budget."""
        if self.parent is not None:
            self.parent.tick(site, amount)
        with self._lock:
            self.counts[site] = self.counts.get(site, 0) + amount
        self.check(site)

    def check(self, site: str = "tick") -> None:
        """Enforce the deadline/cancellation and the limit tied to ``site``."""
        budget = self.budget
        token = budget.token
        if token is not None and token.cancelled:
            self._trip("cancelled", 1, 1, note=token.reason)
        deadline = budget.deadline_seconds
        elapsed = time.monotonic() - self.started
        if deadline is not None and elapsed > deadline:
            self._trip("deadline", deadline, elapsed)
        mapped = _SITE_LIMITS.get(site)
        if mapped is not None:
            kind, attr = mapped
            limit = getattr(budget, attr)
            used = self.counts.get(site, 0)
            if limit is not None and used > limit:
                self._trip(kind, limit, used)

    def _trip(
        self, kind: str, limit: float, used: float, note: str | None = None
    ) -> None:
        report = self.report(kind, limit, used, note=note)
        raise BudgetExceededError(
            f"{kind} budget exceeded ({used} > {limit}, scope={self.scope})",
            report=report,
        )

    def report(
        self,
        kind: str = "snapshot",
        limit: float = 0,
        used: float = 0,
        note: str | None = None,
    ) -> ResourceReport:
        """A :class:`ResourceReport` describing this meter's progress."""
        return ResourceReport(
            budget_kind=kind,
            limit=limit,
            used=used,
            elapsed_seconds=time.monotonic() - self.started,
            counts={k: v for k, v in self.counts.items() if v},
            scope=self.scope,
            note=note,
        )

    # ------------------------------------------------------- cross-process
    def remaining_seconds(self) -> float | None:
        """Wall-clock budget left on the deadline (``None``: no deadline)."""
        deadline = self.budget.deadline_seconds
        if deadline is None:
            return None
        return max(deadline - (time.monotonic() - self.started), 0.0)

    def split_leases(self, parts: int) -> list[Budget]:
        """Carve ``parts`` never-over-granting child budgets ("leases").

        The sharded executor runs every shard of a round under a *lease*
        meter built in the worker from a serialized :class:`Budget`
        snapshot.  Each divisible site limit grants ``floor(remaining /
        parts)`` units, so the sum of all leases never exceeds what this
        meter has left; workers report :meth:`settled_counts` (clamped at
        the lease) and the parent charges them back via :meth:`absorb`.
        The wall-clock deadline is shared rather than divided -- shards run
        concurrently against the same clock.  Rounds are excluded: workers
        never tick the ``round`` site.
        """
        if parts < 1:
            raise ValueError(f"parts must be >= 1, not {parts}")
        with self._lock:
            snapshot = dict(self.counts)
        fields: dict[str, Any] = {}
        for site, (_kind, attr) in _SITE_LIMITS.items():
            if attr == "rounds":
                continue
            limit = getattr(self.budget, attr)
            if limit is None:
                continue
            remaining = max(int(limit) - snapshot.get(site, 0), 0)
            fields[attr] = remaining // parts
        deadline = self.remaining_seconds()
        if deadline is not None:
            fields["deadline_seconds"] = deadline
        if self.budget.qe_rung_steps is not None:
            fields["qe_rung_steps"] = self.budget.qe_rung_steps
        lease = Budget(partial_results="raise", **fields)
        return [lease] * parts

    def settled_counts(self) -> dict[str, int]:
        """Per-site tick counts clamped at this meter's budget limits.

        :meth:`tick` increments *then* checks, so a tripped meter's raw
        count overshoots its limit by the refused tick.  Cross-process
        accounting reports settled counts instead: the refused unit of work
        was never performed, and clamping keeps the sum of worker reports
        within the parent's grant (the over-grant property test relies on
        this).
        """
        with self._lock:
            snapshot = dict(self.counts)
        settled: dict[str, int] = {}
        for site, used in snapshot.items():
            mapped = _SITE_LIMITS.get(site)
            if mapped is not None:
                limit = getattr(self.budget, mapped[1])
                if limit is not None:
                    used = min(used, int(limit))
            settled[site] = used
        return settled

    def absorb(self, counts: dict[str, int]) -> None:
        """Charge a worker's settled tick counts back to this meter.

        Iterates sites in the fixed :data:`SITES` order so absorption is
        deterministic; a lease that consumed the last of a global limit
        trips here exactly like the same ticks would have locally.
        """
        for site in SITES:
            amount = counts.get(site, 0)
            if amount:
                self.tick(site, amount)

    # ------------------------------------------------------------- sub-budgets
    def rung_meter(self, steps: int | None = None) -> "BudgetMeter":
        """A child meter capping one QE-ladder rung at ``steps`` qe_steps.

        The child forwards every tick here first, so global budgets still
        apply inside a rung; its own trip carries ``scope="qe_rung"`` which
        the ladder catches to fall through to the next backend.
        """
        cap = steps if steps is not None else self.budget.qe_rung_steps
        child_budget = Budget(qe_steps=cap)
        return BudgetMeter(child_budget, parent=self, scope="qe_rung")


#: the ambient meter: None means unsupervised (every tick is a cheap no-op)
_ACTIVE_METER: ContextVar[BudgetMeter | None] = ContextVar(
    "repro_budget_meter", default=None
)


def active_meter() -> BudgetMeter | None:
    """The currently installed :class:`BudgetMeter`, if any."""
    return _ACTIVE_METER.get()


def tick(site: str, amount: int = 1) -> None:
    """Module-level tick: charge the ambient meter (no-op when none)."""
    meter = _ACTIVE_METER.get()
    if meter is not None:
        meter.tick(site, amount)


@contextmanager
def metered(meter: BudgetMeter | None) -> Iterator[BudgetMeter | None]:
    """Install ``meter`` as the ambient meter for the dynamic extent."""
    saved = _ACTIVE_METER.set(meter)
    try:
        yield meter
    finally:
        _ACTIVE_METER.reset(saved)


@contextmanager
def supervised(budget: Budget | None) -> Iterator[BudgetMeter | None]:
    """Run a block under a fresh meter for ``budget`` (``None``: unchanged).

    The primary entry point for callers outside the engine (the conformance
    runner, the shell, tests)::

        with supervised(Budget(deadline_seconds=0.05)):
            program.evaluate(database)
    """
    if budget is None:
        yield _ACTIVE_METER.get()
        return
    meter = budget.start()
    saved = _ACTIVE_METER.set(meter)
    try:
        yield meter
    finally:
        _ACTIVE_METER.reset(saved)


def parse_budget_spec(tokens: str | list[str]) -> Budget:
    """Parse ``key=value`` budget tokens (CLI / shell syntax).

    Accepts a single string (``"deadline=0.05 rounds=10 fringe"``) or a token
    list.  Keys: ``deadline`` (seconds, float), ``qe_steps``, ``rounds``,
    ``tuples``, ``joins``, ``qe_rung_steps`` (ints); the bare word ``fringe``
    (or ``partial=fringe``) selects partial-result mode.
    """
    if isinstance(tokens, str):
        tokens = tokens.split()
    fields: dict[str, Any] = {}
    for token in tokens:
        token = token.strip()
        if not token:
            continue
        if token in ("fringe", "partial=fringe", "partial_results=fringe"):
            fields["partial_results"] = "fringe"
            continue
        if token in ("raise", "partial=raise", "partial_results=raise"):
            fields["partial_results"] = "raise"
            continue
        key, sep, value = token.partition("=")
        if not sep:
            raise ValueError(f"bad budget token {token!r} (expected key=value)")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key in ("deadline", "deadline_seconds"):
                fields["deadline_seconds"] = float(value)
            elif key in ("qe_steps", "qe"):
                fields["qe_steps"] = int(value)
            elif key == "rounds":
                fields["rounds"] = int(value)
            elif key == "tuples":
                fields["tuples"] = int(value)
            elif key == "joins":
                fields["joins"] = int(value)
            elif key in ("qe_rung_steps", "rung"):
                fields["qe_rung_steps"] = int(value)
            else:
                raise ValueError(f"unknown budget key {key!r}")
        except ValueError as error:
            if "unknown budget key" in str(error):
                raise
            raise ValueError(f"bad budget value in {token!r}") from error
    return Budget(**fields)
