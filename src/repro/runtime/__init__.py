"""Execution supervisor: budgets, deadlines, degradation, fault injection.

See DESIGN.md section 9.  :mod:`repro.runtime.budget` provides the ambient
:class:`Budget`/:class:`BudgetMeter` machinery and the module-level
:func:`tick` used by the fixpoint/QE/algebra loops;
:mod:`repro.runtime.chaos` provides the seeded fault-injection wrappers used
by the conformance runner's ``--chaos`` mode.
"""

from repro.runtime.budget import (
    Budget,
    BudgetMeter,
    CancellationToken,
    ResourceReport,
    active_meter,
    metered,
    parse_budget_spec,
    supervised,
    tick,
)
from repro.runtime.chaos import (
    ChaosPolicy,
    ChaosRuntime,
    ChaosStats,
    ChaosTheory,
    ProcessFaultPolicy,
    ResilientTheory,
    chaos_scope,
    current_chaos,
    harden,
    parse_chaos_spec,
    unwrap_theory,
)
from repro.runtime.cluster import (
    ClusterConfig,
    ShardedExecutor,
    ShardResult,
    ShardTask,
    WorkerSupervisor,
)

__all__ = [
    "Budget",
    "BudgetMeter",
    "CancellationToken",
    "ResourceReport",
    "active_meter",
    "metered",
    "parse_budget_spec",
    "supervised",
    "tick",
    "ChaosPolicy",
    "ChaosRuntime",
    "ChaosStats",
    "ChaosTheory",
    "ProcessFaultPolicy",
    "ResilientTheory",
    "chaos_scope",
    "current_chaos",
    "harden",
    "parse_chaos_spec",
    "unwrap_theory",
    "ClusterConfig",
    "ShardedExecutor",
    "ShardResult",
    "ShardTask",
    "WorkerSupervisor",
]
