"""Fault-tolerant multi-process sharded evaluation (the cluster runtime).

PR 5's parallel rounds fan (rule, delta-position) tasks across a *thread*
pool, which is GIL-bound for pure-Python theory work.  This module crosses
the process boundary: a pool of ``multiprocessing`` workers holds replicas
of the evaluation world, the driver broadcasts each round's new tuples and
delta, splits the round into *shard tasks*, and merges the shards' derived
lists back **in shard order** -- the same contiguous-chunk merge argument as
PR 5, so sharded fixpoints are byte-identical to serial (see DESIGN.md
section 14 for the full determinism proof, including the delta-slice case).

Crossing the process boundary is exactly where robustness becomes the
feature, so the supervision layer is the headline:

- :class:`WorkerSupervisor` -- heartbeats (a daemon thread in each worker
  writing ``time.monotonic()`` into a shared ``Value``) with liveness
  deadlines; the lifecycle state machine is spawn -> live -> suspect ->
  restarted -> exhausted;
- crash detection with bounded restart and exponential backoff;
  :class:`repro.errors.WorkerCrashError` after ``max_restarts``;
- idempotent shard tasks: any shard can be re-dispatched to a surviving
  worker (a shard is a pure function of the synced world + delta slice);
  stragglers past ``straggler_timeout`` are speculatively re-executed and
  the first *valid* result wins -- results are deterministic across
  attempts, so "first wins" is also "only possible value wins";
- per-task retry budgets fair-bounded like ``ChaosPolicy.max_consecutive``
  (:class:`repro.runtime.chaos.ProcessFaultPolicy` never faults an attempt
  at or past its fairness bound, so bounded retries always converge);
- whole-pool graceful degradation: :class:`repro.errors.ClusterError`
  (including worker exhaustion) makes the engine discard the partial round
  and fall back to the in-process parallel path -- tagged in
  ``EvaluationStats.shard_fallback``, never an error.

Budgets propagate as *leases*: the driver splits its meter's remaining
limits across a round's shards (:meth:`BudgetMeter.split_leases`), workers
meter against the lease and report settled counts, and the driver absorbs
them back in shard order -- so a worker-side budget trip still yields the
PR 4 fringe partial fixpoint.  Chaos scopes propagate as re-seeded frozen
policies (seed mixed per (round, shard, attempt), so a re-dispatched shard
replays identically on any worker), and process-level faults (worker kill,
heartbeat stall, dropped/corrupt result) are injected from the same
deterministic coordinates.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import queue
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import multiprocessing
import multiprocessing.context
import multiprocessing.queues
import multiprocessing.sharedctypes

from repro.errors import BudgetExceededError, ClusterError, WorkerCrashError
from repro.runtime import budget as budget_mod
from repro.runtime import chaos as chaos_mod
from repro.runtime.budget import Budget, BudgetMeter, active_meter, metered
from repro.runtime.chaos import (
    ChaosPolicy,
    ChaosRuntime,
    ChaosStats,
    ProcessFaultPolicy,
    chaos_scope,
    current_chaos,
)

if TYPE_CHECKING:
    from repro.core.datalog import (
        DatalogProgram,
        EvaluationStats,
        Rule,
        _EvalCaches,
    )
    from repro.core.generalized import GeneralizedDatabase, GeneralizedTuple

#: sentinel asking a worker's main loop to exit cleanly
_SHUTDOWN = "__shutdown__"

#: worker lifecycle states reported by the supervisor
LIFECYCLE = ("spawn", "live", "suspect", "restarted", "exhausted")


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing, liveness, and fault-injection knobs for the sharded pool.

    Frozen (and picklable) like the other runtime policies; travels in
    ``EngineOptions.cluster``.
    """

    #: worker process count (0: derive from ``shard_workers``/CPU count)
    workers: int = 0
    #: smallest delta slice worth shipping to a worker; rounds whose
    #: shardable deltas are smaller run as whole-task shards
    min_slice: int = 8
    #: seconds between heartbeat writes inside each worker
    heartbeat_interval: float = 0.05
    #: a worker whose heartbeat is older than this is *suspect* and restarted
    liveness_timeout: float = 2.0
    #: a shard outstanding longer than this is speculatively re-dispatched
    straggler_timeout: float = 5.0
    #: bounded restarts per worker before it is *exhausted* (WorkerCrashError)
    max_restarts: int = 2
    #: re-dispatch budget per shard task (fairness-bounded, see faults)
    max_task_retries: int = 3
    #: exponential backoff base for restarts (base * 2**restarts seconds)
    backoff_base_seconds: float = 0.01
    #: multiprocessing start method (None: platform default)
    start_method: str | None = None
    #: process-level fault injection plan (None: no process chaos)
    faults: ProcessFaultPolicy | None = None
    #: route even single-shard rounds through the pool (conformance uses
    #: this to maximize cross-process coverage on tiny cases)
    force: bool = False

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.min_slice < 1:
            raise ValueError("min_slice must be >= 1")
        if self.heartbeat_interval <= 0 or self.liveness_timeout <= 0:
            raise ValueError("heartbeat/liveness intervals must be positive")
        if self.straggler_timeout <= 0:
            raise ValueError("straggler_timeout must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.max_task_retries < 1:
            raise ValueError("max_task_retries must be >= 1")
        if (
            self.faults is not None
            and self.faults.max_consecutive > self.max_task_retries
        ):
            raise ValueError(
                "faults.max_consecutive must not exceed max_task_retries "
                f"({self.faults.max_consecutive} > {self.max_task_retries}): "
                "retries could be exhausted by back-to-back injections"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "min_slice": self.min_slice,
            "heartbeat_interval": self.heartbeat_interval,
            "liveness_timeout": self.liveness_timeout,
            "straggler_timeout": self.straggler_timeout,
            "max_restarts": self.max_restarts,
            "max_task_retries": self.max_task_retries,
            "start_method": self.start_method,
            "faults": None if self.faults is None else self.faults.as_dict(),
            "force": self.force,
        }


# --------------------------------------------------------------------- wire
# Every message is a frozen module-level dataclass (picklable by
# construction: no locks, lambdas, or compiled closures -- shards are keyed
# by the PlanCache program fingerprint instead of carrying compiled rules).


@dataclass(frozen=True)
class _Load:
    """Full program + world replica (sent at spawn and after a restart)."""

    fingerprint: tuple[str, ...]
    rules: tuple[Any, ...]
    theory: Any
    options: Any
    #: (name, variables, canonical tuples) per relation, driver order
    relations: tuple[tuple[str, tuple[str, ...], tuple[Any, ...]], ...]
    theory_cache_enabled: bool


@dataclass(frozen=True)
class _Sync:
    """Per-round replica catch-up: appended tuples + the delta reference.

    ``delta`` entries are ``(name, count)`` tail references when the delta
    is verifiably the relation's insertion-order tail (the semi-naive
    invariant), else ``(name, tuple-of-tuples)`` shipped explicitly.
    ``None`` means a delta-less round (naive/stratified/inflationary).
    """

    round_id: int
    updates: tuple[tuple[str, tuple[str, ...], tuple[Any, ...]], ...]
    delta: tuple[tuple[str, int | tuple[Any, ...]], ...] | None


@dataclass(frozen=True)
class ShardTask:
    """One idempotent unit of a round: fire a rule over a delta slice.

    A pure function of the worker's synced replica, so it can be dispatched
    to any worker (or several, speculatively) and re-dispatched after a
    crash; ``shard_id`` is the merge position, ``attempt`` feeds the
    deterministic chaos coordinates.
    """

    round_id: int
    shard_id: int
    attempt: int
    fingerprint: tuple[str, ...]
    rule_index: int
    delta_position: int | None
    #: delta slice bounds (None: the whole task, undivided)
    start: int | None
    stop: int | None
    lease: Budget | None
    chaos: ChaosPolicy | None
    #: pre-decided process fault for this attempt (driver-stamped so the
    #: decision is a pure function of (round, shard, attempt))
    fault: str | None
    stall_seconds: float


@dataclass(frozen=True)
class ShardResult:
    """A worker's answer for one shard attempt.

    ``failure`` is ``None`` on success, ``("budget", ResourceReport)`` on a
    lease trip, or ``("error", message)`` on an unexpected exception.
    ``counts`` carries the lease meter's *settled* tick counts (clamped at
    the lease, so sums never exceed the parent's grant).
    """

    worker_id: int
    round_id: int
    shard_id: int
    attempt: int
    fingerprint: tuple[str, ...]
    derived: tuple[Any, ...]
    counts: dict[str, int]
    stats: Any
    chaos_stats: ChaosStats | None
    failure: tuple[str, Any] | None


# ------------------------------------------------------------- worker side


def _worker_main(
    worker_id: int,
    inbox: "multiprocessing.queues.Queue[Any]",
    outbox: "multiprocessing.queues.Queue[Any]",
    heartbeat: "multiprocessing.sharedctypes.Synchronized[float]",
    heartbeat_interval: float,
) -> None:
    """Worker process entry point: heartbeat + message loop.

    The worker may have been forked mid-evaluation, inheriting the driver's
    ambient budget meter and chaos runtime; both are neutralized up front --
    shard execution installs its own lease meter and chaos scope.
    """
    budget_mod._ACTIVE_METER.set(None)
    chaos_mod._ACTIVE_CHAOS.set(None)
    stall_until = [0.0]
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            now = time.monotonic()
            if now >= stall_until[0]:
                heartbeat.value = now
            stop.wait(heartbeat_interval)

    threading.Thread(
        target=beat, name=f"repro-heartbeat-{worker_id}", daemon=True
    ).start()
    state: dict[str, Any] = {}
    try:
        while True:
            try:
                message = inbox.get()
            except (EOFError, OSError):
                break
            if isinstance(message, str) and message == _SHUTDOWN:
                break
            if isinstance(message, _Load):
                _apply_load(state, message)
            elif isinstance(message, _Sync):
                # a sync can only follow a successful load; if the load
                # never arrived (e.g. it failed to serialize driver-side)
                # dropping the sync lets the staleness guard in _run_shard
                # report the real error instead of crashing the worker
                if "world" in state:
                    _apply_sync(state, message)
            elif isinstance(message, ShardTask):
                if message.fault == "worker_kill":
                    os._exit(3)
                if message.fault == "heartbeat_stall":
                    stall_until[0] = time.monotonic() + message.stall_seconds
                    time.sleep(message.stall_seconds)
                result = _run_shard(state, message, worker_id)
                if message.fault == "drop_result":
                    continue
                if message.fault == "corrupt_result":
                    result = dataclasses.replace(
                        result, fingerprint=("__corrupt__",)
                    )
                outbox.put(result)
    finally:
        stop.set()


def _apply_load(state: dict[str, Any], message: _Load) -> None:
    """Rebuild the program and the world replica from a full snapshot."""
    from repro.core.datalog import DatalogProgram, _EvalCaches
    from repro.core.generalized import GeneralizedDatabase

    program = DatalogProgram(
        list(message.rules),
        message.theory,
        allow_unsafe_recursion=True,
        options=message.options,
    )
    cache = message.theory.cache
    if cache is not None:
        cache.enabled = message.theory_cache_enabled
    world = GeneralizedDatabase(message.theory)
    for name, variables, tuples in message.relations:
        world.create_relation(name, variables)
        relation = world.relation(name)
        for item in tuples:
            relation.adopt_canonical(item)
    state["program"] = program
    state["world"] = world
    state["fingerprint"] = message.fingerprint
    state["caches"] = _EvalCaches(
        message.options, message.theory, program=program, stats=None
    )
    state["delta"] = None


def _apply_sync(state: dict[str, Any], message: _Sync) -> None:
    """Catch the replica up to the driver's pre-round world state."""
    world = state["world"]
    for name, variables, tuples in message.updates:
        if name not in world:
            world.create_relation(name, variables)
        relation = world.relation(name)
        for item in tuples:
            relation.adopt_canonical(item)
    if message.delta is None:
        state["delta"] = None
        return
    delta: dict[str, list[Any]] = {}
    for name, ref in message.delta:
        if isinstance(ref, int):
            stored = world.relation(name).tuples()
            delta[name] = stored[len(stored) - ref :] if ref else []
        else:
            delta[name] = list(ref)
    state["delta"] = delta


def _run_shard(
    state: dict[str, Any], task: ShardTask, worker_id: int
) -> ShardResult:
    """Execute one shard against the replica; never raises."""
    from repro.core.datalog import EvaluationStats

    if state.get("fingerprint") != task.fingerprint:
        return ShardResult(
            worker_id=worker_id,
            round_id=task.round_id,
            shard_id=task.shard_id,
            attempt=task.attempt,
            fingerprint=tuple(state.get("fingerprint") or ()),
            derived=(),
            counts={},
            stats=None,
            chaos_stats=None,
            failure=("error", "stale program state (fingerprint mismatch)"),
        )
    program = state["program"]
    world = state["world"]
    caches = state["caches"]
    rule = program.rules[task.rule_index]
    delta: dict[str, list[Any]] | None = None
    if task.delta_position is not None:
        name = rule.positive_atoms[task.delta_position].name
        full = (state["delta"] or {}).get(name, [])
        sliced = (
            full if task.start is None else full[task.start : task.stop]
        )
        delta = {name: sliced}
    local = EvaluationStats()
    lease_meter = (
        BudgetMeter(task.lease, scope="shard")
        if task.lease is not None
        else None
    )
    runtime = ChaosRuntime(task.chaos) if task.chaos is not None else None
    derived: list[Any] = []
    failure: tuple[str, Any] | None = None
    try:
        with metered(lease_meter), chaos_scope(runtime):
            derived = program._fire(
                rule, world, local, caches, delta, task.delta_position
            )
    except BudgetExceededError as error:
        derived = []
        failure = ("budget", error.report)
    except Exception as error:  # noqa: BLE001 -- report, let the driver decide
        derived = []
        failure = ("error", f"{type(error).__name__}: {error}")
    counts = lease_meter.settled_counts() if lease_meter is not None else {}
    return ShardResult(
        worker_id=worker_id,
        round_id=task.round_id,
        shard_id=task.shard_id,
        attempt=task.attempt,
        fingerprint=task.fingerprint,
        derived=tuple(derived),
        counts=counts,
        stats=local,
        chaos_stats=runtime.stats if runtime is not None else None,
        failure=failure,
    )


# ------------------------------------------------------------- driver side


class _WorkerHandle:
    """Driver-side record of one worker process and its channels."""

    __slots__ = (
        "worker_id",
        "process",
        "inbox",
        "heartbeat",
        "restarts",
        "state",
    )

    def __init__(
        self,
        worker_id: int,
        process: "multiprocessing.process.BaseProcess",
        inbox: "multiprocessing.queues.Queue[Any]",
        heartbeat: "multiprocessing.sharedctypes.Synchronized[float]",
    ) -> None:
        self.worker_id = worker_id
        self.process = process
        self.inbox = inbox
        self.heartbeat = heartbeat
        self.restarts = 0
        self.state = "spawn"


class WorkerSupervisor:
    """Owns the worker lifecycle: spawn -> live -> suspect -> restarted ->
    exhausted.

    Liveness is judged from the heartbeat ``Value`` each worker's daemon
    thread refreshes (``time.monotonic()`` is system-wide on Linux, so the
    driver can compare directly).  :meth:`restart` kills, backs off
    exponentially, and respawns -- or raises :class:`WorkerCrashError` once
    the worker's bounded restart budget is exhausted.
    """

    def __init__(
        self,
        config: ClusterConfig,
        context: "multiprocessing.context.BaseContext",
        outbox: "multiprocessing.queues.Queue[Any]",
    ) -> None:
        self.config = config
        self.context = context
        self.outbox = outbox
        self.workers: list[_WorkerHandle] = []
        self.total_restarts = 0

    def start(self, count: int) -> None:
        try:
            for worker_id in range(count):
                self.workers.append(self._spawn(worker_id))
        except Exception as error:
            self.shutdown()
            raise ClusterError(f"could not spawn worker pool: {error}") from error

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        inbox: "multiprocessing.queues.Queue[Any]" = self.context.Queue()
        heartbeat = self.context.Value("d", time.monotonic(), lock=False)
        process = self.context.Process(
            target=_worker_main,
            args=(
                worker_id,
                inbox,
                self.outbox,
                heartbeat,
                self.config.heartbeat_interval,
            ),
            name=f"repro-shard-{worker_id}",
            daemon=True,
        )
        process.start()
        handle = _WorkerHandle(worker_id, process, inbox, heartbeat)
        handle.state = "live"
        return handle

    def status(self, handle: _WorkerHandle) -> str:
        """``live`` | ``suspect`` | ``dead`` for one worker, right now."""
        if not handle.process.is_alive():
            return "dead"
        age = time.monotonic() - handle.heartbeat.value
        if age > self.config.liveness_timeout:
            return "suspect"
        return "live"

    def restart(self, handle: _WorkerHandle) -> None:
        """Kill and respawn one worker, with backoff and a bounded budget."""
        if handle.restarts >= self.config.max_restarts:
            handle.state = "exhausted"
            raise WorkerCrashError(
                f"worker {handle.worker_id} exhausted its restart budget "
                f"({handle.restarts} restarts)",
                worker_id=handle.worker_id,
                restarts=handle.restarts,
            )
        self._kill(handle)
        backoff = self.config.backoff_base_seconds * (2**handle.restarts)
        if backoff > 0:
            time.sleep(backoff)
        fresh = self._spawn(handle.worker_id)
        handle.process = fresh.process
        handle.inbox = fresh.inbox
        handle.heartbeat = fresh.heartbeat
        handle.restarts += 1
        handle.state = "restarted"
        self.total_restarts += 1

    def _kill(self, handle: _WorkerHandle) -> None:
        process = handle.process
        if process.is_alive():
            process.kill()
        process.join(timeout=1.0)
        # the dead worker's inbox (and any stale messages in it) is dropped
        # wholesale; a replacement gets a fresh queue so it can never
        # consume messages meant for its predecessor
        handle.inbox.close()

    def alive_count(self) -> int:
        return sum(
            1 for handle in self.workers if self.status(handle) == "live"
        )

    def shutdown(self) -> None:
        for handle in self.workers:
            try:
                handle.inbox.put_nowait(_SHUTDOWN)
            except Exception:
                pass
        deadline = time.monotonic() + 1.0
        for handle in self.workers:
            handle.process.join(timeout=max(deadline - time.monotonic(), 0.05))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.inbox.close()
            except Exception:
                pass


@dataclass
class _Pending:
    """Driver-side bookkeeping for one outstanding shard."""

    task: ShardTask
    worker_id: int
    dispatched_at: float
    attempts: int


class ShardedExecutor:
    """Drives one evaluation's rounds across the worker pool.

    Created lazily on the first sharded round (so the fork happens before
    the in-process thread pool could exist), kept in ``_EvalCaches`` across
    rounds, and closed with them.  ``execute_round`` returns ``None`` when
    a round is not worth shipping (the replicas stay consistent: the next
    sync covers whatever the in-process path merged meanwhile).
    """

    def __init__(
        self, program: "DatalogProgram", world: "GeneralizedDatabase"
    ) -> None:
        from repro.core import compile as rulecompile
        from repro.core.datalog import EngineOptions  # noqa: F401  (cycle guard)

        options = program.options
        config = options.cluster if options.cluster is not None else ClusterConfig()
        count = config.workers or options.shard_workers
        if count <= 0:
            count = max(2, min(8, os.cpu_count() or 1))
        self.program = program
        self.config = config
        self.count = count
        self.fingerprint: tuple[str, ...] = rulecompile.program_fingerprint(
            program.rules
        )
        self._rule_index = {id(rule): i for i, rule in enumerate(program.rules)}
        self._cursors: dict[str, int] = {}
        self.shards_dispatched = 0
        self.shards_redispatched = 0
        self.degraded = False
        worker_options = dataclasses.replace(
            options,
            parallel=False,
            sharded=False,
            shard_workers=0,
            cluster=None,
            budget=None,
            analyze=False,
            optimize_semantic=False,
        )
        self._worker_options = worker_options
        try:
            context = multiprocessing.get_context(config.start_method)
            load = self._load_message(world)
            # queue serialization happens on a feeder thread, where a
            # pickling failure surfaces only as silent worker errors;
            # probing here fails fast into the in-process degradation path
            pickle.dumps(load)
            self.outbox: "multiprocessing.queues.Queue[Any]" = context.Queue()
            self.supervisor = WorkerSupervisor(config, context, self.outbox)
            self.supervisor.start(count)
            for handle in self.supervisor.workers:
                handle.inbox.put(load)
        except ClusterError:
            raise
        except Exception as error:
            raise ClusterError(
                f"sharded pool unavailable: {error}"
            ) from error

    # ----------------------------------------------------------- replication
    def _snapshot(
        self, world: "GeneralizedDatabase"
    ) -> tuple[tuple[str, tuple[str, ...], tuple[Any, ...]], ...]:
        out = []
        for name in world.names():
            relation = world.relation(name)
            stored = tuple(relation.tuples())
            out.append((name, relation.variables, stored))
            self._cursors[name] = len(stored)
        return tuple(out)

    def _load_message(self, world: "GeneralizedDatabase") -> _Load:
        return _Load(
            fingerprint=self.fingerprint,
            rules=tuple(self.program.rules),
            theory=self.program.theory,
            options=self._worker_options,
            relations=self._snapshot(world),
            theory_cache_enabled=self.program.options.theory_cache,
        )

    def _sync_message(
        self,
        round_id: int,
        world: "GeneralizedDatabase",
        delta: "dict[str, list[GeneralizedTuple]] | None",
    ) -> _Sync:
        updates = []
        for name in world.names():
            relation = world.relation(name)
            stored = relation.tuples()
            cursor = self._cursors.get(name, 0)
            if len(stored) > cursor:
                updates.append(
                    (name, relation.variables, tuple(stored[cursor:]))
                )
            self._cursors[name] = len(stored)
        payload: list[tuple[str, int | tuple[Any, ...]]] | None = None
        if delta is not None:
            payload = []
            for name in sorted(delta):
                items = delta[name]
                count = len(items)
                stored = world.relation(name).tuples()
                if count == 0:
                    payload.append((name, 0))
                elif (
                    len(stored) >= count
                    and stored[-1] is items[-1]
                    and stored[-count] is items[0]
                ):
                    # the semi-naive invariant holds: the delta is exactly
                    # the relation's insertion-order tail, so a count
                    # suffices (the replica reconstructs the same objects)
                    payload.append((name, count))
                else:
                    payload.append((name, tuple(items)))
        return _Sync(
            round_id=round_id,
            updates=tuple(updates),
            delta=None if payload is None else tuple(payload),
        )

    # ------------------------------------------------------------- planning
    def _delta_leads(
        self,
        rule: "Rule",
        delta_size: int,
        delta_position: int,
        world: "GeneralizedDatabase",
    ) -> bool:
        """Whether slicing the delta preserves serial enumeration order.

        A task's derived list is serial-sliceable iff the join plan
        enumerates the delta slot *first*: then each slice enumerates a
        contiguous run of the serial enumeration, and shrinking the delta's
        size only improves its (connectivity, size, index) sort key, so the
        slice's own plan still leads with the delta and orders the
        remaining slots identically (their sizes and the bound-variable set
        after the delta are unchanged).  Tasks failing this run as a single
        whole shard.
        """
        options = self.program.options
        positives = rule.positive_atoms
        if len(positives) <= 1:
            return True
        if not options.join_planner:
            return delta_position == 0
        from repro.core import compile as rulecompile

        sizes = [
            delta_size
            if index == delta_position
            else len(world.relation(atom.name))
            for index, atom in enumerate(positives)
        ]
        pinned = set(
            self.program.theory.pinned_constants(tuple(rule.constraint_atoms))
        )
        order = rulecompile.plan_order(
            [atom.args for atom in positives], sizes, pinned
        )
        return order[0] == delta_position

    def _plan_shards(
        self,
        round_id: int,
        tasks: "list[tuple[Rule, dict | None, int | None]]",
        world: "GeneralizedDatabase",
    ) -> tuple[list[ShardTask], list[tuple[str, float] | None]]:
        """Split a round into merge-ordered shards with affinity keys.

        Dense-order shards carry a range key (the hull midpoint of the
        slice's first delta tuple, via the projection-interval hull --
        ``DenseOrderTheory.conjunction_bounds``'s closed form); equality and
        boolean shards carry a stable content hash.  Keys are affinity only
        (theory-cache locality): correctness comes from the shard-order
        merge, never from the partitioning.
        """
        from repro.indexing.pool import shard_hull_key

        config = self.config
        shards: list[ShardTask] = []
        keys: list[tuple[str, float] | None] = []

        def push(
            rule_index: int,
            delta_position: int | None,
            start: int | None,
            stop: int | None,
            key: tuple[str, float] | None,
        ) -> None:
            shards.append(
                ShardTask(
                    round_id=round_id,
                    shard_id=len(shards),
                    attempt=0,
                    fingerprint=self.fingerprint,
                    rule_index=rule_index,
                    delta_position=delta_position,
                    start=start,
                    stop=stop,
                    lease=None,
                    chaos=None,
                    fault=None,
                    stall_seconds=0.0,
                )
            )
            keys.append(key)

        for rule, delta, delta_position in tasks:
            rule_index = self._rule_index[id(rule)]
            if delta is None or delta_position is None:
                push(rule_index, delta_position, None, None, None)
                continue
            name = rule.positive_atoms[delta_position].name
            items = delta.get(name, [])
            size = len(items)
            slices = min(self.count, size // config.min_slice)
            if slices < 2 or not self._delta_leads(
                rule, size, delta_position, world
            ):
                push(rule_index, delta_position, None, None, None)
                continue
            for i in range(slices):
                start = size * i // slices
                stop = size * (i + 1) // slices
                key = shard_hull_key(self.program.theory, items[start])
                push(rule_index, delta_position, start, stop, key)
        return shards, keys

    def _assign(
        self, shards: list[ShardTask], keys: list[tuple[str, float] | None]
    ) -> dict[int, int]:
        """shard_id -> worker_id by affinity key (range / hash / round-robin)."""
        assignment: dict[int, int] = {}
        ranged = [
            (key[1], shard.shard_id)
            for shard, key in zip(shards, keys)
            if key is not None and key[0] == "range"
        ]
        ranged.sort()
        for rank, (_value, shard_id) in enumerate(ranged):
            assignment[shard_id] = rank * self.count // max(len(ranged), 1)
        for shard, key in zip(shards, keys):
            if shard.shard_id in assignment:
                continue
            if key is not None and key[0] == "hash":
                assignment[shard.shard_id] = int(key[1]) % self.count
            else:
                assignment[shard.shard_id] = shard.shard_id % self.count
        return assignment

    # ------------------------------------------------------------ execution
    def execute_round(
        self,
        tasks: "list[tuple[Rule, dict | None, int | None]]",
        world: "GeneralizedDatabase",
        stats: "EvaluationStats",
    ) -> "list[tuple[str, GeneralizedTuple]] | None":
        """Run one round's tasks on the pool; ``None`` declines the round.

        Raises :class:`ClusterError`/:class:`WorkerCrashError` when the
        pool cannot finish the round (the engine then discards the partial
        round and re-executes it in-process -- a whole-round retry is sound
        because a round is a pure function of the synced world + delta).
        Raises :class:`BudgetExceededError` when a worker's lease tripped
        (after absorbing all settled counts), which flows into the
        drivers' fringe handling exactly like a local trip.
        """
        shards, keys = self._plan_shards(stats.iterations, tasks, world)
        if not shards or (len(shards) < 2 and not self.config.force):
            return None
        round_id = shards[0].round_id
        delta_obj = next(
            (delta for _rule, delta, _pos in tasks if delta is not None), None
        )
        meter = active_meter()
        leases: list[Budget | None]
        if meter is not None:
            leases = list(meter.split_leases(len(shards)))
        else:
            leases = [None] * len(shards)
        ambient_chaos = current_chaos()
        base_policy = (
            ambient_chaos.policy if ambient_chaos is not None else None
        )
        faults = self.config.faults
        restarts_before = self.supervisor.total_restarts
        redispatches_before = self.shards_redispatched

        def stamped(shard: ShardTask, attempt: int) -> ShardTask:
            chaos_policy = None
            if base_policy is not None:
                chaos_policy = dataclasses.replace(
                    base_policy,
                    seed=(
                        base_policy.seed * 1_000_003
                        + round_id * 8_191
                        + shard.shard_id * 131
                        + attempt
                    ),
                )
            fault = (
                faults.decide(round_id, shard.shard_id, attempt)
                if faults is not None
                else None
            )
            return dataclasses.replace(
                shard,
                attempt=attempt,
                lease=leases[shard.shard_id],
                chaos=chaos_policy,
                fault=fault,
                stall_seconds=faults.stall_seconds if faults is not None else 0.0,
            )

        sync = self._sync_message(round_id, world, delta_obj)
        for handle in self.supervisor.workers:
            handle.inbox.put(sync)
        assignment = self._assign(shards, keys)
        pending: dict[int, _Pending] = {}
        for shard in shards:
            worker_id = assignment[shard.shard_id]
            task = stamped(shard, 0)
            self.supervisor.workers[worker_id].inbox.put(task)
            pending[shard.shard_id] = _Pending(
                task=task,
                worker_id=worker_id,
                dispatched_at=time.monotonic(),
                attempts=1,
            )
        self.shards_dispatched += len(shards)
        stats.shard_rounds += 1
        stats.shard_tasks += len(shards)

        results: dict[int, ShardResult] = {}
        try:
            self._collect(round_id, pending, results, world, sync, stats)
        finally:
            stats.worker_restarts += (
                self.supervisor.total_restarts - restarts_before
            )
            stats.shard_redispatches += (
                self.shards_redispatched - redispatches_before
            )
            stats.cluster = self.summary()
        # deterministic absorption and merge, in shard order; a lease that
        # consumed the last of a global limit trips the parent here exactly
        # like the same ticks would have locally
        chaos_runtime = current_chaos()
        budget_failure: ShardResult | None = None
        for shard_id in sorted(results):
            result = results[shard_id]
            if result.counts and meter is not None:
                meter.absorb(result.counts)
            if result.stats is not None:
                stats.merge(result.stats)
            if result.chaos_stats is not None and chaos_runtime is not None:
                chaos_runtime.stats.merge(result.chaos_stats)
            if (
                result.failure is not None
                and result.failure[0] == "budget"
                and budget_failure is None
            ):
                budget_failure = result
        if budget_failure is not None:
            report = budget_failure.failure[1] if budget_failure.failure else None
            kind = getattr(report, "budget_kind", "budget")
            raise BudgetExceededError(
                f"{kind} budget exceeded in shard "
                f"{budget_failure.shard_id} (worker lease)",
                report=report,
            )
        derived: "list[tuple[str, GeneralizedTuple]]" = []
        for shard_id in sorted(results):
            derived.extend(results[shard_id].derived)
        return derived

    def _redispatch(
        self,
        entry: _Pending,
        pending: dict[int, _Pending],
        exclude: int | None,
    ) -> None:
        """Send a shard's next attempt to a (preferably different) worker."""
        if entry.attempts > self.config.max_task_retries:
            raise ClusterError(
                f"shard {entry.task.shard_id} exceeded its retry budget "
                f"({entry.attempts - 1} re-dispatches)"
            )
        workers = self.supervisor.workers
        candidates = [
            handle
            for handle in workers
            if handle.worker_id != exclude
            and self.supervisor.status(handle) == "live"
        ] or [handle for handle in workers if self.supervisor.status(handle) == "live"]
        if not candidates:
            raise ClusterError("no live workers to re-dispatch to")
        target = candidates[entry.task.shard_id % len(candidates)]
        task = dataclasses.replace(
            entry.task,
            attempt=entry.attempts,
            fault=(
                self.config.faults.decide(
                    entry.task.round_id, entry.task.shard_id, entry.attempts
                )
                if self.config.faults is not None
                else None
            ),
        )
        target.inbox.put(task)
        entry.task = task
        entry.worker_id = target.worker_id
        entry.dispatched_at = time.monotonic()
        entry.attempts += 1
        self.shards_redispatched += 1

    def _recover_worker(
        self,
        handle: _WorkerHandle,
        pending: dict[int, _Pending],
        world: "GeneralizedDatabase",
        sync: _Sync,
    ) -> None:
        """Restart a dead/suspect worker and re-dispatch its outstanding
        shards (to the fresh process, which first receives a full replica
        of the *synced* round state plus the round's delta reference)."""
        self.supervisor.restart(handle)
        # mid-round the driver world *is* the synced state (results merge
        # only after the round), so a full snapshot plus the round's delta
        # reference reproduces exactly what the dead worker knew
        handle.inbox.put(self._load_message(world))
        handle.inbox.put(sync)
        for entry in pending.values():
            if entry.worker_id == handle.worker_id:
                self._redispatch(entry, pending, exclude=None)

    def _collect(
        self,
        round_id: int,
        pending: dict[int, _Pending],
        results: dict[int, ShardResult],
        world: "GeneralizedDatabase",
        sync: _Sync,
        stats: "EvaluationStats",
    ) -> None:
        """Gather results; supervise liveness, stragglers, and retries."""
        poll = min(self.config.heartbeat_interval, 0.05)
        delta_sync = _Sync(
            round_id=round_id, updates=(), delta=sync.delta
        )
        while pending:
            drained = False
            try:
                message = self.outbox.get(timeout=poll)
                drained = True
            except queue.Empty:
                message = None
            except Exception:
                # a killed worker can leave a partially-written message in
                # the result pipe; treat it as corrupt and let the
                # straggler/liveness machinery re-dispatch
                message = None
            if message is not None:
                self._accept(message, round_id, pending, results)
            if drained and pending:
                # drain any further ready results before paying another poll
                while True:
                    try:
                        extra = self.outbox.get_nowait()
                    except queue.Empty:
                        break
                    except Exception:
                        break
                    self._accept(extra, round_id, pending, results)
            if not pending:
                return
            now = time.monotonic()
            outstanding = {entry.worker_id for entry in pending.values()}
            for handle in self.supervisor.workers:
                if handle.worker_id not in outstanding:
                    continue
                status = self.supervisor.status(handle)
                if status in ("dead", "suspect"):
                    handle.state = status if status == "suspect" else "dead"
                    self._recover_worker(handle, pending, world, delta_sync)
            for entry in list(pending.values()):
                if now - entry.dispatched_at > self.config.straggler_timeout:
                    # speculative re-execution: the original may still
                    # finish; first valid result wins (and is the only
                    # possible value -- shards are deterministic)
                    self._redispatch(
                        entry, pending, exclude=entry.worker_id
                    )

    def _accept(
        self,
        message: Any,
        round_id: int,
        pending: dict[int, _Pending],
        results: dict[int, ShardResult],
    ) -> None:
        """Validate one result message; re-dispatch on corruption/error."""
        if not isinstance(message, ShardResult):
            return
        if message.round_id != round_id:
            return  # stale round (e.g. dropped straggler from a past round)
        entry = pending.get(message.shard_id)
        if entry is None:
            return  # duplicate: the shard already completed (speculation)
        if message.fingerprint != self.fingerprint:
            self._redispatch(entry, pending, exclude=message.worker_id)
            return
        if message.failure is not None and message.failure[0] == "error":
            self._redispatch(entry, pending, exclude=message.worker_id)
            return
        results[message.shard_id] = message
        del pending[message.shard_id]

    # ---------------------------------------------------------------- misc
    def summary(self) -> dict[str, Any]:
        """Cluster state for ``EvaluationStats.cluster`` and the shell."""
        states = [handle.state for handle in self.supervisor.workers]
        return {
            "workers": self.count,
            "alive": self.supervisor.alive_count(),
            "restarts": self.supervisor.total_restarts,
            "worker_states": states,
            "shards_dispatched": self.shards_dispatched,
            "shards_redispatched": self.shards_redispatched,
            "degraded": self.degraded,
        }

    def close(self) -> None:
        self.supervisor.shutdown()
        try:
            self.outbox.close()
        except Exception:
            pass
