"""The classical finite relational model (the baseline the CQL generalizes).

Example 1.5: "This is a generalization of the relational data model" -- a
finite relation is the special case where every generalized tuple is a
conjunction of equalities with constants.  This package provides a plain
finite-relation engine (sets of tuples, relational algebra operators) and
the paper's 5-ary rectangle encoding of Example 1.1 with its explicit case
analysis, so that the benchmarks can compare the classical formulation
against the 3-line CQL one.
"""

from repro.relational.algebra import (
    difference,
    join,
    project,
    rename,
    select,
    union,
)
from repro.relational.rectangles import (
    classical_rectangle_relation,
    intersecting_pairs_classical,
)
from repro.relational.relation import FiniteRelation

__all__ = [
    "FiniteRelation",
    "classical_rectangle_relation",
    "difference",
    "intersecting_pairs_classical",
    "join",
    "project",
    "rename",
    "select",
    "union",
]
