"""Finite relations: named attribute tuples over arbitrary values."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.errors import ArityError

Row = tuple[Any, ...]


class FiniteRelation:
    """A classical finite relation: a set of rows under a named schema."""

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
    ) -> None:
        if len(set(attributes)) != len(attributes):
            raise ArityError(f"duplicate attributes in {attributes}")
        self.name = name
        self.attributes: tuple[str, ...] = tuple(attributes)
        self._rows: set[Row] = set()
        for row in rows:
            self.add(row)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def add(self, row: Sequence[Any]) -> None:
        if len(row) != self.arity:
            raise ArityError(
                f"{self.name} has arity {self.arity}, got row {tuple(row)!r}"
            )
        self._rows.add(tuple(row))

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._rows

    def rows_as_dicts(self) -> Iterator[dict[str, Any]]:
        for row in self._rows:
            yield dict(zip(self.attributes, row))

    def index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise ArityError(
                f"{self.name} has no attribute {attribute!r}"
            ) from None

    def with_rows(self, rows: Iterable[Row], name: str | None = None) -> "FiniteRelation":
        return FiniteRelation(name or self.name, self.attributes, rows)

    def __str__(self) -> str:
        header = f"{self.name}({', '.join(self.attributes)})"
        body = "\n".join(f"  {row}" for row in sorted(self._rows, key=repr))
        return f"{header}\n{body or '  <empty>'}"
