"""Relational algebra over finite relations (select, project, join, ...).

The procedural side of Codd's model that the paper's "generalized relational
algebra" (Section 2.1) generalizes: all operators are the familiar ones;
only projection becomes nontrivial (quantifier elimination) in the
constraint setting.  Here, over finite relations, they are the textbook set
operations.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.errors import ArityError
from repro.relational.relation import FiniteRelation, Row
from repro.runtime.budget import tick


def _admitted(rows):
    """Charge the execution supervisor one ``tuple`` tick per admitted row."""
    for row in rows:
        tick("tuple")
        yield row


def select(
    relation: FiniteRelation,
    predicate: Callable[[Mapping[str, Any]], bool],
    name: str = "select",
) -> FiniteRelation:
    """Rows satisfying a predicate over named attributes."""
    rows = [
        tuple(row)
        for row in relation
        if predicate(dict(zip(relation.attributes, row)))
    ]
    return FiniteRelation(name, relation.attributes, _admitted(rows))


def project(
    relation: FiniteRelation, attributes: Sequence[str], name: str = "project"
) -> FiniteRelation:
    """Projection onto a subset (or reordering) of attributes."""
    indices = [relation.index_of(a) for a in attributes]
    rows = {tuple(row[i] for i in indices) for row in relation}
    return FiniteRelation(name, attributes, _admitted(rows))


def rename(
    relation: FiniteRelation, mapping: Mapping[str, str], name: str = "rename"
) -> FiniteRelation:
    """Relabel attributes without touching rows.

    A metadata-only operation: no row is derived, so it charges no
    ``tuple`` budget ticks and copies the row set wholesale instead of
    re-admitting (and re-validating) every row through the constructor.
    """
    new_attributes = [mapping.get(a, a) for a in relation.attributes]
    result = FiniteRelation(name, new_attributes)
    result._rows = set(relation._rows)
    return result


def union(
    left: FiniteRelation, right: FiniteRelation, name: str = "union"
) -> FiniteRelation:
    if left.attributes != right.attributes:
        raise ArityError("union requires identical schemas")
    return FiniteRelation(
        name, left.attributes, _admitted(list(left) + list(right))
    )


def difference(
    left: FiniteRelation, right: FiniteRelation, name: str = "difference"
) -> FiniteRelation:
    if left.attributes != right.attributes:
        raise ArityError("difference requires identical schemas")
    right_rows = set(iter(right))
    return FiniteRelation(
        name,
        left.attributes,
        _admitted(row for row in left if row not in right_rows),
    )


def join(
    left: FiniteRelation, right: FiniteRelation, name: str = "join"
) -> FiniteRelation:
    """Natural join on shared attribute names (hash join on the shared key)."""
    shared = [a for a in left.attributes if a in right.attributes]
    right_only = [a for a in right.attributes if a not in shared]
    output_attributes = list(left.attributes) + right_only
    left_key = [left.index_of(a) for a in shared]
    right_key = [right.index_of(a) for a in shared]
    right_rest = [right.index_of(a) for a in right_only]
    buckets: dict[tuple, list[Row]] = {}
    for row in right:
        key = tuple(row[i] for i in right_key)
        buckets.setdefault(key, []).append(row)
    rows = []
    for row in left:
        key = tuple(row[i] for i in left_key)
        for match in buckets.get(key, ()):
            rows.append(tuple(row) + tuple(match[i] for i in right_rest))
    return FiniteRelation(name, output_attributes, _admitted(rows))
