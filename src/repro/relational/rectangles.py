"""Example 1.1 in the classical relational model: the 5-ary encoding.

"One possibility is to store the data in a 5-ary relation named R ... tuples
of the form (n, a, b, c, d)" meaning n names the rectangle with corners
(a,b), (a,d), (c,b), (c,d).  The intersection query then needs the
quantification over the corners' coordinate set and "one could eliminate the
quantification altogether and replace it by a boolean combination of <
atomic formulas, involving the various cases of intersecting rectangles" --
which is exactly the classical interval-overlap case analysis implemented
here.  The contrast with the 3-line generalized-tuple program is the point
of the example (and of the Figure 2 benchmark).
"""

from __future__ import annotations

from typing import Iterable

from repro.geometry.rectangles import Rect
from repro.relational.relation import FiniteRelation


def classical_rectangle_relation(rects: Iterable[Rect]) -> FiniteRelation:
    """The 5-ary relation R(n, a, b, c, d) of Example 1.1."""
    relation = FiniteRelation("R", ("n", "a", "b", "c", "d"))
    for rect in rects:
        relation.add((rect.name, rect.x1, rect.y1, rect.x2, rect.y2))
    return relation


def intersecting_pairs_classical(
    relation: FiniteRelation,
) -> set[tuple[object, object]]:
    """The rectangle-intersection query over the 5-ary encoding.

    The quantifier over shared points is replaced by the boolean combination
    of < atoms from the exhaustive case analysis: two closed boxes meet iff
    their x-extents and y-extents both overlap (a1 <= c2, a2 <= c1, b1 <= d2,
    b2 <= d1) -- the query program the paper says is "particular to
    rectangles and does not work for triangles".
    """
    rows = list(relation)
    result: set[tuple[object, object]] = set()
    for n1, a1, b1, c1, d1 in rows:
        for n2, a2, b2, c2, d2 in rows:
            if n1 == n2:
                continue
            if a1 <= c2 and a2 <= c1 and b1 <= d2 and b2 <= d1:
                result.add((n1, n2))
    return result
