"""Dense-order workload generators: interval relations and chain graphs."""

from __future__ import annotations

import random
from fractions import Fraction

from repro.constraints.dense_order import DenseOrderTheory, OrderAtom, le
from repro.constraints.terms import Const, Var
from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation


def interval_relation(
    count: int, seed: int = 0, universe: int = 1000, max_width: int = 40,
    name: str = "R",
) -> GeneralizedRelation:
    """A unary generalized relation of ``count`` random closed intervals."""
    order = DenseOrderTheory()
    rng = random.Random(seed)
    relation = GeneralizedRelation(name, ("x",), order)
    for _ in range(count):
        low = Fraction(rng.randrange(universe))
        width = Fraction(rng.randrange(1, max_width))
        relation.add_tuple([le(low, "x"), le("x", low + width)])
    return relation


def random_interval_database(
    count: int, seed: int = 0, universe: int = 1000, name: str = "R"
) -> GeneralizedDatabase:
    order = DenseOrderTheory()
    db = GeneralizedDatabase(order)
    db.add_relation(interval_relation(count, seed, universe, name=name))
    return db


def chain_edges(length: int, name: str = "E") -> GeneralizedDatabase:
    """The edge relation of a path 0 -> 1 -> ... -> length."""
    order = DenseOrderTheory()
    db = GeneralizedDatabase(order)
    edge = db.create_relation(name, ("x", "y"))
    for i in range(length):
        edge.add_point([i, i + 1])
    return db


def random_order_tuples(
    arity: int, count: int, seed: int = 0, constants: int = 8
) -> list[tuple[OrderAtom, ...]]:
    """Random satisfiable dense-order conjunctions (for property benchmarks)."""
    order = DenseOrderTheory()
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(arity)]
    results: list[tuple[OrderAtom, ...]] = []
    attempts = 0
    while len(results) < count:
        attempts += 1
        if attempts > 50 * count + 100:
            break
        atoms = []
        for _ in range(rng.randrange(1, arity + 3)):
            op = rng.choice(["<", "<=", "=", "!="])
            left = Var(rng.choice(variables))
            if rng.random() < 0.5:
                right = Var(rng.choice(variables))
                if right == left:
                    continue
            else:
                right = Const(Fraction(rng.randrange(constants)))
            atoms.append(OrderAtom(op, left, right))
        conj = tuple(atoms)
        if order.is_satisfiable(conj):
            results.append(conj)
    return results
