"""Deterministic synthetic workload generators for the benchmarks.

Every generator takes an explicit ``seed`` so benchmark runs are
reproducible; values are exact rationals (no floats enter the engines).
"""

from repro.workloads.equalities import random_equality_database
from repro.workloads.orders import (
    interval_relation,
    random_interval_database,
    chain_edges,
    random_order_tuples,
)
from repro.workloads.spatial import (
    random_points,
    random_rectangles,
    rectangles_to_generalized,
    rectangles_to_poly_generalized,
)

__all__ = [
    "chain_edges",
    "interval_relation",
    "random_equality_database",
    "random_interval_database",
    "random_order_tuples",
    "random_points",
    "random_rectangles",
    "rectangles_to_generalized",
    "rectangles_to_poly_generalized",
]
