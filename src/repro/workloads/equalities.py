"""Equality-theory workload generators (Section 4 benchmarks)."""

from __future__ import annotations

import random

from repro.constraints.equality import EqualityTheory, eq, ne
from repro.core.generalized import GeneralizedDatabase


def random_equality_database(
    count: int,
    seed: int = 0,
    domain: int = 200,
    name: str = "R",
    disequality_fraction: float = 0.2,
) -> GeneralizedDatabase:
    """A binary relation mixing ground pairs with disequality tuples."""
    theory = EqualityTheory()
    rng = random.Random(seed)
    db = GeneralizedDatabase(theory)
    relation = db.create_relation(name, ("x", "y"))
    for _ in range(count):
        if rng.random() < disequality_fraction:
            constant = rng.randrange(domain)
            relation.add_tuple([ne("x", "y"), eq("y", constant)])
        else:
            relation.add_point([rng.randrange(domain), rng.randrange(domain)])
    return db
