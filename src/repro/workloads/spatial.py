"""Spatial workload generators: rectangles and point sets (Figure 2 inputs)."""

from __future__ import annotations

import random
from fractions import Fraction

from repro.constraints.dense_order import DenseOrderTheory, eq, le
from repro.constraints.real_poly import RealPolynomialTheory, poly_eq, poly_ge, poly_le
from repro.core.generalized import GeneralizedDatabase
from repro.geometry.rectangles import Rect
from repro.poly.polynomial import Polynomial


def random_rectangles(
    count: int, seed: int = 0, universe: int = 1000, max_side: int = 60
) -> list[Rect]:
    """Random axis-parallel rectangles in a [0, universe]^2 box."""
    rng = random.Random(seed)
    rects = []
    for index in range(count):
        x1 = Fraction(rng.randrange(universe))
        y1 = Fraction(rng.randrange(universe))
        width = Fraction(rng.randrange(1, max_side))
        height = Fraction(rng.randrange(1, max_side))
        rects.append(Rect(index, x1, y1, x1 + width, y1 + height))
    return rects


def rectangles_to_generalized(rects: list[Rect]) -> GeneralizedDatabase:
    """The ternary generalized relation Rect(n, x, y) of Example 1.1."""
    order = DenseOrderTheory()
    db = GeneralizedDatabase(order)
    relation = db.create_relation("Rect", ("n", "x", "y"))
    for rect in rects:
        relation.add_tuple(
            [
                eq("n", rect.name),
                le(rect.x1, "x"),
                le("x", rect.x2),
                le(rect.y1, "y"),
                le("y", rect.y2),
            ]
        )
    return db


def rectangles_to_poly_generalized(rects: list[Rect]) -> GeneralizedDatabase:
    """The same relation over the real polynomial theory."""
    theory = RealPolynomialTheory()
    db = GeneralizedDatabase(theory)
    relation = db.create_relation("Rect", ("n", "x", "y"))
    x, y, n = (Polynomial.variable(v) for v in ("x", "y", "n"))
    for rect in rects:
        relation.add_tuple(
            [
                poly_eq(n, Polynomial.constant(Fraction(rect.name))),
                poly_ge(x, Polynomial.constant(rect.x1)),
                poly_le(x, Polynomial.constant(rect.x2)),
                poly_ge(y, Polynomial.constant(rect.y1)),
                poly_le(y, Polynomial.constant(rect.y2)),
            ]
        )
    return db


def random_points(
    count: int, seed: int = 0, universe: int = 10_000
) -> list[tuple[Fraction, Fraction]]:
    """Random distinct points with rational coordinates (general position is
    likely but not guaranteed; callers needing it should use the
    odd-coordinate trick below)."""
    rng = random.Random(seed)
    points: set[tuple[Fraction, Fraction]] = set()
    while len(points) < count:
        points.add(
            (Fraction(rng.randrange(universe)), Fraction(rng.randrange(universe)))
        )
    return sorted(points)


def random_points_general_position(
    count: int, seed: int = 0, universe: int = 10_000
) -> list[tuple[Fraction, Fraction]]:
    """Random points with no three collinear (rejection sampling)."""
    from repro.geometry.convex_hull import _orient

    rng = random.Random(seed)
    points: list[tuple[Fraction, Fraction]] = []
    attempts = 0
    while len(points) < count:
        attempts += 1
        if attempts > 100 * count + 1000:
            raise RuntimeError("could not reach general position; enlarge universe")
        candidate = (
            Fraction(rng.randrange(universe)),
            Fraction(rng.randrange(universe)),
        )
        if candidate in points:
            continue
        if any(
            _orient(a, b, candidate) == 0
            for i, a in enumerate(points)
            for b in points[i + 1:]
        ):
            continue
        points.append(candidate)
    return points
