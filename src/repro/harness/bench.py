"""Engine benchmark suite: ``python -m repro bench``.

Runs a fixed set of fixpoint workloads under the engine's ablation columns
and records stable, comparable records into ``BENCH_datalog.json`` (via
:mod:`repro.harness.benchjson`; redirect with ``REPRO_BENCH_JSON``):

* **dense-order transitive closure** over point chains at N in {16, 32, 64}
  (the Thm 3.14.2 cell) -- the headline fast-path workload;
* **equality-theory transitive closure** plus the **e-configuration**
  EVAL-phi baseline of Section 4 (calculus vs. e-config agreement timing);
* a **Boole's-lemma workload**: transitive closure over a ``B_1`` algebra
  graph, where every firing eliminates the chained variable by Boole's
  lemma (Section 5).

Every engine workload runs once per ablation column (all optimizations on,
all off, each of the three PR-5 layers -- join planner, index probes,
parallel rounds -- individually off, and the PR-6 rule compiler off),
asserts that *all columns produce the identical fixpoint*, and records
per-column wall-clock plus the relevant engine counters.  A separate
``compile_stats`` record microbenches the PlanCache: cold ``evaluate()``
setup (cleared cache: fetch + lowering) vs. warm (cache hit), the
prepared-query pattern the planned server relies on.  A ``semantic_stats``
record exercises the containment optimizer: dense TC with 25% injected
redundant rules (optimizer-on vs. off) plus the analysis overhead over the
redundancy-free program.  A ``magic_stats`` record times the demand-driven
query front door (``Engine.query`` of a bound TC query) against
full-fixpoint-then-filter, asserting byte-identical answers and a warm
plan-cache hit for the repeated adornment shape.

``--check PCT`` turns the suite into a regression gate: the **speedup
ratios** (all-off / all-on and no-compile / all-on per workload) of the
fresh run are compared against a baseline document (``--baseline``, default
the committed ``BENCH_datalog.json``), and the run fails if any ratio
regressed by more than PCT percent.  Ratios, not absolute times, keep the
gate meaningful across CI machines of different speeds.  The gate also
enforces the plan-cache floor: a warm evaluate() must set up at least 5x
faster than a cold one.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.constraints.boolean import BooleanTheory
from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.core.calculus import evaluate_calculus
from repro.core.datalog import DatalogProgram, EngineOptions
from repro.core.econfig import evaluate_query_econfig
from repro.core.generalized import GeneralizedDatabase
from repro.harness.benchjson import bench_json_path, load_bench_json, record_bench
from repro.logic.parser import parse_query, parse_rules

TC_RULES = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), E(z, y).
"""

#: ablation columns recorded per workload: the two extremes plus each of
#: the four fast-path layers this engine generation added, individually off
COLUMNS: tuple[tuple[str, EngineOptions], ...] = (
    ("all_on", EngineOptions.all_on()),
    ("no_join_planner", EngineOptions(join_planner=False)),
    ("no_index_probes", EngineOptions(index_probes=False)),
    ("no_parallel", EngineOptions(parallel=False)),
    ("no_compile", EngineOptions(compile_rules=False)),
    ("all_off", EngineOptions.all_off()),
)

#: engine counters worth tracking per column (subset of EvaluationStats)
_TRACKED = (
    "iterations",
    "join_steps",
    "sat_checks",
    "plans_built",
    "plan_reorders",
    "index_probes",
    "index_scan_avoided",
    "parallel_rounds",
    "compiled_firings",
    "fastpath_leaves",
    "cache_hits",
)


class BenchError(RuntimeError):
    """A workload produced diverging fixpoints or a regression tripped."""


def _fingerprint(world: GeneralizedDatabase, target: str) -> frozenset:
    return frozenset(t.atoms for t in world.relation(target).tuples())


def _run_columns(
    make_db: Callable[[], GeneralizedDatabase],
    theory: Any,
    target: str = "T",
    repeat: int = 1,
) -> dict[str, Any]:
    """One workload across all ablation columns; asserts identical fixpoints."""
    rules = parse_rules(TC_RULES, theory=theory)
    columns: dict[str, Any] = {}
    fingerprints = set()
    for column, options in COLUMNS:
        program = DatalogProgram(rules, theory, options=options)
        best = None
        for _ in range(repeat):
            db = make_db()
            started = time.perf_counter()
            world, stats = program.evaluate(db)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        fingerprints.add(_fingerprint(world, target))
        columns[column] = {
            "time_s": round(best, 6),
            **{name: getattr(stats, name) for name in _TRACKED},
        }
    identical = len(fingerprints) == 1
    if not identical:
        raise BenchError(
            f"ablation columns disagree on the fixpoint "
            f"({len(fingerprints)} distinct answers)"
        )
    speedup = columns["all_off"]["time_s"] / max(columns["all_on"]["time_s"], 1e-9)
    compile_speedup = columns["no_compile"]["time_s"] / max(
        columns["all_on"]["time_s"], 1e-9
    )
    return {
        "columns": columns,
        "identical_fixpoints": identical,
        "speedup_all_on": round(speedup, 3),
        "speedup_compile": round(compile_speedup, 3),
    }


# ----------------------------------------------------------------- workloads
def _dense_db(n: int) -> GeneralizedDatabase:
    from repro.workloads.orders import chain_edges

    return chain_edges(n)


def _equality_db(theory: EqualityTheory, n: int) -> GeneralizedDatabase:
    db = GeneralizedDatabase(theory)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(n):
        edge.add_point([i, i + 1])
    return db


def _boolean_db(theory: BooleanTheory, n: int) -> GeneralizedDatabase:
    """A cycle through the elements of ``B_1`` repeated along a chain.

    Edges are ``x = a, y = b`` element equalities; closing the chain forces
    the engine to eliminate the shared variable of every two-step path by
    Boole's lemma (the Section 5 elimination workhorse).
    """
    algebra = theory.algebra
    minterms = 2**algebra.m
    db = GeneralizedDatabase(theory)
    edge = db.create_relation("E", ("x", "y"))
    for i in range(n):
        a = frozenset(m for m in range(minterms) if (i % algebra.size) & (1 << m))
        b = frozenset(
            m for m in range(minterms) if ((i + 1) % algebra.size) & (1 << m)
        )
        edge.add_tuple([theory.equality("x", a), theory.equality("y", b)])
    return db


def _bench_dense(sizes: Iterable[int], repeat: int) -> dict[str, Any]:
    theory = DenseOrderTheory()
    per_size: dict[str, Any] = {}
    for n in sizes:
        per_size[str(n)] = _run_columns(lambda k=n: _dense_db(k), theory, repeat=repeat)
    return {
        "workload": "dense-order transitive closure over point chains",
        "sizes": list(sizes),
        "per_size": per_size,
        # headline ratios: the largest size is the one the acceptance gate
        # and the regression check track
        "speedup_all_on": per_size[str(max(sizes))]["speedup_all_on"],
        "speedup_compile": per_size[str(max(sizes))]["speedup_compile"],
    }


def _bench_equality(sizes: Iterable[int], repeat: int) -> dict[str, Any]:
    theory = EqualityTheory()
    per_size: dict[str, Any] = {}
    for n in sizes:
        per_size[str(n)] = _run_columns(
            lambda k=n: _equality_db(theory, k), theory, repeat=repeat
        )
    return {
        "workload": "equality-theory transitive closure over point chains",
        "sizes": list(sizes),
        "per_size": per_size,
        "speedup_all_on": per_size[str(max(sizes))]["speedup_all_on"],
        "speedup_compile": per_size[str(max(sizes))]["speedup_compile"],
    }


def _bench_equality_econfig(n: int) -> dict[str, Any]:
    """Section 4 baseline: e-config EVAL-phi vs. direct calculus evaluation."""
    theory = EqualityTheory()
    db = GeneralizedDatabase(theory)
    relation = db.create_relation("R", ("a0",))
    for i in range(n):
        relation.add_point([i * 7 % (3 * n)])
    query = parse_query("exists y . R(y) and x != y", theory=theory)
    started = time.perf_counter()
    econfig = evaluate_query_econfig(query, db, output=("x",))
    econfig_s = time.perf_counter() - started
    started = time.perf_counter()
    calculus = evaluate_calculus(query, db, output=("x",))
    calculus_s = time.perf_counter() - started
    agree = all(
        econfig.contains_values([value]) == calculus.contains_values([value])
        for value in range(3 * n + 2)
    )
    return {
        "workload": "equality e-configuration EVAL-phi vs. direct calculus",
        "size": n,
        "econfig_time_s": round(econfig_s, 6),
        "calculus_time_s": round(calculus_s, 6),
        "agree": agree,
    }


def _bench_boolean(n: int, repeat: int) -> dict[str, Any]:
    theory = BooleanTheory(FreeBooleanAlgebra.with_generators(1))
    result = _run_columns(lambda: _boolean_db(theory, n), theory, repeat=repeat)
    return {
        "workload": "Boole-lemma transitive closure over a B_1 element graph",
        "size": n,
        **result,
    }


def _bench_compile_cache(n: int, repeat: int) -> dict[str, Any]:
    """PlanCache microbench: cold vs. warm ``evaluate()`` setup overhead.

    Setup overhead is ``EvaluationStats.compile_seconds``: time spent
    fetching from the PlanCache plus lowering rule variants to closures.
    Cold runs clear the process-wide cache first (fingerprint + schema +
    options + theory key all miss); warm runs hit the cached
    ``CompiledProgram``, whose variants are already lowered -- the
    prepared-query pattern.  Best-of timing keeps the microsecond-scale
    warm numbers stable across noisy CI machines, and the program is a
    server-shaped query (TC plus two derived views) rather than the bare
    two-rule TC, so the cold side measures a realistic amount of lowering
    work against the constant-time warm fetch.
    """
    from repro.core.compile import PLAN_CACHE

    theory = DenseOrderTheory()
    rules = parse_rules(
        TC_RULES + "U(x, y) :- T(x, y), E(x, y).\nV(x) :- U(x, y).\n",
        theory=theory,
    )
    program = DatalogProgram(rules, theory, options=EngineOptions.all_on())
    rounds = max(repeat, 3)
    cold = None
    for _ in range(rounds):
        PLAN_CACHE.clear()
        _world, stats = program.evaluate(_dense_db(n))
        assert stats.compile_misses == 1 and stats.compile_hits == 0
        cold = stats.compile_seconds if cold is None else min(cold, stats.compile_seconds)
    warm = None
    for _ in range(rounds):
        _world, stats = program.evaluate(_dense_db(n))
        assert stats.compile_hits == 1 and stats.compiled_rules == 0
        warm = stats.compile_seconds if warm is None else min(warm, stats.compile_seconds)
    ratio = cold / max(warm, 1e-9)
    return {
        "workload": "plan-cache warm vs cold evaluate() setup overhead",
        "size": n,
        "cold_setup_s": round(cold, 9),
        "warm_setup_s": round(warm, 9),
        "setup_speedup_warm": round(ratio, 1),
        "cache": PLAN_CACHE.stats(),
    }


#: the clean semantic workload: TC plus derived views, no redundancy
_SEMANTIC_CLEAN_RULES = TC_RULES + """
U(x, y) :- T(x, y), E(x, y).
V(x) :- U(x, y).
W(x) :- V(x).
W(x) :- T(x, y).
"""


def _bench_semantic(n: int, repeat: int) -> dict[str, Any]:
    """Semantic-optimizer workload: dense TC with injected redundant rules.

    The redundant program is the clean six-rule TC-plus-views program with
    two narrowed rule copies injected (25% redundancy) -- each is contained
    in its unconstrained original, so the containment optimizer must remove
    exactly the injected rules.  Timing covers program construction *plus*
    evaluation (the optimizer runs at construction), best-of-N, comparing
    ``optimize_semantic`` on vs. off over the redundant program (the speedup
    the rewrite buys) and over the clean program (the analysis overhead when
    there is nothing to remove: one directly-timed ``optimize_program`` pass
    relative to the clean construct+evaluate time; the ``--check`` gate caps
    it at 5%).  Both redundant columns must land on the identical fixpoint.
    """
    theory = DenseOrderTheory()
    injected = 2
    redundant_rules = _SEMANTIC_CLEAN_RULES + (
        f"T(x, y) :- E(x, y), x < {3 * n}.\n"
        f"U(x, y) :- T(x, y), E(x, y), y < {3 * n}.\n"
    )
    rounds = max(repeat, 3)

    def timed(text: str, options: EngineOptions) -> tuple[float, Any, Any]:
        rules = parse_rules(text, theory=theory)
        best = None
        world = stats = None
        for _ in range(rounds):
            db = _dense_db(n)
            started = time.perf_counter()
            program = DatalogProgram(rules, theory, options=options)
            world, stats = program.evaluate(db)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, world, stats

    on = EngineOptions.all_on()
    off = replace(EngineOptions.all_on(), optimize_semantic=False)
    optimized_s, opt_world, opt_stats = timed(redundant_rules, on)
    unoptimized_s, plain_world, _stats = timed(redundant_rules, off)
    for target in ("T", "W"):
        if _fingerprint(opt_world, target) != _fingerprint(plain_world, target):
            raise BenchError(
                f"semantic optimizer changed the {target} fixpoint at N={n}"
            )
    clean_on_s, _w, _s = timed(_SEMANTIC_CLEAN_RULES, on)
    clean_off_s, _w, _s = timed(_SEMANTIC_CLEAN_RULES, off)
    # overhead = one optimize_program pass (the exact cost construction adds)
    # relative to the clean construct+evaluate time; timed directly rather
    # than as clean_on - clean_off, which is differential noise at this scale
    from repro.analysis.semantic import optimize_program

    clean_rules = parse_rules(_SEMANTIC_CLEAN_RULES, theory=theory)
    analysis_s = None
    for _ in range(rounds):
        started = time.perf_counter()
        optimize_program(clean_rules, theory)
        elapsed = time.perf_counter() - started
        analysis_s = elapsed if analysis_s is None else min(analysis_s, elapsed)
    overhead_pct = analysis_s / max(clean_off_s, 1e-9) * 100
    return {
        "workload": "semantic optimizer: dense TC with 25% injected redundant rules",
        "size": n,
        "rules_injected": injected,
        "rules_removed": opt_stats.semantic_rules_subsumed,
        "containment_checks": opt_stats.semantic_containment_checks,
        "optimized_s": round(optimized_s, 6),
        "unoptimized_s": round(unoptimized_s, 6),
        "speedup_semantic": round(unoptimized_s / max(optimized_s, 1e-9), 3),
        "clean_on_s": round(clean_on_s, 6),
        "clean_off_s": round(clean_off_s, 6),
        "analysis_s": round(analysis_s, 6),
        "overhead_pct": round(overhead_pct, 2),
        "identical_fixpoints": True,
    }


def _bench_ivm(sizes: Iterable[int], repeat: int) -> dict[str, Any]:
    """Incremental maintenance vs. from-scratch: one tuple into a dense TC.

    The maintained side registers a :class:`MaterializedView` over the
    N-edge chain, then times a single ``insert`` of the edge extending the
    chain (DRed/counting maintenance through the same compiled closures the
    scratch side uses).  The scratch side times a full ``evaluate()`` over
    the (N+1)-edge chain.  Both must land on the identical canonical
    fixpoint -- maintenance is only interesting if it is *exactly* the
    from-scratch answer, faster.  Best-of timing; the ``--check`` gate
    enforces the 5x maintenance floor at every size.
    """
    from fractions import Fraction

    from repro.core.generalized import GeneralizedTuple
    from repro.core.ivm import MaterializedView

    rounds = max(repeat, 3)
    per_size: dict[str, Any] = {}
    for n in sizes:
        maintained = scratch = None
        maintained_world = None
        last_stats = None
        for _ in range(rounds):
            db = _dense_db(n)
            theory = db.theory
            rules = parse_rules(TC_RULES, theory=theory)
            program = DatalogProgram(rules, theory, options=EngineOptions.all_on())
            view = MaterializedView(program, db)
            delta = GeneralizedTuple(
                ("x", "y"),
                (
                    theory.equality("x", theory.constant(Fraction(n))),
                    theory.equality("y", theory.constant(Fraction(n + 1))),
                ),
            )
            started = time.perf_counter()
            last_stats = view.insert("E", delta)
            elapsed = time.perf_counter() - started
            maintained = elapsed if maintained is None else min(maintained, elapsed)
            maintained_world = view.world
            view.close()
        scratch_world = None
        for _ in range(rounds):
            db = _dense_db(n + 1)
            theory = db.theory
            rules = parse_rules(TC_RULES, theory=theory)
            program = DatalogProgram(rules, theory, options=EngineOptions.all_on())
            started = time.perf_counter()
            scratch_world, _stats = program.evaluate(db)
            elapsed = time.perf_counter() - started
            scratch = elapsed if scratch is None else min(scratch, elapsed)
        if _fingerprint(maintained_world, "T") != _fingerprint(scratch_world, "T"):
            raise BenchError(
                f"maintained fixpoint differs from scratch at N={n}"
            )
        per_size[str(n)] = {
            "maintained_s": round(maintained, 6),
            "scratch_s": round(scratch, 6),
            "speedup_maintained": round(scratch / max(maintained, 1e-9), 3),
            "identical_fixpoints": True,
            "ivm_derived_added": last_stats.ivm_derived_added,
            "ivm_join_steps": last_stats.join_steps,
        }
    return {
        "workload": "maintained vs. scratch: single-edge insert into dense TC",
        "sizes": list(sizes),
        "per_size": per_size,
        "speedup_maintained": per_size[str(max(sizes))]["speedup_maintained"],
    }


def _bench_sharded(n: int, repeat: int) -> dict[str, Any]:
    """Sharded multi-process vs. serial evaluation on the dense TC chain.

    Both columns run the *interpreted* engine (``compile_rules`` and
    ``index_probes`` off, thread pool off) so the comparison is
    like-for-like: the compiled point fast path finishes dense TC so
    quickly that IPC dominates any pool, which would measure pickling, not
    sharding.  The sharded column fans rounds across ``min(8, cpu)``
    worker processes.  Byte-identity of the fixpoints is asserted here
    (raising :class:`BenchError` on divergence) and recorded; the
    ``--check`` gate additionally enforces the 3x speedup floor, but only
    for documents recorded on >= 8 cores -- on small CI runners the pool
    has no parallelism to win, and the record is informational.
    """
    from repro.runtime.cluster import ClusterConfig

    cores = os.cpu_count() or 1
    workers = min(8, max(2, cores))
    base = replace(
        EngineOptions.all_on(),
        parallel=False,
        compile_rules=False,
        index_probes=False,
    )
    cluster = ClusterConfig(workers=workers, min_slice=4)
    rounds = max(repeat, 3)

    def timed(options: EngineOptions) -> tuple[float, Any, Any]:
        theory = DenseOrderTheory()
        rules = parse_rules(TC_RULES, theory=theory)
        best = None
        world = stats = None
        for _ in range(rounds):
            db = _dense_db(n)
            program = DatalogProgram(rules, db.theory, options=options)
            started = time.perf_counter()
            world, stats = program.evaluate(db)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, world, stats

    serial_s, serial_world, _serial_stats = timed(base)
    sharded_s, sharded_world, sharded_stats = timed(
        replace(base, sharded=True, cluster=cluster)
    )
    identical = all(
        serial_world.relation(name).tuples() == sharded_world.relation(name).tuples()
        for name in serial_world.names()
    )
    if not identical:
        raise BenchError(f"sharded fixpoint differs from serial at N={n}")
    return {
        "workload": "sharded multi-process vs serial: dense TC (interpreted engine)",
        "size": n,
        "cores": cores,
        "workers": workers,
        "serial_s": round(serial_s, 6),
        "sharded_s": round(sharded_s, 6),
        "speedup_sharded": round(serial_s / max(sharded_s, 1e-9), 3),
        "shard_rounds": sharded_stats.shard_rounds,
        "shard_tasks": sharded_stats.shard_tasks,
        "worker_restarts": sharded_stats.worker_restarts,
        "degraded": bool(sharded_stats.shard_fallback),
        "identical_fixpoints": True,
    }


def _bench_magic(n: int, repeat: int) -> dict[str, Any]:
    """Demand-driven magic query vs. full-fixpoint-then-filter on dense TC.

    The acceptance workload of the query front door: the bound query
    ``T(c, y)`` with ``c`` near the end of the N-edge chain only needs the
    cone reachable from ``c`` -- O(N - c) tuples against the O(N^2) full
    closure.  The magic column answers through :meth:`repro.core.query.
    Engine.query` (the result-reuse cache is cleared every round, so the
    rewrite-and-evaluate path is what gets timed); the oracle column
    evaluates the full fixpoint and applies the same binding selection.
    Canonical answer keys must be byte-identical, and the warm repeats must
    hit the process-wide plan cache -- one compiled plan per adornment
    shape, because the binding constant lives in the seeded magic data, not
    the rule text.  The ``--check`` gate enforces the 5x speedup floor,
    answer identity, and the warm plan-cache hit.
    """
    from repro.core.magic import select_answers
    from repro.core.query import Engine

    theory = DenseOrderTheory()
    rules = parse_rules(TC_RULES, theory=theory)
    db = _dense_db(n)
    bound = n - 4
    engine = Engine(rules, theory, options=EngineOptions.all_on(), database=db)
    rounds = max(repeat, 3)
    magic_s = None
    result = None
    for _ in range(rounds):
        engine.cache.clear()
        started = time.perf_counter()
        result = engine.query(f"T({bound}, y)")
        elapsed = time.perf_counter() - started
        magic_s = elapsed if magic_s is None else min(magic_s, elapsed)
    warm_plan_hit = result.stats.compile_hits >= 1
    program = DatalogProgram(rules, theory, options=EngineOptions.all_on())
    full_s = None
    filtered = None
    full_tuples = 0
    for _ in range(rounds):
        started = time.perf_counter()
        world, _stats = program.evaluate(db)
        filtered = select_answers(world.relation("T"), result.query, theory)
        elapsed = time.perf_counter() - started
        full_s = elapsed if full_s is None else min(full_s, elapsed)
        full_tuples = len(world.relation("T"))
    identical = frozenset(result.relation.keys()) == frozenset(filtered.keys())
    if not identical:
        raise BenchError(
            f"magic answers differ from the filtered fixpoint at N={n}"
        )
    return {
        "workload": "demand-driven magic query vs full-fixpoint-then-filter (dense TC)",
        "size": n,
        "bound": bound,
        "query_s": round(magic_s, 6),
        "full_filter_s": round(full_s, 6),
        "speedup_magic": round(full_s / max(magic_s, 1e-9), 3),
        "identical_answers": identical,
        "magic_rules": result.magic_rules,
        "cone_tuples": result.cone_tuples,
        "full_tuples": full_tuples,
        "warm_plan_hit": warm_plan_hit,
    }


# ------------------------------------------------------------------ checking
#: smallest chain length at which the ivm_stats 5x floor applies
_IVM_FLOOR_MIN_N = 32

#: smallest recorded core count at which the sharded_stats 3x floor applies
_SHARDED_FLOOR_MIN_CORES = 8


def _collect_speedups(document: dict[str, Any]) -> dict[str, float]:
    """name -> headline speedup ratios for every engine record in a document.

    The compile-ablation ratio of a record gates under ``<name>::compile``
    so the two ratios regress (and report) independently.
    """
    speedups: dict[str, float] = {}
    for name, record in document.get("records", {}).items():
        if not name.startswith("engine_"):
            continue
        for field, suffix in (("speedup_all_on", ""), ("speedup_compile", "::compile")):
            ratio = record.get(field)
            if isinstance(ratio, (int, float)) and ratio > 0:
                speedups[name + suffix] = float(ratio)
    return speedups


def check_regression(
    fresh: dict[str, Any], baseline: dict[str, Any], threshold_pct: float
) -> list[str]:
    """Workloads whose speedup ratio regressed past the threshold.

    Compares ratios (machine-independent), only for records present in both
    documents; a missing baseline record is not a regression (new workload).
    The fresh document's ``compile_stats`` records additionally gate on the
    absolute plan-cache floor (warm setup at least 5x faster than cold) --
    that ratio is so large when healthy that ratio-vs-ratio comparison
    would be noise, while the floor catches a broken cache outright.
    """
    failures = []
    fresh_ratios = _collect_speedups(fresh)
    for name, before in _collect_speedups(baseline).items():
        after = fresh_ratios.get(name)
        if after is None:
            continue
        if after < before * (1 - threshold_pct / 100):
            failures.append(
                f"{name}: speedup {after:.2f}x vs baseline {before:.2f}x "
                f"(> {threshold_pct:.0f}% regression)"
            )
    for name, record in fresh.get("records", {}).items():
        if name.startswith("compile_stats"):
            ratio = record.get("setup_speedup_warm")
            if not isinstance(ratio, (int, float)) or ratio < 5:
                failures.append(
                    f"{name}: warm plan-cache setup speedup {ratio}x below the 5x floor"
                )
        elif name.startswith("ivm_stats"):
            # same absolute-floor treatment: maintenance that is not at
            # least 5x cheaper than recomputing is broken.  Only gated from
            # N=32 up -- below that the from-scratch closure is so small
            # that per-apply fixed costs dominate and the ratio is noise
            for size, cell in record.get("per_size", {}).items():
                if int(size) < _IVM_FLOOR_MIN_N:
                    continue
                ratio = cell.get("speedup_maintained")
                if not isinstance(ratio, (int, float)) or ratio < 5:
                    failures.append(
                        f"{name}[N={size}]: maintained-vs-scratch speedup "
                        f"{ratio}x below the 5x floor"
                    )
        elif name.startswith("semantic_stats"):
            # absolute gates: every injected redundant rule must be removed,
            # removing them must not make evaluation slower, and the analysis
            # overhead on a clean (nothing-to-remove) program is capped at 5%
            if record.get("rules_removed") != record.get("rules_injected"):
                failures.append(
                    f"{name}: removed {record.get('rules_removed')} of "
                    f"{record.get('rules_injected')} injected redundant rules"
                )
            ratio = record.get("speedup_semantic")
            if not isinstance(ratio, (int, float)) or ratio < 1:
                failures.append(
                    f"{name}: redundant-program speedup {ratio}x below 1x "
                    "(optimizer made evaluation slower)"
                )
            overhead = record.get("overhead_pct")
            if not isinstance(overhead, (int, float)) or overhead > 5:
                failures.append(
                    f"{name}: clean-program analysis overhead {overhead}% "
                    "above the 5% cap"
                )
        elif name.startswith("sharded_stats"):
            # byte-identity and no degradation are unconditional; the 3x
            # speedup floor applies only to documents recorded on >= 8
            # cores -- a small runner's pool has no parallelism to win and
            # its ratio is informational, not a gate
            if not record.get("identical_fixpoints"):
                failures.append(
                    f"{name}: sharded fixpoint differs from serial"
                )
            if record.get("degraded"):
                failures.append(
                    f"{name}: sharded run degraded to the in-process path"
                )
            cores = record.get("cores")
            ratio = record.get("speedup_sharded")
            if (
                isinstance(cores, int)
                and cores >= _SHARDED_FLOOR_MIN_CORES
                and (not isinstance(ratio, (int, float)) or ratio < 3)
            ):
                failures.append(
                    f"{name}: sharded speedup {ratio}x below the 3x floor "
                    f"on a {cores}-core recorder"
                )
        elif name.startswith("magic_stats"):
            # absolute gates for the demand-driven query path: a bound TC
            # query must beat full-fixpoint-then-filter by at least 5x with
            # byte-identical canonical answers, and the warm repeat of the
            # same adornment shape must hit the process-wide plan cache
            if not record.get("identical_answers"):
                failures.append(
                    f"{name}: magic answers differ from the filtered fixpoint"
                )
            ratio = record.get("speedup_magic")
            if not isinstance(ratio, (int, float)) or ratio < 5:
                failures.append(
                    f"{name}: magic speedup {ratio}x below the 5x floor"
                )
            if not record.get("warm_plan_hit"):
                failures.append(
                    f"{name}: repeated adornment missed the plan cache"
                )
    return failures


# ----------------------------------------------------------------------- CLI
PROFILES = {
    # small enough for a CI smoke job, large enough to exercise every layer
    "smoke": {
        "dense": [12, 16],
        "equality": [12],
        "boolean": 6,
        "econfig": 24,
        "ivm": [32],
        "sharded": 32,
        # the acceptance criterion pins the magic workload at N=64 even in
        # the smoke profile: the 5x floor is only meaningful against the
        # quadratic full closure
        "magic": 64,
    },
    "full": {
        "dense": [16, 32, 64],
        "equality": [16, 32],
        "boolean": 10,
        "econfig": 48,
        "ivm": [32, 64],
        "sharded": 64,
        "magic": 64,
    },
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench", description="engine benchmark suite"
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="smoke",
        help="workload sizes (default: smoke)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="timing repetitions (min is kept)"
    )
    parser.add_argument(
        "--check", type=float, metavar="PCT", default=None,
        help="fail if any speedup ratio regressed more than PCT%% vs baseline",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path("BENCH_datalog.json"),
        help="baseline document for --check (default: committed BENCH_datalog.json)",
    )
    args = parser.parse_args(argv)
    profile = PROFILES[args.profile]

    # the baseline must be read before record_bench rewrites the document
    # in place (the default sink and the baseline are often the same file)
    baseline = load_bench_json(args.baseline) if args.check is not None else None

    # record names are profile-qualified: a smoke run's ratios (small N)
    # are not comparable to a full run's (large N), so each profile gates
    # only against its own committed records
    records = {
        f"engine_tc_dense[{args.profile}]": _bench_dense(
            profile["dense"], args.repeat
        ),
        f"engine_tc_equality[{args.profile}]": _bench_equality(
            profile["equality"], args.repeat
        ),
        f"engine_tc_boolean[{args.profile}]": _bench_boolean(
            profile["boolean"], args.repeat
        ),
        f"equality_econfig_baseline[{args.profile}]": _bench_equality_econfig(
            profile["econfig"]
        ),
        f"compile_stats[{args.profile}]": _bench_compile_cache(
            max(profile["dense"]), args.repeat
        ),
        f"ivm_stats[{args.profile}]": _bench_ivm(profile["ivm"], args.repeat),
        f"semantic_stats[{args.profile}]": _bench_semantic(
            max(profile["dense"]), args.repeat
        ),
        f"sharded_stats[{args.profile}]": _bench_sharded(
            profile["sharded"], args.repeat
        ),
        f"magic_stats[{args.profile}]": _bench_magic(
            profile["magic"], args.repeat
        ),
    }
    for name, payload in records.items():
        record_bench(name, {"profile": args.profile, **payload})
        headline = payload.get("speedup_all_on")
        suffix = f"  speedup {headline:.2f}x" if headline else ""
        print(f"[bench] {name}{suffix}")
    print(f"[bench] wrote {bench_json_path()}")

    if args.check is not None:
        fresh = {"records": records}
        failures = check_regression(fresh, baseline, args.check)
        if failures:
            for failure in failures:
                print(f"[bench] REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"[bench] regression check passed (threshold {args.check:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
