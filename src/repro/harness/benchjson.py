"""Machine-readable benchmark records: ``BENCH_datalog.json``.

The printed experiment blocks (``benchmarks/conftest.report``) are for
humans reading EXPERIMENTS.md; this module gives the same runs a stable
machine-readable sink so ablation results and scaling fits can be tracked
across commits.  Records are merged by name into one JSON document:

.. code-block:: json

    {
      "records": {
        "<name>": {"name": ..., "payload fields": ...},
        ...
      }
    }

The target path defaults to ``BENCH_datalog.json`` in the current working
directory and can be redirected with the ``REPRO_BENCH_JSON`` environment
variable (useful for CI artifacts and for keeping scratch runs out of the
repository checkout).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

#: environment variable overriding the output path
ENV_VAR = "REPRO_BENCH_JSON"

#: default file name, written into the current working directory
DEFAULT_NAME = "BENCH_datalog.json"


def bench_json_path() -> Path:
    """The JSON sink currently in effect."""
    return Path(os.environ.get(ENV_VAR) or DEFAULT_NAME)


def load_bench_json(path: Path | None = None) -> dict[str, Any]:
    """The current document, or a fresh skeleton if absent/corrupt."""
    target = path if path is not None else bench_json_path()
    try:
        with open(target, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {"records": {}}
    if not isinstance(document, dict) or not isinstance(
        document.get("records"), dict
    ):
        return {"records": {}}
    return document


def record_bench(
    name: str, payload: Mapping[str, Any], path: Path | None = None
) -> Path:
    """Merge one named record into the JSON document and write it back.

    Re-running a benchmark overwrites its own record and leaves the others
    untouched, so one file accumulates the whole suite's latest numbers.
    Returns the path written.
    """
    target = path if path is not None else bench_json_path()
    document = load_bench_json(target)
    document["records"][name] = {"name": name, **payload}
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target
