"""Timing, scaling sweeps, and log-log exponent fitting."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


def time_callable(fn: Callable[[], Any], repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = math.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


@dataclass
class ScalingResult:
    """A size -> time sweep with a fitted log-log slope."""

    label: str
    sizes: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    extra: dict[int, Any] = field(default_factory=dict)

    @property
    def exponent(self) -> float:
        return fit_exponent(self.sizes, self.times)

    def rows(self) -> list[list[str]]:
        return [
            [self.label, str(n), f"{t * 1000:.2f} ms"]
            for n, t in zip(self.sizes, self.times)
        ]


def fit_exponent(sizes: Sequence[int], times: Sequence[float]) -> float:
    """Least-squares slope of log(time) against log(size).

    The empirical scaling exponent: ~1 linear, ~2 quadratic, etc.  Returns
    NaN for degenerate inputs.
    """
    pairs = [
        (math.log(n), math.log(t))
        for n, t in zip(sizes, times)
        if n > 0 and t > 0
    ]
    if len(pairs) < 2:
        return math.nan
    mean_x = sum(x for x, _ in pairs) / len(pairs)
    mean_y = sum(y for _, y in pairs) / len(pairs)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    denominator = sum((x - mean_x) ** 2 for x, _ in pairs)
    if denominator == 0:
        return math.nan
    return numerator / denominator


def sweep(
    label: str,
    sizes: Sequence[int],
    build: Callable[[int], Any],
    run: Callable[[Any], Any],
    repeats: int = 1,
) -> ScalingResult:
    """Time ``run(build(n))`` for each size (build time excluded)."""
    result = ScalingResult(label)
    for n in sizes:
        payload = build(n)
        elapsed = time_callable(lambda: run(payload), repeats=repeats)
        result.sizes.append(n)
        result.times.append(elapsed)
    return result


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A plain aligned text table (what the bench files print)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def render(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)
