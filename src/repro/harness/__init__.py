"""Measurement harness: timing sweeps, scaling-exponent fits, report tables.

The paper's evaluation claims are complexity classes (LOGSPACE, NC, PTIME,
Pi-2-p-hardness).  The benchmarks realize them as *scaling measurements*:
fixed query, growing database, fitted log-log slope.  This package provides
the shared plumbing so every ``benchmarks/bench_*.py`` file prints the same
kind of table recorded in EXPERIMENTS.md.
"""

from repro.harness.benchjson import (
    bench_json_path,
    load_bench_json,
    record_bench,
)
from repro.harness.measure import (
    ScalingResult,
    fit_exponent,
    format_table,
    sweep,
    time_callable,
)

__all__ = [
    "ScalingResult",
    "bench_json_path",
    "fit_exponent",
    "format_table",
    "load_bench_json",
    "record_bench",
    "sweep",
    "time_callable",
]
