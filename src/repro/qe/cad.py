"""Cylindrical algebraic decomposition for formulas in at most two variables.

This realizes Theorem 2.3's closed-form evaluation (via the cell
decomposition method of Kozen-Yap / Collins, cited by the paper) for the
fragment the elimination ladder's first two rungs cannot handle: arbitrary
degrees, at most two variables in total.  Everything is exact: base samples
are rational numbers or real algebraic numbers, and lifting over an
algebraic sample works in Q(alpha) via dynamic evaluation
(:mod:`repro.poly.numberfield`).

Pipeline for ``exists y . phi(x, y)``:

1. **Normalization.**  The y-involving polynomials are replaced by a
   gcd-free, squarefree-in-y basis over Q(x)
   (:func:`repro.poly.bivargcd.gcd_free_basis`), so that discriminants and
   pairwise resultants are not identically zero.
2. **Projection.**  proj = all y-coefficients of each basis polynomial,
   discriminants, pairwise resultants, contents, and the x-only input
   polynomials.  Between consecutive real roots of proj the number and
   interleaving of the y-roots of every input polynomial is invariant, so
   the truth of ``exists y . phi`` is invariant on every base cell.
3. **Base + lift.**  The base line is decomposed at the roots of the
   (derivative-closed, see below) projection set; over each base sample the
   stack of y-cells is built by isolating the roots of the substituted
   polynomials and the formula is tested on each stack cell's sign vector.
4. **Solution formula.**  The satisfying base cells are emitted as sign
   conditions over the *derivative closure* of the projection polynomials.
   For a derivative-closed family, every consistent sign condition defines a
   connected subset of the line (the generalized Thom lemma), and distinct
   cells of the refined decomposition have distinct sign vectors, so the
   produced DNF describes exactly the satisfying set -- a genuine
   quantifier-free equivalent, not an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.errors import UnsupportedEliminationError
from repro.poly.algebraic import RealAlgebraic
from repro.poly.bivargcd import content_in, gcd_free_basis, poly_to_upoly
from repro.poly.intervals import RatInterval, eval_upoly_on_interval
from repro.poly.numberfield import NumberField, cauchy_bound_over_field
from repro.poly.polynomial import Polynomial
from repro.poly.resultant import discriminant, resultant
from repro.poly.univariate import QQ, RootInterval, SturmContext, UPoly
from repro.qe.signs import Dnf, SignCond, dedup
from repro.runtime.budget import tick


# --------------------------------------------------------------------- cells
@dataclass
class LineCell:
    """One cell of a decomposition of the real line.

    ``kind`` is "interval" or "point".  Interval cells carry a rational
    sample; point cells carry the root (host Sturm context + isolating
    interval over the coefficient field).
    """

    kind: str
    rational_sample: Fraction | None = None
    host: SturmContext | None = None
    interval: RootInterval | None = None


class _FieldOps:
    """Sign determination helpers uniform over QQ and number fields."""

    def __init__(self, field) -> None:
        self.field = field
        self.is_rational_field = field is QQ

    def coeff_box(self, element) -> RatInterval:
        if self.is_rational_field:
            return RatInterval.point(element)
        return eval_upoly_on_interval(
            list(self.field._reduce(element)), self.field._alpha_box()
        )

    def refine_base(self) -> None:
        if not self.is_rational_field:
            self.field.alpha.refine()

    def interval_eval(self, poly: UPoly, box: RatInterval) -> RatInterval:
        acc = RatInterval.point(Fraction(0))
        for coeff in reversed(poly.coeffs):
            acc = acc * box + self.coeff_box(coeff)
        return acc

    def sign_at_root(
        self, target: UPoly, host: SturmContext, interval: RootInterval
    ) -> int:
        """Exact sign of ``target`` at the root of ``host`` isolated by ``interval``."""
        if target.is_zero():
            return 0
        if interval.is_exact:
            return self.field.sign(target.eval(interval.low))
        common = target.squarefree().gcd(host.poly)
        if common.degree() >= 1:
            common_context = SturmContext(common)
            if common_context.count_roots_open(interval.low, interval.high) == 1:
                return 0
        current = interval
        while True:
            box = self.interval_eval(target, RatInterval(current.low, current.high))
            sign = box.sign()
            if sign is not None and box.excludes_zero():
                return sign
            if current.is_exact:
                return self.field.sign(target.eval(current.low))
            current = host.refine(current)
            self.refine_base()


def _roots_equal(
    ops: _FieldOps,
    host_a: SturmContext,
    root_a: RootInterval,
    host_b: SturmContext,
    root_b: RootInterval,
) -> bool:
    """Whether two isolated roots (possibly of different polynomials) coincide."""
    if root_a.is_exact and root_b.is_exact:
        return root_a.low == root_b.low
    if root_a.is_exact:
        return ops.sign_at_root(
            UPoly([ops.field.neg(ops.field.from_fraction(root_a.low)), ops.field.one()], ops.field),
            host_b,
            root_b,
        ) == 0
    if root_b.is_exact:
        return ops.sign_at_root(
            UPoly([ops.field.neg(ops.field.from_fraction(root_b.low)), ops.field.one()], ops.field),
            host_a,
            root_a,
        ) == 0
    common = host_a.poly.gcd(host_b.poly)
    if common.degree() < 1:
        return False
    context = SturmContext(common)
    in_a = context.count_roots_open(root_a.low, root_a.high) == 1
    in_b = context.count_roots_open(root_b.low, root_b.high) == 1
    if not (in_a and in_b):
        return False
    low = max(root_a.low, root_b.low)
    high = min(root_a.high, root_b.high)
    if low >= high:
        return False
    return context.count_roots_open(low, high) == 1


def _separate_roots(
    ops: _FieldOps, roots: list[tuple[SturmContext, RootInterval]]
) -> list[tuple[SturmContext, RootInterval]]:
    """Sort distinct roots and shrink their intervals until pairwise disjoint."""
    # deduplicate
    unique: list[tuple[SturmContext, RootInterval]] = []
    for host, interval in roots:
        if not any(
            _roots_equal(ops, host, interval, other_host, other_interval)
            for other_host, other_interval in unique
        ):
            unique.append((host, interval))
    # refine until pairwise *strictly* separated (a positive-width rational
    # gap between any two intervals); distinct roots separate eventually
    changed = True
    while changed:
        changed = False
        for i in range(len(unique)):
            for j in range(i + 1, len(unique)):
                host_i, int_i = unique[i]
                host_j, int_j = unique[j]
                if _needs_separation(int_i, int_j):
                    unique[i] = (host_i, host_i.refine(int_i))
                    unique[j] = (host_j, host_j.refine(int_j))
                    changed = True
    unique.sort(key=lambda item: (item[1].low, item[1].high))
    return unique


def _needs_separation(a: RootInterval, b: RootInterval) -> bool:
    """True while there is no strict rational gap between the two intervals.

    Exact roots are width-zero points, so two distinct exact roots are
    always separated; for any other combination we insist on ``high < low``
    strictly, which guarantees a rational sample point strictly between the
    underlying roots.
    """
    if a.is_exact and b.is_exact:
        return False  # distinct exact roots are separated by any midpoint
    return not (a.high < b.low or b.high < a.low)


def decompose_line(
    polys: Sequence[UPoly], field=QQ
) -> list[LineCell]:
    """Cells of the line induced by the roots of ``polys`` (over ``field``)."""
    ops = _FieldOps(field)
    roots: list[tuple[SturmContext, RootInterval]] = []
    for poly in polys:
        if poly.degree() < 1:
            continue
        context = SturmContext(poly)
        if field is QQ:
            isolated = context.isolate_roots()
        else:
            bound = cauchy_bound_over_field(context.poly, field)
            isolated = context.isolate_roots(bound=bound)
        for interval in isolated:
            roots.append((context, interval))
    separated = _separate_roots(ops, roots)
    cells: list[LineCell] = []
    if not separated:
        cells.append(LineCell("interval", rational_sample=Fraction(0)))
        return cells
    first = separated[0][1]
    cells.append(LineCell("interval", rational_sample=first.low - 1))
    for index, (host, interval) in enumerate(separated):
        cells.append(LineCell("point", host=host, interval=interval))
        if index + 1 < len(separated):
            next_interval = separated[index + 1][1]
            low = interval.high if not interval.is_exact else interval.low
            high = next_interval.low
            if low >= high:  # pragma: no cover - separation guarantees room
                raise AssertionError("root separation failed")
            cells.append(
                LineCell("interval", rational_sample=(low + high) / 2)
            )
        else:
            last = interval.high if not interval.is_exact else interval.low
            cells.append(LineCell("interval", rational_sample=last + 1))
    return cells


def cell_sign(ops: _FieldOps, poly: UPoly, cell: LineCell) -> int:
    """Sign of ``poly`` on a cell (evaluated at its sample point)."""
    if cell.kind == "interval":
        return ops.field.sign(poly.eval(cell.rational_sample))
    return ops.sign_at_root(poly, cell.host, cell.interval)


# ---------------------------------------------------------------- projection
def _derivative_closure(polys: list[Polynomial], var: str) -> list[Polynomial]:
    """Close a set of univariate-in-var polynomials under d/dvar."""
    result: list[Polynomial] = []
    seen: set[Polynomial] = set()
    queue = [p.primitive() for p in polys]
    while queue:
        poly = queue.pop()
        if poly.degree_in(var) < 1 or poly in seen:
            continue
        seen.add(poly)
        result.append(poly)
        queue.append(poly.derivative(var).primitive())
    return sorted(result, key=str)


def _projection(
    conds: Sequence[SignCond], drop_var: str, keep_var: str
) -> tuple[list[Polynomial], list[Polynomial]]:
    """(basis polynomials in both vars, projection polynomials in keep_var)."""
    bivariate = []
    projection: list[Polynomial] = []
    for cond in conds:
        poly = cond.poly
        if drop_var in poly.variables():
            bivariate.append(poly)
        elif keep_var in poly.variables():
            projection.append(poly.primitive())
    basis = gcd_free_basis(bivariate, drop_var)
    for poly in bivariate:
        content = content_in(poly, drop_var)
        if keep_var in content.variables():
            projection.append(content.primitive())
    for poly in basis:
        for coeff in poly.coefficients_in(drop_var):
            if keep_var in coeff.variables():
                projection.append(coeff.primitive())
        if poly.degree_in(drop_var) >= 2:
            disc = discriminant(poly, drop_var)
            if keep_var in disc.variables():
                projection.append(disc.primitive())
    for i in range(len(basis)):
        for j in range(i + 1, len(basis)):
            res = resultant(basis[i], basis[j], drop_var)
            if keep_var in res.variables():
                projection.append(res.primitive())
    unique = sorted(set(projection), key=str)
    return basis, unique


# --------------------------------------------------------------------- stack
def _substitute_sample(
    poly: Polynomial, keep_var: str, drop_var: str, cell: LineCell, field
) -> UPoly:
    """``poly(sample, y)`` as a univariate polynomial over the cell's field."""
    coeffs = []
    for coeff_poly in poly.coefficients_in(drop_var):
        if cell.kind == "interval":
            value = coeff_poly.evaluate({keep_var: cell.rational_sample})
            coeffs.append(field.from_fraction(value))
        else:
            extra = coeff_poly.variables() - {keep_var}
            if extra:
                raise UnsupportedEliminationError(
                    f"coefficient {coeff_poly} involves {sorted(extra)}"
                )
            if coeff_poly.is_constant():
                coeffs.append(field.from_fraction(coeff_poly.constant_value()))
            else:
                coeffs.append(field.from_upoly(poly_to_upoly(coeff_poly, keep_var)))
    return UPoly(coeffs, field)


def _cell_field(cell: LineCell):
    """The coefficient field for lifting over this base cell."""
    if cell.kind == "interval":
        return QQ
    if cell.interval.is_exact:
        return QQ
    alpha = RealAlgebraic(cell.host.poly, cell.interval)
    return NumberField(alpha)


def _exists_on_stack(
    conds_y: Sequence[SignCond],
    keep_var: str,
    drop_var: str,
    cell: LineCell,
) -> bool:
    """Whether ``exists drop_var . conj(y-conds)`` holds over this base cell."""
    field = _cell_field(cell)
    base_sample_rational = (
        cell.rational_sample
        if cell.kind == "interval"
        else (cell.interval.low if cell.interval.is_exact else None)
    )
    substituted: list[UPoly] = []
    for cond in conds_y:
        if field is QQ and base_sample_rational is not None:
            value_poly = cond.poly.substitute(
                {keep_var: Polynomial.constant(base_sample_rational)}
            )
            substituted.append(poly_to_upoly(value_poly, drop_var))
        else:
            substituted.append(
                _substitute_sample(cond.poly, keep_var, drop_var, cell, field)
            )
    ops = _FieldOps(field)
    nonzero = [p for p in substituted if not p.is_zero()]
    stack = decompose_line(nonzero, field)
    for stack_cell in stack:
        satisfied = True
        for cond, poly in zip(conds_y, substituted):
            sign = 0 if poly.is_zero() else cell_sign(ops, poly, stack_cell)
            if not cond.check_sign(sign):
                satisfied = False
                break
        if satisfied:
            return True
    return False


# -------------------------------------------------------------------- driver
def cad_eliminate(conds: Sequence[SignCond], drop_var: str) -> Dnf:
    """``exists drop_var . conjunction`` over at most two total variables.

    Returns an exact quantifier-free DNF in the remaining variable (or a
    ground true/false DNF if the conjunction was univariate).
    """
    variables = set()
    for cond in conds:
        variables |= cond.poly.variables()
    if drop_var not in variables:
        return [tuple(conds)]
    others = variables - {drop_var}
    if len(others) > 1:
        raise UnsupportedEliminationError(
            f"bivariate CAD supports at most two variables, got {sorted(variables)}"
        )
    if not others:
        return [()] if _decide_univariate(conds, drop_var) else []
    keep_var = next(iter(others))
    conds_y = [c for c in conds if drop_var in c.poly.variables()]
    conds_x = [c for c in conds if drop_var not in c.poly.variables()]
    _, projection = _projection(conds, drop_var, keep_var)
    star = _derivative_closure(
        [p for p in projection] + [c.poly for c in conds_x], keep_var
    )
    star_upolys = [poly_to_upoly(p, keep_var) for p in star]
    cells = decompose_line(star_upolys, QQ)
    ops = _FieldOps(QQ)
    result: Dnf = []
    for cell in cells:
        tick("qe_step")
        signs = [cell_sign(ops, up, cell) for up in star_upolys]
        # x-only conditions must hold on the cell
        if not _x_conditions_hold(conds_x, star, signs, cell, keep_var, ops):
            continue
        if conds_y and not _exists_on_stack(conds_y, keep_var, drop_var, cell):
            continue
        conj = tuple(
            _sign_to_cond(poly, sign) for poly, sign in zip(star, signs)
        )
        result.append(conj)
    return dedup(result)


def _x_conditions_hold(
    conds_x: Sequence[SignCond],
    star: list[Polynomial],
    star_signs: list[int],
    cell: LineCell,
    keep_var: str,
    ops: _FieldOps,
) -> bool:
    lookup = {poly: sign for poly, sign in zip(star, star_signs)}
    for cond in conds_x:
        primitive = cond.poly.primitive()
        sign = lookup.get(primitive)
        if sign is None:
            upoly = poly_to_upoly(primitive, keep_var)
            sign = cell_sign(ops, upoly, cell)
        # correct for the positive-scaling sign flip done by primitive()
        _, lead = cond.poly.leading_term()
        if lead < 0:
            sign = -sign
        if not cond.check_sign(sign):
            return False
    return True


def _sign_to_cond(poly: Polynomial, sign: int) -> SignCond:
    if sign == 0:
        return SignCond(poly, "=")
    if sign < 0:
        return SignCond(poly, "<")
    return SignCond(-poly, "<")


def _decide_univariate(conds: Sequence[SignCond], var: str) -> bool:
    """Decide ``exists var . conjunction`` for a univariate conjunction."""
    upolys = []
    for cond in conds:
        upolys.append(poly_to_upoly(cond.poly, var))
    ops = _FieldOps(QQ)
    cells = decompose_line([p for p in upolys if p.degree() >= 1], QQ)
    for cell in cells:
        if all(
            cond.check_sign(
                QQ.sign(poly.eval(cell.rational_sample))
                if cell.kind == "interval"
                else ops.sign_at_root(poly, cell.host, cell.interval)
            )
            for cond, poly in zip(conds, upolys)
        ):
            return True
    return False


def cad_satisfiable(conds: Sequence[SignCond]) -> bool:
    """Satisfiability of a conjunction in at most two variables."""
    variables = set()
    for cond in conds:
        variables |= cond.poly.variables()
    if not variables:
        return all(cond.evaluate({}) for cond in conds)
    order = sorted(variables)
    if len(order) == 1:
        return _decide_univariate(conds, order[0])
    if len(order) > 2:
        raise UnsupportedEliminationError(
            f"CAD satisfiability supports at most two variables, got {order}"
        )
    first, second = order
    dnf = cad_eliminate(conds, second)
    for conj in dnf:
        if not conj:
            return True
        if _decide_univariate(conj, first):
            return True
    return False
