"""Virtual substitution quantifier elimination (Loos-Weispfenning).

Eliminates ``exists x`` from a conjunction of polynomial sign conditions in
which every atom has degree at most 2 in ``x`` -- with *parametric*
(polynomial) coefficients, which is what the paper's geometry examples need:
in the convex-hull query the quantified triangle coordinates appear
quadratically, and in object-intersection queries the coefficients of the
quantified point coordinates are other variables.

Method: the satisfying set for x, given the parameters, is a finite union of
intervals whose endpoints are roots of the atoms' polynomials.  It therefore
suffices to test finitely many symbolic sample points:

* ``-infinity``;
* the roots ``-b/a`` (linear) and ``(-b +/- sqrt(b^2-4ac)) / 2a`` (quadratic)
  of every atom, guarded by the root's existence condition (closed-endpoint
  atoms ``=``/``<=`` use the root itself);
* the same roots shifted by a positive infinitesimal ``+epsilon`` for atoms
  providing open endpoints (ops ``<``/``!=``).

Substituting such non-standard points into an atom is *virtual*: it expands
into a quantifier-free formula over the parameters, via the classical rules
for fractions, square-root expressions ``A + T sqrt(w) op 0``, limits at
``-infinity`` (leading-coefficient sign recursion) and infinitesimals
(derivative recursion).  The result is the disjunction over all sample
points, a DNF of sign conditions in the remaining variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import UnsupportedEliminationError
from repro.poly.polynomial import Polynomial
from repro.qe.signs import (
    DNF_FALSE,
    DNF_TRUE,
    Dnf,
    SignCond,
    dnf_and,
    dnf_or,
    dnf_single,
)
from repro.runtime.budget import tick

MINUS_INFINITY = "minus_infinity"


@dataclass(frozen=True)
class _FracPoint:
    """The symbolic point ``numerator / denominator`` (denominator nonzero)."""

    numerator: Polynomial
    denominator: Polynomial


@dataclass(frozen=True)
class _RootExpr:
    """The symbolic point ``(u + sigma * sqrt(w)) / v`` with v nonzero, w >= 0."""

    u: Polynomial
    v: Polynomial
    w: Polynomial
    sigma: int  # +1 or -1


@dataclass(frozen=True)
class _Candidate:
    """A sample point with its guard and an optional infinitesimal shift."""

    point: object  # _FracPoint | _RootExpr | MINUS_INFINITY
    guard: tuple[tuple[SignCond, ...], ...]
    epsilon: bool


def vs_eliminate(conds: Sequence[SignCond], var: str) -> Dnf:
    """``exists var . conjunction`` as a DNF over the remaining variables.

    Raises :class:`UnsupportedEliminationError` if some atom has degree > 2
    in ``var``.
    """
    with_var = [c for c in conds if var in c.poly.variables()]
    without_var = tuple(c for c in conds if var not in c.poly.variables())
    if not with_var:
        return [without_var]
    for cond in with_var:
        if cond.poly.degree_in(var) > 2:
            raise UnsupportedEliminationError(
                f"{cond.poly} has degree > 2 in {var}: outside the virtual "
                "substitution fragment (see DESIGN.md section 4)"
            )
    branches: list[Dnf] = []
    for candidate in _elimination_set(with_var, var):
        tick("qe_step")
        parts: list[Dnf] = [list(candidate.guard)]
        for cond in with_var:
            parts.append(_substitute(cond, var, candidate))
        branches.append(dnf_and(*parts))
    result = dnf_or(*branches)
    if not result:
        return DNF_FALSE
    return dnf_and(result, [without_var])


def _elimination_set(conds: Sequence[SignCond], var: str) -> list[_Candidate]:
    candidates: list[_Candidate] = [
        _Candidate(MINUS_INFINITY, tuple(DNF_TRUE), epsilon=False)
    ]
    for cond in conds:
        coeffs = cond.poly.coefficients_in(var)
        while len(coeffs) < 3:
            coeffs.append(Polynomial.zero())
        c, b, a = coeffs[0], coeffs[1], coeffs[2]
        shift = cond.op in ("<", "!=")
        if not a.is_zero():
            # quadratic roots, guarded by a != 0 and discriminant >= 0
            disc = b * b - a * c * 4
            guard = dnf_and(
                dnf_single(SignCond(a, "!=")), dnf_single(SignCond(-disc, "<="))
            )
            for sigma in (1, -1):
                root = _RootExpr(u=-b, v=a * 2, w=disc, sigma=sigma)
                candidates.append(_Candidate(root, tuple(guard), epsilon=shift))
            # degenerate linear case: a = 0, b != 0
            guard_linear = dnf_and(
                dnf_single(SignCond(a, "=")), dnf_single(SignCond(b, "!="))
            )
            candidates.append(
                _Candidate(_FracPoint(-c, b), tuple(guard_linear), epsilon=shift)
            )
        elif not b.is_zero():
            guard = dnf_single(SignCond(b, "!="))
            candidates.append(
                _Candidate(_FracPoint(-c, b), tuple(guard), epsilon=shift)
            )
        # a == b == 0 identically: the atom does not constrain var; the
        # -infinity candidate covers it
    return candidates


# --------------------------------------------------------------- substitution
def _substitute(cond: SignCond, var: str, candidate: _Candidate) -> Dnf:
    """The quantifier-free DNF of ``cond[var // candidate]``."""
    if candidate.point == MINUS_INFINITY:
        return _subst_minus_infinity(cond.poly, cond.op, var)
    if candidate.epsilon:
        return _subst_epsilon(cond.poly, cond.op, var, candidate.point)
    return _subst_point(cond.poly, cond.op, var, candidate.point)


def _subst_point(poly: Polynomial, op: str, var: str, point: object) -> Dnf:
    if isinstance(point, _FracPoint):
        return _subst_fraction(poly, op, var, point)
    assert isinstance(point, _RootExpr)
    return _subst_root(poly, op, var, point)


def _subst_fraction(poly: Polynomial, op: str, var: str, point: _FracPoint) -> Dnf:
    """``poly(num/den) op 0`` given ``den != 0``."""
    coeffs = poly.coefficients_in(var)
    degree = len(coeffs) - 1
    # q = den^degree * poly(num/den) is a polynomial
    q = Polynomial.zero()
    num_power = Polynomial.one()
    for i, coeff in enumerate(coeffs):
        den_power = point.denominator ** (degree - i)
        q = q + coeff * num_power * den_power
        num_power = num_power * point.numerator
    if op in ("=", "!="):
        return dnf_single(SignCond(q, op))
    if degree % 2 == 0:
        return dnf_single(SignCond(q, op))
    # odd degree: the sign of den^degree matters
    return dnf_single(SignCond(q * point.denominator, op))


def _subst_root(poly: Polynomial, op: str, var: str, point: _RootExpr) -> Dnf:
    """``poly((u + sigma sqrt(w)) / v) op 0`` given ``v != 0`` and ``w >= 0``.

    The value times ``v^degree`` has the form ``A + T sqrt(w)``; the classical
    case analyses reduce each comparison to polynomial conditions in A, T, w.
    """
    coeffs = poly.coefficients_in(var)
    degree = len(coeffs) - 1
    # expand (u + sigma sqrt w)^i = P_i + sigma * Q_i * sqrt(w)
    a_part = Polynomial.zero()
    t_part = Polynomial.zero()
    p_i = Polynomial.one()
    q_i = Polynomial.zero()
    for i, coeff in enumerate(coeffs):
        den_power = point.v ** (degree - i)
        a_part = a_part + coeff * p_i * den_power
        t_part = t_part + coeff * q_i * den_power
        # multiply (P + sigma Q sqrt w) by (u + sigma sqrt w):
        #   new P = P u + Q w     (sigma^2 = 1)
        #   new Q = P + Q u
        p_i, q_i = p_i * point.u + q_i * point.w, p_i + q_i * point.u
    if point.sigma < 0:
        t_part = -t_part
    # correct the sign of v^degree for order comparisons
    if op in ("<", "<=") and degree % 2 == 1:
        a_part = a_part * point.v
        t_part = t_part * point.v
    return _sqrt_compare(a_part, t_part, point.w, op)


def _sqrt_compare(a: Polynomial, t: Polynomial, w: Polynomial, op: str) -> Dnf:
    """Conditions for ``A + T sqrt(w) op 0`` assuming ``w >= 0``.

    Derivations (with s = sqrt(w) >= 0):

    * ``= 0``: ``A T <= 0  and  A^2 - T^2 w = 0``
    * ``< 0``: ``(A < 0 and (T <= 0 or T^2 w < A^2))
                or (T < 0 and 0 <= A and A^2 < T^2 w)``
    * ``<= 0``, ``!= 0``: by composition/negation of the above.
    """
    a_sq_minus = a * a - t * t * w  # A^2 - T^2 w
    if op == "=":
        return dnf_and(
            dnf_single(SignCond(a * t, "<=")),
            dnf_single(SignCond(a_sq_minus, "=")),
        )
    if op == "!=":
        return dnf_or(
            dnf_single(SignCond(-(a * t), "<")),
            dnf_single(SignCond(a_sq_minus, "!=")),
        )
    less = dnf_or(
        dnf_and(
            dnf_single(SignCond(a, "<")),
            dnf_or(
                dnf_single(SignCond(t, "<=")),
                dnf_single(SignCond(-a_sq_minus, "<")),
            ),
        ),
        dnf_and(
            dnf_single(SignCond(t, "<")),
            dnf_single(SignCond(-a, "<=")),
            dnf_single(SignCond(a_sq_minus, "<")),
        ),
    )
    if op == "<":
        return less
    equal = dnf_and(
        dnf_single(SignCond(a * t, "<=")),
        dnf_single(SignCond(a_sq_minus, "=")),
    )
    return dnf_or(less, equal)


def _subst_minus_infinity(poly: Polynomial, op: str, var: str) -> Dnf:
    """``poly(-infinity) op 0``: leading-sign recursion over the coefficients."""
    coeffs = poly.coefficients_in(var)
    if op == "=":
        return dnf_and(*[dnf_single(SignCond(c, "=")) for c in coeffs])
    if op == "!=":
        return dnf_or(*[dnf_single(SignCond(c, "!=")) for c in coeffs])
    strict = _minus_infinity_negative(coeffs)
    if op == "<":
        return strict
    zero = dnf_and(*[dnf_single(SignCond(c, "=")) for c in coeffs])
    return dnf_or(strict, zero)


def _minus_infinity_negative(coeffs: list[Polynomial]) -> Dnf:
    """``sum coeffs[i] x^i  < 0`` as x -> -infinity."""
    if not coeffs:
        return DNF_FALSE
    degree = len(coeffs) - 1
    lead = coeffs[-1]
    # sign at -infinity is sign(lead) * (-1)^degree
    oriented = -lead if degree % 2 == 1 else lead
    head = dnf_single(SignCond(oriented, "<"))
    if degree == 0:
        return head
    tail = dnf_and(
        dnf_single(SignCond(lead, "=")), _minus_infinity_negative(coeffs[:-1])
    )
    return dnf_or(head, tail)


def _subst_epsilon(poly: Polynomial, op: str, var: str, point: object) -> Dnf:
    """``poly(point + epsilon) op 0`` for a positive infinitesimal epsilon."""
    if op == "=":
        # zero in a right neighbourhood iff identically zero in var
        coeffs = poly.coefficients_in(var)
        return dnf_and(*[dnf_single(SignCond(c, "=")) for c in coeffs])
    if op == "!=":
        coeffs = poly.coefficients_in(var)
        return dnf_or(*[dnf_single(SignCond(c, "!=")) for c in coeffs])
    strict = _epsilon_negative(poly, var, point)
    if op == "<":
        return strict
    coeffs = poly.coefficients_in(var)
    zero = dnf_and(*[dnf_single(SignCond(c, "=")) for c in coeffs])
    return dnf_or(strict, zero)


def _epsilon_negative(poly: Polynomial, var: str, point: object) -> Dnf:
    """``poly(point + epsilon) < 0``: derivative recursion.

    ``p(t + eps) < 0  iff  p(t) < 0  or  (p(t) = 0 and p'(t + eps) < 0)``.
    """
    if var not in poly.variables():
        return dnf_single(SignCond(poly, "<"))
    at_point = _subst_point(poly, "<", var, point)
    at_point_zero = _subst_point(poly, "=", var, point)
    derivative = poly.derivative(var)
    if derivative.is_zero():
        return at_point
    return dnf_or(
        at_point, dnf_and(at_point_zero, _epsilon_negative(derivative, var, point))
    )
