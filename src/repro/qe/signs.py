"""Polynomial sign conditions and DNF algebra shared by the QE engines.

A *sign condition* is ``p op 0`` with ``op`` one of ``=, !=, <, <=`` -- the
normalized form of a real polynomial inequality constraint (Definition
1.2.1).  The QE engines (Fourier-Motzkin, virtual substitution, CAD) operate
on conjunctions and DNFs of sign conditions; the
:class:`~repro.constraints.real_poly.RealPolynomialTheory` converts between
these and its atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.poly.polynomial import Polynomial

OPS = ("=", "!=", "<", "<=")


@dataclass(frozen=True, slots=True)
class SignCond:
    """The condition ``poly op 0``."""

    poly: Polynomial
    op: str

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"bad sign-condition operator {self.op!r}")

    def evaluate(self, assignment) -> bool:
        value = self.poly.evaluate(assignment)
        if self.op == "=":
            return value == 0
        if self.op == "!=":
            return value != 0
        if self.op == "<":
            return value < 0
        return value <= 0

    def check_sign(self, sign: int) -> bool:
        """Whether a point where ``poly`` has the given sign satisfies the condition."""
        if self.op == "=":
            return sign == 0
        if self.op == "!=":
            return sign != 0
        if self.op == "<":
            return sign < 0
        return sign <= 0

    def __str__(self) -> str:
        return f"{self.poly} {self.op} 0"


def sign_cond(poly: Polynomial, op: str) -> "SignCond":
    """Build ``poly op 0`` accepting also ``>``/``>=`` (stored negated)."""
    if op == ">":
        return SignCond(-poly, "<")
    if op == ">=":
        return SignCond(-poly, "<=")
    return SignCond(poly, op)


def negate_cond(cond: SignCond) -> SignCond:
    """The negation of a sign condition (always again a single condition):
    ``not (p = 0)`` is ``p != 0``, ``not (p < 0)`` is ``-p <= 0``, etc."""
    if cond.op == "=":
        return SignCond(cond.poly, "!=")
    if cond.op == "!=":
        return SignCond(cond.poly, "=")
    if cond.op == "<":
        return SignCond(-cond.poly, "<=")
    return SignCond(-cond.poly, "<")


# --------------------------------------------------------------------- DNF
#: a conjunction of sign conditions
Conj = tuple[SignCond, ...]
#: a disjunction of conjunctions; [] is false, [()] is true
Dnf = list[Conj]

DNF_TRUE: Dnf = [()]
DNF_FALSE: Dnf = []


def dnf_and(*parts: Dnf) -> Dnf:
    """Conjunction of DNFs by distribution, with ground simplification."""
    result: Dnf = DNF_TRUE
    for part in parts:
        next_result: Dnf = []
        for left in result:
            for right in part:
                merged = simplify_conj(left + right)
                if merged is not None:
                    next_result.append(merged)
        result = next_result
        if not result:
            return DNF_FALSE
    return dedup(result)


def dnf_or(*parts: Dnf) -> Dnf:
    """Disjunction of DNFs (concatenation with dedup)."""
    merged: Dnf = []
    for part in parts:
        merged.extend(part)
    return dedup(merged)


def dnf_single(cond: SignCond) -> Dnf:
    simplified = simplify_conj((cond,))
    return DNF_FALSE if simplified is None else [simplified]


def simplify_conj(conds: Sequence[SignCond]) -> Conj | None:
    """Drop trivially-true conditions; return None on a trivially-false one.

    Only *ground* (constant-polynomial) conditions are decided here; real
    satisfiability is the theory's job.
    """
    kept: list[SignCond] = []
    seen: set[SignCond] = set()
    for cond in conds:
        if cond.poly.is_constant():
            if not cond.check_sign(_fraction_sign(cond.poly.constant_value())):
                return None
            continue
        if cond not in seen:
            seen.add(cond)
            kept.append(cond)
    return tuple(kept)


def dedup(dnf: Dnf) -> Dnf:
    seen: set[frozenset[SignCond]] = set()
    result: Dnf = []
    for conj in dnf:
        key = frozenset(conj)
        if key not in seen:
            seen.add(key)
            result.append(conj)
    return result


def conj_holds(conds: Iterable[SignCond], assignment) -> bool:
    return all(cond.evaluate(assignment) for cond in conds)


def dnf_holds(dnf: Dnf, assignment) -> bool:
    return any(conj_holds(conj, assignment) for conj in dnf)


def _fraction_sign(value: Fraction) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0
