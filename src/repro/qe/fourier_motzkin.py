"""Fourier-Motzkin elimination for constraints linear in the eliminated variable.

The classical method (and the special case the paper's Section 6 singles out
as worth investigating: "linear inequality constraints should be investigated
in a CQL framework").  Requires the coefficient of the eliminated variable to
be a *rational constant* in every atom; parametric coefficients are handled
by virtual substitution instead.

Disequalities ``p != 0`` are split into ``p < 0 or p > 0`` branches first, so
the output is a DNF.  Equalities are substituted away (Gaussian step) before
any bound combination.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import UnsupportedEliminationError
from repro.poly.polynomial import Polynomial
from repro.qe.signs import Conj, Dnf, SignCond, dedup, simplify_conj
from repro.runtime.budget import tick


class FMNotApplicableError(UnsupportedEliminationError):
    """The conjunction is outside the Fourier-Motzkin fragment."""


def fourier_motzkin_eliminate(conds: Sequence[SignCond], var: str) -> Dnf:
    """``exists var . conjunction`` as a DNF of sign conditions.

    Raises :class:`FMNotApplicableError` when some atom is nonlinear in
    ``var`` or has a non-constant coefficient on ``var``.
    """
    branches = _split_disequalities(conds, var)
    result: Dnf = []
    for branch in branches:
        tick("qe_step")
        eliminated = _eliminate_branch(branch, var)
        if eliminated is not None:
            result.append(eliminated)
    return dedup(result)


def _split_disequalities(conds: Sequence[SignCond], var: str) -> list[list[SignCond]]:
    """Rewrite each ``p != 0`` involving ``var`` into two strict branches."""
    branches: list[list[SignCond]] = [[]]
    for cond in conds:
        if cond.op == "!=" and var in cond.poly.variables():
            lower = SignCond(cond.poly, "<")
            upper = SignCond(-cond.poly, "<")
            branches = [b + [lower] for b in branches] + [
                b + [upper] for b in branches
            ]
        else:
            for branch in branches:
                branch.append(cond)
    return branches


def _coefficient_split(
    poly: Polynomial, var: str
) -> tuple[Fraction, Polynomial]:
    """``poly = a * var + rest``; raises if not of that shape with constant a."""
    coeffs = poly.coefficients_in(var)
    if len(coeffs) > 2:
        raise FMNotApplicableError(
            f"{poly} is nonlinear in {var}; use virtual substitution or CAD"
        )
    rest = coeffs[0] if coeffs else Polynomial.zero()
    lead = coeffs[1] if len(coeffs) == 2 else Polynomial.zero()
    if not lead.is_constant():
        raise FMNotApplicableError(
            f"{poly} has parametric coefficient {lead} on {var}; "
            "use virtual substitution"
        )
    return lead.constant_value() if not lead.is_zero() else Fraction(0), rest


def _eliminate_branch(conds: list[SignCond], var: str) -> Conj | None:
    """Eliminate ``var`` from a !=-free branch; None if trivially false."""
    relevant: list[tuple[SignCond, Fraction, Polynomial]] = []
    kept: list[SignCond] = []
    for cond in conds:
        if var not in cond.poly.variables():
            kept.append(cond)
            continue
        coeff, rest = _coefficient_split(cond.poly, var)
        if coeff == 0:
            kept.append(cond)
            continue
        relevant.append((cond, coeff, rest))
    # Gaussian step: substitute an equality if one exists
    for cond, coeff, rest in relevant:
        if cond.op == "=":
            # var = -rest / coeff
            replacement = rest / (-coeff)
            substituted = list(kept)
            for other, other_coeff, other_rest in relevant:
                if other is cond:
                    continue
                new_poly = other_rest + replacement.scale(other_coeff)
                substituted.append(SignCond(new_poly, other.op))
            return simplify_conj(substituted)
    # pure inequalities: combine lower and upper bounds
    lowers: list[tuple[Polynomial, bool]] = []  # (bound_value_numerator over ...)
    uppers: list[tuple[Polynomial, bool]] = []
    for cond, coeff, rest in relevant:
        strict = cond.op == "<"
        # coeff * var + rest (op) 0
        if coeff > 0:
            # var (op) -rest/coeff : upper bound -rest/coeff
            uppers.append((rest / (-coeff), strict))
        else:
            lowers.append((rest / (-coeff), strict))
    combined = list(kept)
    for low, low_strict in lowers:
        for high, high_strict in uppers:
            op = "<" if (low_strict or high_strict) else "<="
            combined.append(SignCond(low - high, op))
    return simplify_conj(combined)
