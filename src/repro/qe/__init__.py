"""Quantifier elimination engines.

Quantifier elimination is what makes CQL queries evaluable in closed form
(Section 1.1): projection of a generalized relation is elimination of an
existential quantifier.  Engines provided:

* dense-order and equality elimination live on their theory objects
  (:mod:`repro.constraints.dense_order`, :mod:`repro.constraints.equality`);
* :mod:`repro.qe.fourier_motzkin` -- classical Fourier-Motzkin for
  constraints linear (with rational coefficients) in the eliminated variable;
* :mod:`repro.qe.virtual_substitution` -- Loos-Weispfenning virtual
  substitution for constraints of degree <= 2 in the eliminated variable,
  with polynomial parametric coefficients;
* :mod:`repro.qe.cad` -- a complete cylindrical algebraic decomposition for
  formulas in at most two variables, with exact algebraic sample points;
* Boole's elimination lemma for the boolean theory lives in
  :mod:`repro.boolean_algebra`.
"""

from repro.qe.fourier_motzkin import fourier_motzkin_eliminate
from repro.qe.virtual_substitution import vs_eliminate

__all__ = ["fourier_motzkin_eliminate", "vs_eliminate"]
