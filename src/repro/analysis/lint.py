"""``python -m repro lint`` -- the cqlint command-line front end.

Lints textual CQL programs and conformance-corpus JSON cases::

    python -m repro lint examples/programs/*.cql
    python -m repro lint tests/conformance/corpus/*.json --json
    python -m repro lint examples/programs --stats

Textual programs use the :mod:`repro.logic.parser` syntax plus ``#`` comment
lines carrying directives:

.. code-block:: text

    # theory: dense_order          (dense_order | equality | real_poly)
    # kind: datalog                (datalog | calculus; default datalog)
    # target: T                    (enables the unused-predicate check)
    # output: x, y                 (calculus output schema)
    # relation: E/2                (declare an EDB arity for cross-checking)
    # budget: declared             (run under a resource budget; no CQL031)
    # cqlint: allow(CQL010, CQL020)  (suppress codes; still reported)
    T(x, y) :- E(x, y).
    T(x, y) :- T(x, z), E(z, y).

JSON files are conformance artifacts (``{"spec": ...}``) or bare case specs.
Directories are walked for ``*.cql``/``*.dl``/``*.json`` files.

Exit status: 1 when any file has unsuppressed error diagnostics (or, with
``--strict``, warnings), else 0.  ``--json`` prints one round-trippable
document; ``--stats`` appends per-pass timing and diagnostic counts and
records them through :mod:`repro.harness.benchjson` (the ``lint_stats``
record of ``BENCH_datalog.json``).

``--semantic`` additionally runs the containment-based optimizer
(:mod:`repro.analysis.semantic`) in report-only mode, surfacing CQL040-range
rewrite opportunities as info diagnostics.  ``--fix`` (implies
``--semantic``) rewrites textual ``.cql``/``.dl`` datalog programs in place
with the minimized rule set -- comment and directive lines are preserved,
and the file is only overwritten when the rendered program re-parses to the
minimized rules (round-trip safety).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import Counter
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.analyzer import analyze_formula, analyze_program
from repro.analysis.diagnostics import CODES, Diagnostic, ProgramReport
from repro.constraints.base import ConstraintTheory
from repro.errors import ArityError, EvaluationError, ParseError, ReproError

#: theory factories for the ``# theory:`` directive (textual programs only;
#: the boolean theory has no textual syntax)
_TEXT_THEORIES = ("dense_order", "equality", "real_poly")

_ALLOW_RE = re.compile(r"allow\(([^)]*)\)")
_SUFFIXES = (".cql", ".dl", ".json")


def _build_text_theory(name: str) -> ConstraintTheory:
    from repro.constraints.dense_order import DenseOrderTheory
    from repro.constraints.equality import EqualityTheory
    from repro.constraints.real_poly import RealPolynomialTheory

    factories = {
        "dense_order": DenseOrderTheory,
        "equality": EqualityTheory,
        "real_poly": RealPolynomialTheory,
    }
    return factories[name]()


class _Directives:
    """Parsed ``#`` directives of one textual program."""

    def __init__(self) -> None:
        self.theory = "dense_order"
        self.kind = "datalog"
        self.target: str | None = None
        self.output: tuple[str, ...] | None = None
        self.relations: dict[str, int] = {}
        self.allow: set[str] = set()
        self.budget_declared = False


def _strip_comments(text: str) -> tuple[str, _Directives]:
    """Remove ``#`` comments, collecting directives along the way."""
    directives = _Directives()
    kept: list[str] = []
    for line in text.splitlines():
        code, _, comment = line.partition("#")
        comment = comment.strip()
        if comment:
            _apply_directive(comment, directives)
        kept.append(code)
    return "\n".join(kept), directives


def _apply_directive(comment: str, directives: _Directives) -> None:
    key, _, value = comment.partition(":")
    key = key.strip().lower()
    value = value.strip()
    if key == "theory" and value in _TEXT_THEORIES:
        directives.theory = value
    elif key == "kind" and value in ("datalog", "calculus"):
        directives.kind = value
    elif key == "target" and value:
        directives.target = value
    elif key == "output" and value:
        directives.output = tuple(v.strip() for v in value.split(",") if v.strip())
    elif key == "relation" and "/" in value:
        name, _, arity = value.partition("/")
        try:
            directives.relations[name.strip()] = int(arity)
        except ValueError:
            pass
    elif key == "budget":
        # "# budget: declared" (any non-empty value): the program is run
        # under an explicit resource budget, so CQL031 does not apply
        directives.budget_declared = bool(value)
    elif key == "cqlint":
        for match in _ALLOW_RE.finditer(value):
            for code in match.group(1).split(","):
                code = code.strip().upper()
                if code in CODES:
                    directives.allow.add(code)


def _error_report(theory: str, kind: str, diagnostic: Diagnostic) -> ProgramReport:
    return ProgramReport(
        theory=theory, kind=kind, num_rules=0, diagnostics=[diagnostic]
    )


def lint_text(text: str, *, semantic: bool = False) -> ProgramReport:
    """Lint one textual program (see module docstring for the syntax)."""
    from repro.logic.parser import parse_query, parse_rules

    stripped, directives = _strip_comments(text)
    theory = _build_text_theory(directives.theory)
    try:
        if directives.kind == "calculus":
            formula = parse_query(stripped, theory=theory)
            return analyze_formula(
                formula,
                theory,
                output=directives.output,
                edb_schemas=directives.relations or None,
                suppress=directives.allow,
                budget_declared=directives.budget_declared,
            )
        rules = parse_rules(stripped, theory=theory)
    except ParseError as error:
        return _error_report(
            directives.theory,
            directives.kind,
            Diagnostic("CQL000", str(error)),
        )
    except EvaluationError as error:
        # Rule's constructor guard: a head variable missing from the body
        return _error_report(
            directives.theory,
            directives.kind,
            Diagnostic("CQL001", str(error)),
        )
    except ArityError as error:
        return _error_report(
            directives.theory,
            directives.kind,
            Diagnostic("CQL002", str(error)),
        )
    return analyze_program(
        rules,
        theory,
        target=directives.target,
        edb_schemas=directives.relations or None,
        suppress=directives.allow,
        budget_declared=directives.budget_declared,
        semantic=semantic,
    )


def _render_literal(literal: Any) -> str:
    """Render one body literal in parser syntax.

    ``Not.__str__`` emits ``not (B(x))``, which the parser rejects; the
    parser wants ``not B(x)``.
    """
    from repro.logic.syntax import Not

    if isinstance(literal, Not):
        return f"not {literal.child}"
    return str(literal)


def _render_rule(rule: Any) -> str:
    head = str(rule.head)
    if not rule.body:
        return f"{head}."
    return f"{head} :- {', '.join(_render_literal(lit) for lit in rule.body)}."


def fix_text(text: str) -> str | None:
    """Minimize a textual datalog program; None when nothing changes.

    Runs :func:`repro.analysis.semantic.optimize_program` over the parsed
    rules and re-renders the file: full-line comments (directives included)
    are preserved in order, rule lines are replaced by the minimized rule
    set.  The rewritten text is re-parsed before being returned -- if the
    rendering does not round-trip (count or structure mismatch), the fix is
    abandoned and None is returned, leaving the file untouched.
    """
    from repro.analysis.semantic import optimize_program
    from repro.logic.parser import parse_rules

    stripped, directives = _strip_comments(text)
    if directives.kind != "datalog":
        return None
    theory = _build_text_theory(directives.theory)
    try:
        rules = parse_rules(stripped, theory=theory)
    except ReproError:
        return None
    result = optimize_program(rules, theory)
    if not result.changed:
        return None
    comments = [
        line for line in text.splitlines() if line.lstrip().startswith("#")
    ]
    rendered = [_render_rule(rule) for rule in result.rules]
    lines = comments + [""] + rendered if comments else rendered
    new_text = "\n".join(lines) + "\n"
    try:
        reparsed = parse_rules(_strip_comments(new_text)[0], theory=theory)
    except ReproError:
        return None
    if [str(r) for r in reparsed] != [str(r) for r in result.rules]:
        return None
    return new_text


def lint_spec_dict(data: dict[str, Any]) -> ProgramReport:
    """Lint a conformance case-spec dictionary (or ``{"spec": ...}``)."""
    from repro.conformance.spec import (
        CaseSpec,
        build_theory,
        decode_formula,
        decode_rule,
    )

    if "spec" in data and isinstance(data["spec"], dict):
        data = data["spec"]
    spec = CaseSpec.from_dict(data)
    theory = build_theory(spec)
    edb_schemas = {
        name: len(variables) for name, variables, _tuples in spec.relations
    }
    if spec.kind == "datalog":
        rules = [decode_rule(r, theory) for r in spec.rules]
        return analyze_program(
            rules, theory, target=spec.target, edb_schemas=edb_schemas
        )
    formula = decode_formula(spec.query, theory)
    return analyze_formula(
        formula, theory, output=spec.output, edb_schemas=edb_schemas
    )


def lint_path(path: Path, *, semantic: bool = False) -> ProgramReport:
    """Lint one file, dispatching on its suffix."""
    if path.suffix == ".json":
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            return _error_report(
                "unknown", "datalog", Diagnostic("CQL000", f"bad JSON: {error}")
            )
        try:
            return lint_spec_dict(data)
        except ReproError as error:
            return _error_report(
                "unknown", "datalog", Diagnostic("CQL000", str(error))
            )
    return lint_text(path.read_text(), semantic=semantic)


def _collect(paths: Sequence[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*"))
                if p.suffix in _SUFFIXES and p.is_file()
            )
        else:
            files.append(path)
    return files


def _render_text(path: Path, report: ProgramReport, verbose: bool) -> list[str]:
    classification = (
        f"class={report.complexity_class} ({report.theorem})"
        if report.complexity_class
        else "class=?"
    )
    lines = [
        f"{path}: theory={report.theory} kind={report.kind} "
        f"rules={report.num_rules} {classification} -- "
        f"{len(report.errors(include_suppressed=True))} error(s), "
        f"{len(report.warnings(include_suppressed=True))} warning(s)"
    ]
    for diagnostic in report.diagnostics:
        if diagnostic.severity == "info" and not verbose:
            continue
        lines.append(f"  {diagnostic.render()}")
        if diagnostic.hint and verbose:
            lines.append(f"    hint: {diagnostic.hint}")
    return lines


def _stats_payload(
    reports: list[tuple[Path, ProgramReport]]
) -> dict[str, Any]:
    timings: Counter = Counter()
    counts: Counter = Counter()
    severities: Counter = Counter()
    for _path, report in reports:
        for name, seconds in report.pass_timings.items():
            timings[name] += seconds
        for diagnostic in report.diagnostics:
            counts[diagnostic.code] += 1
            severities[diagnostic.severity] += 1
    return {
        "files": len(reports),
        "pass_seconds": {name: round(timings[name], 6) for name in sorted(timings)},
        "total_seconds": round(sum(timings.values()), 6),
        "diagnostics_by_code": {code: counts[code] for code in sorted(counts)},
        "diagnostics_by_severity": dict(severities),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="cqlint: static analysis of constraint query programs "
        "(safety, stratification, closure, dead rules, complexity class).",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="program files (.cql/.dl), case specs (.json), or directories",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report document"
    )
    parser.add_argument(
        "--strict", action="store_true", help="warnings also fail the run"
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-pass timing / diagnostic counts and record them "
        "via repro.harness.benchjson",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="show info diagnostics and hints"
    )
    parser.add_argument(
        "--semantic",
        action="store_true",
        help="also run the containment-based optimizer (CQL040-range "
        "rewrite opportunities as info diagnostics)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite textual .cql/.dl programs in place with the minimized "
        "rule set (implies --semantic; round-trip verified before writing)",
    )
    args = parser.parse_args(argv)
    semantic = args.semantic or args.fix

    files = _collect(args.paths)
    if not files:
        print("no lintable files found", file=sys.stderr)
        return 2
    fixed: list[Path] = []
    reports: list[tuple[Path, ProgramReport]] = []
    for path in files:
        if not path.exists():
            print(f"{path}: no such file", file=sys.stderr)
            return 2
        if args.fix and path.suffix in (".cql", ".dl"):
            new_text = fix_text(path.read_text())
            if new_text is not None:
                path.write_text(new_text)
                fixed.append(path)
        reports.append((path, lint_path(path, semantic=semantic)))

    failed = any(
        report.errors() or (args.strict and report.warnings())
        for _path, report in reports
    )
    stats = _stats_payload(reports) if args.stats else None

    if args.json:
        document = {
            "files": [
                {"path": str(path), "report": report.as_dict()}
                for path, report in reports
            ],
            "ok": not failed,
        }
        if stats is not None:
            document["stats"] = stats
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for path, report in reports:
            for line in _render_text(path, report, args.verbose):
                print(line)
        for path in fixed:
            print(f"{path}: rewritten with minimized rules")
        print(
            f"{len(reports)} file(s) linted: "
            + ("FAILED" if failed else "ok")
        )
        if stats is not None:
            print("per-pass seconds:")
            for name, seconds in stats["pass_seconds"].items():
                print(f"  {name}: {seconds}")
            print(f"diagnostics: {stats['diagnostics_by_code']}")
    if stats is not None:
        from repro.harness.benchjson import record_bench

        record_bench("lint_stats", stats)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
