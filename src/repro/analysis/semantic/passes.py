"""The semantic optimizer: containment-based whole-program rewrites.

Five passes, applied in a fixed order; every pass preserves the program's
fixpoint *exactly*, under all four evaluation semantics, because each one
preserves the immediate-consequence operator ``T_P`` pointwise on every
database state ``J`` (DESIGN.md §13 gives the per-pass argument):

1. **unsat-rule pruning** (CQL044) -- a rule whose constraint conjunction is
   provably unsatisfiable never fires, on any state;
2. **constraint tightening** (CQL042) -- each rule's constraint conjunction
   is replaced by the theory's canonical equivalent, hoisting the narrowing
   work the join would redo per firing to analysis time;
3. **redundant-literal elimination** (CQL041) -- a positive body atom whose
   removal yields a contained-equivalent rule is dropped (classic tableau
   minimization: removal only relaxes, so one containment check decides
   equivalence);
4. **rule subsumption** (CQL040) -- a rule contained in a sibling rule of
   the same head predicate contributes nothing to the union ``T_P`` and is
   removed;
5. **view answerability** (CQL043) -- when a predicate's rule set is
   containment-equivalent to a registered materialized view's definition,
   its rules are replaced by a copy rule reading the exported view relation.

Passes 3-5 rely on :func:`rule_contained_in` and therefore fire only for
theories with exact entailment (dense order, equality); pass 1 also covers
the boolean theory; every pass is a silent no-op for the real-polynomial
theory (containment undecided there, per ISSUE 8's soundness contract).
Rules carrying negation are never removed by containment and never serve as
containers, so no rewrite crosses a negation/stratum boundary.

Budget behavior: the containment search ticks the ambient meter; a
:class:`BudgetExceededError` aborts the *current* pass but keeps the
completed passes' (consistent) rewrites -- graceful degradation, never a
broken rule list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.semantic.containment import (
    CONTAINMENT_THEORIES,
    ContainmentWitness,
    RuleLike,
    TheoryLike,
    constraint_atoms,
    has_negation,
    positive_atoms,
    rule_contained_in,
    rule_unsatisfiable,
    rule_variables,
)
from repro.errors import BudgetExceededError, ReproError
from repro.logic.syntax import Atom, Not, RelationAtom


@dataclass
class SemanticStats:
    """Counters mirrored into ``EvaluationStats.semantic_*`` by the engine."""

    rules_subsumed: int = 0
    literals_eliminated: int = 0
    constraints_tightened: int = 0
    unsat_rules_removed: int = 0
    view_rewrites: int = 0
    containment_checks: int = 0
    containment_seconds: float = 0.0
    #: a pass aborted on a tripped budget (completed passes kept)
    budget_tripped: bool = False

    def as_dict(self) -> dict[str, object]:
        return {
            "rules_subsumed": self.rules_subsumed,
            "literals_eliminated": self.literals_eliminated,
            "constraints_tightened": self.constraints_tightened,
            "unsat_rules_removed": self.unsat_rules_removed,
            "view_rewrites": self.view_rewrites,
            "containment_checks": self.containment_checks,
            "containment_seconds": self.containment_seconds,
            "budget_tripped": self.budget_tripped,
        }


@dataclass(frozen=True)
class ViewDefinition:
    """A materialized view the optimizer may answer from.

    ``relation`` is the name the live materialization is exported under in
    the evaluation database; ``predicate`` is the IDB predicate the view's
    own program derives; ``rules`` is that program.  The caller owns the
    contract that ``relation`` holds the *fresh* fixpoint of ``rules`` over
    the same EDB the rewritten program will be evaluated against (the IVM
    registry in :mod:`repro.core.ivm` maintains exactly this).
    """

    relation: str
    predicate: str
    rules: tuple[RuleLike, ...]


@dataclass
class SemanticResult:
    """Outcome of :func:`optimize_program`.

    ``rules`` is the rewritten program (possibly the original objects);
    ``original`` the input; ``diagnostics`` one CQL04x record per rewrite;
    ``witnesses`` maps a diagnostic's index in ``diagnostics`` to the
    containment homomorphism justifying it, when one exists.
    """

    rules: list[RuleLike]
    original: tuple[RuleLike, ...]
    stats: SemanticStats = field(default_factory=SemanticStats)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    witnesses: dict[int, ContainmentWitness] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return (
            len(self.rules) != len(self.original)
            or any(a is not b for a, b in zip(self.rules, self.original))
        )


def _checked_containment(
    contained: RuleLike,
    container: RuleLike,
    theory: TheoryLike,
    stats: SemanticStats,
) -> ContainmentWitness | None:
    stats.containment_checks += 1
    started = time.perf_counter()
    try:
        return rule_contained_in(contained, container, theory)
    finally:
        stats.containment_seconds += time.perf_counter() - started


def _literal_variables(literal: object) -> frozenset[str]:
    if isinstance(literal, RelationAtom):
        return frozenset(literal.args)
    if isinstance(literal, Not):
        child = literal.child
        return frozenset(child.args) if isinstance(child, RelationAtom) else frozenset()
    if isinstance(literal, Atom):
        return literal.variables()
    return frozenset()


def _rebuild(rule: RuleLike, body: Sequence[object]) -> RuleLike:
    """A rule of the same concrete class with a new body.

    ``type(rule)(head, body)`` keeps this package import-independent of
    :mod:`repro.core.datalog` (the graph-module idiom).
    """
    return type(rule)(rule.head, tuple(body))


# ------------------------------------------------------------------- passes
def _prune_unsatisfiable(
    rules: list[RuleLike], theory: TheoryLike, result: SemanticResult
) -> list[RuleLike]:
    """Drop never-firing rules; a predicate always keeps at least one rule
    (the IDB relation must exist even when provably empty)."""
    remaining: dict[str, int] = {}
    for rule in rules:
        remaining[rule.head.name] = remaining.get(rule.head.name, 0) + 1
    kept: list[RuleLike] = []
    for index, rule in enumerate(rules):
        if remaining[rule.head.name] > 1 and rule_unsatisfiable(rule, theory):
            remaining[rule.head.name] -= 1
            result.stats.unsat_rules_removed += 1
            result.diagnostics.append(
                Diagnostic(
                    "CQL044",
                    f"rule {index} ({rule.head.name}) removed: its constraint "
                    "conjunction is unsatisfiable, so it can never fire",
                    rule_index=index,
                    predicate=rule.head.name,
                )
            )
        else:
            kept.append(rule)
    return kept


def _tighten_constraints(
    rules: list[RuleLike], theory: TheoryLike, result: SemanticResult
) -> list[RuleLike]:
    """Replace each rule's constraints with the theory's canonical form.

    Only for theories whose canonical forms are exact (the containment
    theories): there ``canonicalize`` returns an equivalent conjunction over
    the same solution set, so the rewritten rule fires on exactly the same
    joins.  Skipped per-rule when canonicalization would strand a head
    variable (a canonical form may drop a variable that turned out to be
    unconstrained -- semantically fine, structurally unsafe for the head).
    """
    if theory.name not in CONTAINMENT_THEORIES:
        return rules
    out: list[RuleLike] = []
    for index, rule in enumerate(rules):
        atoms = constraint_atoms(rule)
        if not atoms:
            out.append(rule)
            continue
        canonical = theory.canonicalize(tuple(atoms))  # type: ignore[attr-defined]
        if canonical is None or tuple(canonical) == tuple(atoms):
            out.append(rule)
            continue
        relational = [
            lit for lit in rule.body
            if not (isinstance(lit, Atom) and not isinstance(lit, RelationAtom))
        ]
        body = tuple(relational) + tuple(canonical)
        covered = set().union(*(_literal_variables(lit) for lit in body)) if body else set()
        if not set(rule.head.args) <= covered:
            out.append(rule)
            continue
        out.append(_rebuild(rule, body))
        result.stats.constraints_tightened += 1
        result.diagnostics.append(
            Diagnostic(
                "CQL042",
                f"rule {index} ({rule.head.name}): constraint conjunction "
                f"canonicalized from {len(atoms)} to {len(canonical)} atoms",
                rule_index=index,
                predicate=rule.head.name,
            )
        )
    return out


def _eliminate_literals(
    rules: list[RuleLike], theory: TheoryLike, result: SemanticResult
) -> list[RuleLike]:
    """Tableau minimization: drop body atoms whose removal keeps equivalence.

    Removing a positive atom only *relaxes* a rule (``r subseteq r'`` is
    automatic), so one containment check -- ``r' subseteq r``, homomorphism
    from ``r`` into ``r'`` -- decides equivalence.  Restricted to
    negation-free rules with at least two positive atoms; a removal that
    would strand a head variable is never attempted.
    """
    if theory.name not in CONTAINMENT_THEORIES:
        return rules
    out: list[RuleLike] = []
    for index, rule in enumerate(rules):
        if has_negation(rule):
            out.append(rule)
            continue
        current = rule
        removed: list[str] = []
        changed = True
        while changed:
            changed = False
            atoms = positive_atoms(current)
            if len(atoms) < 2:
                break
            for atom in atoms:
                body = list(current.body)
                body.remove(atom)
                covered: set[str] = set()
                for lit in body:
                    covered |= _literal_variables(lit)
                if not set(current.head.args) <= covered:
                    continue
                candidate = _rebuild(current, body)
                witness = _checked_containment(candidate, current, theory, result.stats)
                if witness is not None:
                    current = candidate
                    removed.append(str(atom))
                    changed = True
                    break
        if current is not rule:
            result.stats.literals_eliminated += len(removed)
            result.diagnostics.append(
                Diagnostic(
                    "CQL041",
                    f"rule {index} ({rule.head.name}): redundant body "
                    f"literal(s) {', '.join(removed)} eliminated "
                    f"(minimized body is contained-equivalent)",
                    rule_index=index,
                    predicate=rule.head.name,
                    atom=removed[0],
                )
            )
        out.append(current)
    return out


def _subsume_rules(
    rules: list[RuleLike], theory: TheoryLike, result: SemanticResult
) -> list[RuleLike]:
    """Remove rules contained in a kept sibling of the same head predicate.

    Candidates are visited longest-body-first so that of an *equivalent*
    pair the shorter rule survives; a rule is only removed against a rule
    that is itself still kept, so equivalence classes keep exactly one
    representative.  The last remaining rule of a predicate is never removed
    (the IDB relation must still be created even if provably empty).
    """
    if theory.name not in CONTAINMENT_THEORIES:
        return rules
    by_head: dict[str, list[int]] = {}
    for index, rule in enumerate(rules):
        by_head.setdefault(rule.head.name, []).append(index)
    dropped: dict[int, tuple[int, ContainmentWitness]] = {}
    for head, indices in by_head.items():
        if len(indices) < 2:
            continue
        order = sorted(
            indices, key=lambda i: (len(positive_atoms(rules[i])), -i), reverse=True
        )
        for i in order:
            kept_siblings = [j for j in indices if j != i and j not in dropped]
            if not kept_siblings:
                continue
            for j in kept_siblings:
                witness = _checked_containment(
                    rules[i], rules[j], theory, result.stats
                )
                if witness is not None:
                    dropped[i] = (j, witness)
                    break
    out: list[RuleLike] = []
    for index, rule in enumerate(rules):
        if index in dropped:
            j, witness = dropped[index]
            result.stats.rules_subsumed += 1
            result.diagnostics.append(
                Diagnostic(
                    "CQL040",
                    f"rule {index} ({rule.head.name}) subsumed by rule {j}: "
                    f"containment homomorphism {witness.describe()}",
                    rule_index=index,
                    predicate=rule.head.name,
                )
            )
            result.witnesses[len(result.diagnostics) - 1] = witness
        else:
            out.append(rule)
    return out


def _answer_from_views(
    rules: list[RuleLike],
    theory: TheoryLike,
    views: Mapping[str, ViewDefinition],
    result: SemanticResult,
) -> list[RuleLike]:
    """Rewrite a predicate to read a materialized view when equivalent.

    A predicate ``P`` qualifies when its rule set and a view's rule set
    (with the view predicate renamed to ``P``) are pairwise containment-
    equivalent: every rule of each side contained in some rule of the other.
    That makes the immediate-consequence operators equal on every state, so
    the fixpoints agree -- including for recursive definitions.  Guards: all
    rules on both sides negation-free; ``P``'s rules reference no other IDB
    predicate (the view was materialized over the EDB alone); the exported
    relation name must not collide with any predicate the program mentions.
    """
    if theory.name not in CONTAINMENT_THEORIES or not views:
        return rules
    idbs = {rule.head.name for rule in rules}
    mentioned = set(idbs)
    for rule in rules:
        for lit in rule.body:
            if isinstance(lit, RelationAtom):
                mentioned.add(lit.name)
            elif isinstance(lit, Not) and isinstance(lit.child, RelationAtom):
                mentioned.add(lit.child.name)
    out = list(rules)
    for view in views.values():
        if view.relation in mentioned or not view.rules:
            continue
        match = _match_view(out, idbs, view, theory, result.stats)
        if match is None:
            continue
        target, program_rules = match
        arity = len(program_rules[0].head.args)
        args = tuple(f"v{i}" for i in range(arity))
        copy_rule = _rebuild_with_head(
            program_rules[0],
            RelationAtom(target, args),
            (RelationAtom(view.relation, args),),
        )
        rewritten: list[RuleLike] = []
        replaced = False
        for rule in out:
            if rule.head.name == target:
                if not replaced:
                    rewritten.append(copy_rule)
                    replaced = True
            else:
                rewritten.append(rule)
        out = rewritten
        mentioned.add(view.relation)
        result.stats.view_rewrites += 1
        result.diagnostics.append(
            Diagnostic(
                "CQL043",
                f"predicate {target} is containment-equivalent to "
                f"materialized view {view.relation!r}; rules replaced by a "
                f"copy rule reading the view",
                predicate=target,
                hint=f"{target}({', '.join(args)}) :- {view.relation}({', '.join(args)}).",
            )
        )
    return out


def _match_view(
    rules: Sequence[RuleLike],
    idbs: set[str],
    view: ViewDefinition,
    theory: TheoryLike,
    stats: SemanticStats,
) -> tuple[str, list[RuleLike]] | None:
    """The (predicate, its rules) a view answers, or None."""
    for predicate in sorted(idbs):
        if predicate != view.predicate and not _rename_ok(view, predicate):
            continue
        program_rules = [r for r in rules if r.head.name == predicate]
        if not program_rules or any(has_negation(r) for r in program_rules):
            continue
        other_idbs = idbs - {predicate}
        if any(
            atom.name in other_idbs
            for r in program_rules
            for atom in positive_atoms(r)
        ):
            continue
        renamed: list[RuleLike] = []
        for rule in view.rules:
            fixed = _rename_predicate(rule, view.predicate, predicate)
            if fixed is None:
                break
            renamed.append(fixed)
        else:
            if _rule_sets_equivalent(program_rules, renamed, theory, stats):
                return predicate, program_rules
    return None


def _rename_ok(view: ViewDefinition, predicate: str) -> bool:
    """Whether renaming the view predicate to ``predicate`` is well-formed."""
    names = {view.predicate}
    for rule in view.rules:
        names.add(rule.head.name)
        for atom in positive_atoms(rule):
            names.add(atom.name)
    return predicate not in names - {view.predicate}


def _rename_predicate(
    rule: RuleLike, old: str, new: str
) -> RuleLike | None:
    """The rule with every occurrence of predicate ``old`` renamed to ``new``."""
    if has_negation(rule):
        return None
    if old == new:
        return rule

    def fix(atom: RelationAtom) -> RelationAtom:
        return RelationAtom(new, atom.args) if atom.name == old else atom

    head = fix(rule.head)
    body = tuple(
        fix(lit) if isinstance(lit, RelationAtom) else lit for lit in rule.body
    )
    return _rebuild_with_head(rule, head, body)


def _rebuild_with_head(
    rule: RuleLike, head: RelationAtom, body: tuple[object, ...]
) -> RuleLike:
    return type(rule)(head, body)


def _rule_sets_equivalent(
    left: Sequence[RuleLike],
    right: Sequence[RuleLike],
    theory: TheoryLike,
    stats: SemanticStats,
) -> bool:
    """Pairwise containment equivalence of two same-head rule sets."""
    for a, b in ((left, right), (right, left)):
        for rule in a:
            if not any(
                _checked_containment(rule, other, theory, stats) is not None
                for other in b
            ):
                return False
    return True


# -------------------------------------------------------------------- driver
def optimize_program(
    rules: Sequence[RuleLike],
    theory: TheoryLike,
    *,
    views: Mapping[str, ViewDefinition] | None = None,
) -> SemanticResult:
    """Run the five semantic passes over ``rules``; never raises on budget.

    Rules are never mutated; the result's ``rules`` list shares unchanged
    rule objects with the input.  Per-predicate last rules are preserved
    (an IDB relation must exist even when provably empty), and a tripped
    budget keeps whatever consistent prefix of passes completed.
    """
    result = SemanticResult(rules=list(rules), original=tuple(rules))
    passes = [
        lambda rs: _prune_unsatisfiable(rs, theory, result),
        lambda rs: _tighten_constraints(rs, theory, result),
        lambda rs: _eliminate_literals(rs, theory, result),
        lambda rs: _subsume_rules(rs, theory, result),
    ]
    if views:
        passes.append(lambda rs: _answer_from_views(rs, theory, views, result))
    current = result.rules
    for run in passes:
        try:
            current = run(list(current))
        except BudgetExceededError:
            result.stats.budget_tripped = True
            break
        except ReproError:
            # a malformed program (wrong-theory atoms, bad arities, ...) is
            # not the optimizer's to reject: evaluation or the pre-flight
            # will surface the real error.  Keep the passes that completed.
            break
    result.rules = list(current)
    return result
