"""Rule-level containment checks for the semantic optimizer (Thm 2.6).

A Datalog(+constraints) rule *is* a tableau query: the head is the summary
row, the positive body atoms are the tagged rows, and the constraint atoms
are the constraint set C.  Section 2.2's containment machinery therefore
lifts directly to rules: ``r1 subseteq r2`` (same head predicate) holds iff
some symbol mapping from r2 into r1 maps the head positionally, sends every
positive atom of r2 onto a positive atom of r1, and r1's constraints entail
the mapped constraints of r2 (Lemma 2.5 + the homomorphism collapse of
Theorem 2.6).  The paper proves the collapse for linear-equation
constraints; here the entailment side is delegated to
:meth:`ConstraintTheory.entails_all`, which is exact for the *pointwise*
theories (dense order, equality) -- the only theories this module decides.
Everything else (boolean, real-polynomial, semiinterval shapes the
homomorphism property provably misses, Theorem 2.8) answers "undecided" and
the optimizer refuses to fire.

The mapping search is budget-metered: one ``tick("join")`` per candidate
extension and one ``tick("sat")`` per entailment check, so adversarial
programs with many same-predicate atoms degrade gracefully under the PR 4
supervisor instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Protocol, Sequence

from repro.logic.syntax import Atom, Not, RelationAtom
from repro.runtime.budget import tick

#: theories whose ``entails_all`` is exact, hence where containment-based
#: rewrites are sound to apply (ISSUE 8: polynomial theory must no-op)
CONTAINMENT_THEORIES = frozenset({"dense_order", "equality"})

#: theories whose ``is_satisfiable`` is exact, hence where unsatisfiable
#: rules may be pruned outright (the CQL021 dead-code criterion)
SATISFIABILITY_THEORIES = frozenset({"dense_order", "equality", "boolean"})


class TheoryLike(Protocol):
    """The slice of :class:`ConstraintTheory` the containment checks use."""

    name: str

    def is_satisfiable(self, atoms: Sequence[Atom]) -> bool: ...

    def entails_all(
        self, atoms: Sequence[Atom], consequences: Sequence[Atom]
    ) -> bool: ...


class RuleLike(Protocol):
    """Structural protocol for :class:`repro.core.datalog.Rule`.

    Mirrors :mod:`repro.analysis.graph`: the semantic package stays
    import-independent of ``repro.core`` so the engine can import it lazily
    without a cycle.
    """

    @property
    def head(self) -> RelationAtom: ...

    @property
    def body(self) -> tuple[object, ...]: ...


@dataclass(frozen=True)
class ContainmentWitness:
    """A homomorphism witnessing ``contained subseteq container``.

    ``mapping`` sends every variable of the *container* rule into a variable
    of the *contained* rule (head positions map positionally, Lemma 2.5);
    ``atom_images`` records which positive body atom of the contained rule
    each container atom landed on.
    """

    mapping: Mapping[str, str] = field(default_factory=dict)
    atom_images: tuple[tuple[str, str], ...] = ()

    def describe(self) -> str:
        pairs = ", ".join(f"{k}->{v}" for k, v in sorted(self.mapping.items()))
        return f"{{{pairs}}}" if pairs else "{}"


def positive_atoms(rule: RuleLike) -> list[RelationAtom]:
    return [lit for lit in rule.body if isinstance(lit, RelationAtom)]


def constraint_atoms(rule: RuleLike) -> list[Atom]:
    return [
        lit
        for lit in rule.body
        if isinstance(lit, Atom) and not isinstance(lit, RelationAtom)
    ]


def has_negation(rule: RuleLike) -> bool:
    return any(isinstance(lit, Not) for lit in rule.body)


def rule_variables(rule: RuleLike) -> set[str]:
    """Every variable of the rule (head, atoms, and constraint-only)."""
    names: set[str] = set(rule.head.args)
    for lit in rule.body:
        if isinstance(lit, RelationAtom):
            names.update(lit.args)
        elif isinstance(lit, Not):
            child = lit.child
            if isinstance(child, RelationAtom):
                names.update(child.args)
        elif isinstance(lit, Atom):
            names.update(lit.variables())
    return names


def _candidate_mappings(
    container_atoms: Sequence[RelationAtom],
    contained_atoms: Sequence[RelationAtom],
    seed: dict[str, str],
) -> Iterator[dict[str, str]]:
    """Lazily extend ``seed`` by mapping container atoms onto contained atoms.

    Depth-first over the container's positive atoms; a candidate image atom
    must share the predicate name and arity, and the positional variable
    bindings must be consistent with the mapping built so far (symbol
    mappings are functions, Lemma 2.5).  One budget tick per candidate keeps
    adversarial same-predicate fan-outs interruptible.
    """
    if not container_atoms:
        yield dict(seed)
        return
    head_atom, *rest = container_atoms
    for image in contained_atoms:
        tick("join")
        if image.name != head_atom.name or len(image.args) != len(head_atom.args):
            continue
        extended = dict(seed)
        ok = True
        for symbol, image_symbol in zip(head_atom.args, image.args):
            bound = extended.get(symbol)
            if bound is None:
                extended[symbol] = image_symbol
            elif bound != image_symbol:
                ok = False
                break
        if ok:
            yield from _candidate_mappings(rest, contained_atoms, extended)


def rule_contained_in(
    contained: RuleLike, container: RuleLike, theory: TheoryLike
) -> ContainmentWitness | None:
    """Decide ``contained subseteq container`` and return a witness, or None.

    Sound but deliberately incomplete: a ``None`` answer means *undecided*,
    never "not contained".  Preconditions enforced here:

    * same head predicate and arity;
    * the container is negation-free (its atoms must all find images; a
      negated container atom has no sound image under a symbol mapping).
      The *contained* rule may carry negation -- negative literals only
      shrink its output, and shrinking preserves containment;
    * the theory's entailment is exact (:data:`CONTAINMENT_THEORIES`);
    * every container variable -- including constraint-only ones -- ends up
      mapped, otherwise the mapped constraints would capture free variables.
    """
    if theory.name not in CONTAINMENT_THEORIES:
        return None
    if contained.head.name != container.head.name:
        return None
    if len(contained.head.args) != len(container.head.args):
        return None
    if has_negation(container):
        return None
    seed = dict(zip(container.head.args, contained.head.args))
    if len(seed) != len(set(container.head.args)):
        return None  # defensive: repeated head variables cannot seed a function
    container_pos = positive_atoms(container)
    contained_pos = positive_atoms(contained)
    container_vars = rule_variables(container)
    contained_constraints = constraint_atoms(contained)
    container_constraints = constraint_atoms(container)
    for mapping in _candidate_mappings(container_pos, contained_pos, seed):
        if any(name not in mapping for name in container_vars):
            # constraint-only container variables with no image: renaming
            # would capture them as free variables of the contained rule
            continue
        tick("sat")
        mapped = [atom.rename(mapping) for atom in container_constraints]
        if theory.entails_all(contained_constraints, mapped):
            images = tuple(
                (str(atom), str(atom.rename(mapping))) for atom in container_pos
            )
            return ContainmentWitness(mapping=dict(mapping), atom_images=images)
    return None


@dataclass(frozen=True)
class _PseudoRule:
    """A minimal :class:`RuleLike` for region-containment questions."""

    head: RelationAtom
    body: tuple[object, ...]


def query_contained_in(
    contained_atoms: Sequence[Atom],
    container_atoms: Sequence[Atom],
    variables: Sequence[str],
    theory: TheoryLike,
) -> ContainmentWitness | None:
    """Decide whether the region ``contained_atoms`` selects lies inside the
    region of ``container_atoms``, both over the positional ``variables``.

    This is the query-result reuse question of the demand-driven query path
    (:mod:`repro.core.query`): a cached answer for the *container* bindings
    can serve a new query with *contained* bindings by re-selection alone.
    It is the identity-homomorphism specialization of Theorem 2.6, phrased
    through :func:`rule_contained_in` on two single-atom pseudo-rules
    ``q(vars) :- base(vars), constraints`` -- the positional head seed forces
    the identity mapping, leaving exactly the entailment
    ``contained_atoms |= container_atoms`` to the theory.  Sound but
    incomplete like the rule check: ``None`` means *undecided*, never
    "not contained"; only :data:`CONTAINMENT_THEORIES` ever answer.
    """
    head = RelationAtom("__query", tuple(variables))
    base = RelationAtom("__answers", tuple(variables))
    contained = _PseudoRule(head, (base, *contained_atoms))
    container = _PseudoRule(head, (base, *container_atoms))
    return rule_contained_in(contained, container, theory)


def rule_unsatisfiable(rule: RuleLike, theory: TheoryLike) -> bool:
    """Whether the rule's constraint conjunction is provably unsatisfiable."""
    if theory.name not in SATISFIABILITY_THEORIES:
        return False
    atoms = constraint_atoms(rule)
    if not atoms:
        return False
    tick("sat")
    return not theory.is_satisfiable(atoms)
