"""Semantic analyzer + containment-based program optimizer ("cqlopt").

Lifts the paper's Section 2.2 containment machinery (Theorem 2.6) into a
whole-program rewrite layer between cqlint and the plan/compile pipeline:
rule subsumption, redundant-literal elimination, constraint tightening,
unsatisfiable-rule pruning, and view answerability.  See
:mod:`repro.analysis.semantic.passes` for the pass pipeline and the
soundness contract, and DESIGN.md §13 for the full argument.
"""

from repro.analysis.semantic.containment import (
    CONTAINMENT_THEORIES,
    SATISFIABILITY_THEORIES,
    ContainmentWitness,
    query_contained_in,
    rule_contained_in,
    rule_unsatisfiable,
)
from repro.analysis.semantic.passes import (
    SemanticResult,
    SemanticStats,
    ViewDefinition,
    optimize_program,
)

__all__ = [
    "CONTAINMENT_THEORIES",
    "SATISFIABILITY_THEORIES",
    "ContainmentWitness",
    "SemanticResult",
    "SemanticStats",
    "ViewDefinition",
    "optimize_program",
    "query_contained_in",
    "rule_contained_in",
    "rule_unsatisfiable",
]
