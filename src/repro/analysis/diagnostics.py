"""Diagnostic records, the stable error-code registry, and program reports.

Every analysis pass produces :class:`Diagnostic` values with a *stable* code
(``CQL000`` .. ``CQL049``): codes are part of the public contract -- tests,
suppression pragmas (``# cqlint: allow(CQL010)``) and downstream tooling key
on them, so a code is never reused for a different condition.  The registry
:data:`CODES` maps every code to its kebab-case slug, default severity, and a
one-line summary (rendered by ``python -m repro lint`` and DESIGN.md §8).

A :class:`ProgramReport` aggregates one program's diagnostics with the
structural facts the passes computed along the way (dependency SCCs,
recursion/negation flags, the complexity classification and its justifying
theorem, and per-pass wall-clock timings).  Reports round-trip through JSON
(``as_dict``/``from_dict``) for the ``--json`` CLI output.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

#: severity levels, ordered from most to least severe
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one stable diagnostic code."""

    code: str
    slug: str
    severity: str
    summary: str


#: the stable code registry (documented in DESIGN.md §8)
CODES: dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo("CQL000", "parse-error", ERROR, "program text could not be parsed"),
        CodeInfo(
            "CQL001",
            "unsafe-rule",
            ERROR,
            "a head variable does not occur in the rule body",
        ),
        CodeInfo(
            "CQL002",
            "arity-mismatch",
            ERROR,
            "a predicate is used with inconsistent arities",
        ),
        CodeInfo(
            "CQL003",
            "theory-mismatch",
            ERROR,
            "a constraint atom does not belong to the active theory",
        ),
        CodeInfo(
            "CQL004",
            "constraint-only-variable",
            WARNING,
            "a body variable occurs only in constraint atoms",
        ),
        CodeInfo("CQL005", "duplicate-rule", WARNING, "a rule appears more than once"),
        CodeInfo(
            "CQL006",
            "free-variable-mismatch",
            ERROR,
            "a query's free variables differ from the declared output schema",
        ),
        CodeInfo(
            "CQL007",
            "negation-in-recursion",
            WARNING,
            "negation through recursion: not stratifiable, inflationary only",
        ),
        CodeInfo(
            "CQL010",
            "not-closed-recursion",
            ERROR,
            "recursion through real-polynomial constraints is not closed "
            "(Example 1.12)",
        ),
        CodeInfo(
            "CQL011",
            "elimination-fragment",
            WARNING,
            "polynomial constraint outside the degree-2 QE ladder fragment",
        ),
        CodeInfo(
            "CQL012",
            "negation-unsupported",
            ERROR,
            "negation/universals in a theory without negation (Section 5)",
        ),
        CodeInfo(
            "CQL020",
            "unsatisfiable-body",
            WARNING,
            "a rule body's constraint conjunction is unsatisfiable",
        ),
        CodeInfo(
            "CQL021",
            "unused-predicate",
            WARNING,
            "an IDB predicate does not contribute to the target predicate",
        ),
        CodeInfo(
            "CQL022",
            "dead-rule",
            WARNING,
            "a rule body references a provably empty predicate",
        ),
        CodeInfo(
            "CQL030",
            "complexity-class",
            INFO,
            "predicted data-complexity class and its justifying theorem",
        ),
        CodeInfo(
            "CQL031",
            "unbudgeted-hard-program",
            WARNING,
            "a program with no polynomial complexity bound runs without an "
            "explicit resource budget",
        ),
        # CQL040-CQL049: the semantic optimizer (repro.analysis.semantic).
        # info severity -- each records a fixpoint-preserving rewrite the
        # optimizer applied (or would apply), not a defect.
        CodeInfo(
            "CQL040",
            "subsumed-rule",
            INFO,
            "a rule is contained in a sibling rule and contributes nothing "
            "(Thm 2.6 homomorphism witness)",
        ),
        CodeInfo(
            "CQL041",
            "redundant-literal",
            INFO,
            "a body atom's removal yields a contained-equivalent rule "
            "(tableau minimization)",
        ),
        CodeInfo(
            "CQL042",
            "constraint-tightened",
            INFO,
            "a rule's constraint conjunction was replaced by its canonical "
            "equivalent at analysis time",
        ),
        CodeInfo(
            "CQL043",
            "view-answerable",
            INFO,
            "a predicate is containment-equivalent to a materialized view "
            "and reads it instead of re-deriving",
        ),
        CodeInfo(
            "CQL044",
            "unsatisfiable-rule-removed",
            INFO,
            "a rule with an unsatisfiable constraint conjunction was removed "
            "by the optimizer",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    ``rule_index`` locates the offending rule (0-based, in program order);
    ``predicate``/``atom`` narrow the location further when available.
    ``suppressed`` marks diagnostics matched by an ``allow`` pragma: they are
    still reported, but do not count toward the lint exit code or the engine
    pre-flight.
    """

    code: str
    message: str
    severity: str = ""
    rule_index: int | None = None
    predicate: str | None = None
    atom: str | None = None
    hint: str | None = None
    suppressed: bool = False

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if not self.severity:
            object.__setattr__(self, "severity", CODES[self.code].severity)
        elif self.severity not in _SEVERITY_ORDER:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def slug(self) -> str:
        return CODES[self.code].slug

    def suppress(self) -> "Diagnostic":
        return replace(self, suppressed=True)

    def render(self) -> str:
        location = ""
        if self.rule_index is not None:
            location = f" [rule {self.rule_index}]"
        elif self.predicate is not None:
            location = f" [{self.predicate}]"
        text = f"{self.code} {self.severity} {self.slug}{location}: {self.message}"
        if self.suppressed:
            text += " (suppressed)"
        return text

    def as_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity,
            "message": self.message,
            "rule_index": self.rule_index,
            "predicate": self.predicate,
            "atom": self.atom,
            "hint": self.hint,
            "suppressed": self.suppressed,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Diagnostic":
        return Diagnostic(
            code=data["code"],
            message=data["message"],
            severity=data.get("severity", ""),
            rule_index=data.get("rule_index"),
            predicate=data.get("predicate"),
            atom=data.get("atom"),
            hint=data.get("hint"),
            suppressed=data.get("suppressed", False),
        )


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Severity-major, then code, then rule order -- the report ordering."""
    return sorted(
        diagnostics,
        key=lambda d: (
            _SEVERITY_ORDER[d.severity],
            d.code,
            -1 if d.rule_index is None else d.rule_index,
        ),
    )


@dataclass
class ProgramReport:
    """Everything the analyzer learned about one program.

    ``kind`` is ``"datalog"`` or ``"calculus"``; the structural fields that
    only make sense for rules (``sccs``, ``recursive``, ``stratifiable``) are
    empty/True for calculus reports.
    """

    theory: str
    kind: str
    num_rules: int
    diagnostics: list[Diagnostic] = field(default_factory=list)
    idb: tuple[str, ...] = ()
    edb: tuple[str, ...] = ()
    sccs: tuple[tuple[str, ...], ...] = ()
    recursive: bool = False
    has_negation: bool = False
    stratifiable: bool = True
    complexity_class: str | None = None
    theorem: str | None = None
    pass_timings: dict[str, float] = field(default_factory=dict)

    def errors(self, include_suppressed: bool = False) -> list[Diagnostic]:
        return [
            d
            for d in self.diagnostics
            if d.severity == ERROR and (include_suppressed or not d.suppressed)
        ]

    def warnings(self, include_suppressed: bool = False) -> list[Diagnostic]:
        return [
            d
            for d in self.diagnostics
            if d.severity == WARNING and (include_suppressed or not d.suppressed)
        ]

    @property
    def ok(self) -> bool:
        """No unsuppressed error-severity diagnostics."""
        return not self.errors()

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def as_dict(self) -> dict[str, Any]:
        return {
            "theory": self.theory,
            "kind": self.kind,
            "num_rules": self.num_rules,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "idb": list(self.idb),
            "edb": list(self.edb),
            "sccs": [list(scc) for scc in self.sccs],
            "recursive": self.recursive,
            "has_negation": self.has_negation,
            "stratifiable": self.stratifiable,
            "complexity_class": self.complexity_class,
            "theorem": self.theorem,
            "pass_timings": dict(self.pass_timings),
            "ok": self.ok,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ProgramReport":
        return ProgramReport(
            theory=data["theory"],
            kind=data["kind"],
            num_rules=data["num_rules"],
            diagnostics=[Diagnostic.from_dict(d) for d in data["diagnostics"]],
            idb=tuple(data.get("idb", ())),
            edb=tuple(data.get("edb", ())),
            sccs=tuple(tuple(scc) for scc in data.get("sccs", ())),
            recursive=data.get("recursive", False),
            has_negation=data.get("has_negation", False),
            stratifiable=data.get("stratifiable", True),
            complexity_class=data.get("complexity_class"),
            theorem=data.get("theorem"),
            pass_timings=dict(data.get("pass_timings", {})),
        )
