"""The multi-pass pipeline: ``analyze_program`` / ``analyze_formula``.

Pass order over a rule list (each pass timed into
``ProgramReport.pass_timings``):

1. **well-formedness** (:mod:`repro.analysis.safety`) -- arities, safety,
   theory membership, stray variables, duplicates;
2. **dependencies** (:mod:`repro.analysis.graph`) -- dependency graph, SCC
   condensation, recursion and stratifiability facts (CQL007 when negation
   runs through recursion: the program only has inflationary semantics);
3. **closure** (:mod:`repro.analysis.closure`) -- the static Example 1.12
   guard (CQL010) and the QE-fragment advisory (CQL011);
4. **dead code** (:mod:`repro.analysis.deadcode`) -- unsatisfiable bodies,
   empty-predicate propagation, target-unreachable predicates;
5. **classification** (:mod:`repro.analysis.classify`) -- the Section 1.3
   complexity class with its justifying theorem, attached both to the report
   fields and as a CQL030 info diagnostic.

Calculus formulas go through the applicable subset (well-formedness over
atoms and the output schema, theory-capability checks, classification).
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping, Sequence

from repro.analysis.classify import (
    NOT_CLOSED,
    PI2P_HARD,
    Classification,
    classify_calculus,
    classify_program,
)
from repro.analysis.closure import check_closure
from repro.analysis.deadcode import check_dead_code
from repro.analysis.diagnostics import Diagnostic, ProgramReport, sort_diagnostics
from repro.analysis.graph import RuleLike, build_dependency_graph
from repro.analysis.safety import check_safety
from repro.constraints.base import ConstraintTheory
from repro.errors import TheoryError
from repro.logic.syntax import (
    Atom,
    Exists,
    ForAll,
    Formula,
    Not,
    RelationAtom,
    all_relation_atoms,
    free_variables,
)


def analyze_program(
    rules: Sequence[RuleLike],
    theory: ConstraintTheory,
    *,
    target: str | None = None,
    edb_schemas: Mapping[str, int] | None = None,
    suppress: Iterable[str] = (),
    budget_declared: bool = False,
    semantic: bool = False,
    views: "Mapping[str, object] | None" = None,
) -> ProgramReport:
    """Run every pass over a Datalog(not) rule list and build the report.

    ``target`` enables the unused-predicate check; ``edb_schemas`` (predicate
    name -> arity) lets the arity pass cross-check database relations;
    ``suppress`` marks diagnostics with those codes as suppressed (they stay
    in the report but do not fail linting or the engine pre-flight);
    ``budget_declared`` records that the caller runs the program under an
    explicit resource budget, silencing the CQL031 advisory for programs
    with no polynomial complexity bound; ``semantic`` additionally runs the
    containment-based optimizer (:mod:`repro.analysis.semantic`) in
    report-only mode, surfacing its CQL040-range rewrites as info
    diagnostics (``views`` feeds the view-answerability pass).
    """
    timings: dict[str, float] = {}
    diagnostics: list[Diagnostic] = []

    started = time.perf_counter()
    diagnostics.extend(check_safety(rules, theory, edb_schemas))
    timings["well_formedness"] = time.perf_counter() - started

    if semantic:
        from repro.analysis.semantic import ViewDefinition, optimize_program

        started = time.perf_counter()
        typed_views = {
            name: view
            for name, view in (views or {}).items()
            if isinstance(view, ViewDefinition)
        }
        diagnostics.extend(
            optimize_program(rules, theory, views=typed_views or None).diagnostics
        )
        timings["semantic"] = time.perf_counter() - started

    started = time.perf_counter()
    graph = build_dependency_graph(rules)
    stratifiable = graph.is_stratifiable()
    if not stratifiable:
        edges = sorted(graph.recursive_negative_edges())
        diagnostics.append(
            Diagnostic(
                "CQL007",
                f"negation through recursion on {edges}: the program is not "
                "stratifiable and only has inflationary semantics",
                predicate=edges[0][0] if edges else None,
                hint="semantics='stratified' will be rejected; use "
                "semantics='inflationary' (or 'auto') deliberately",
            )
        )
    timings["dependencies"] = time.perf_counter() - started

    started = time.perf_counter()
    diagnostics.extend(check_closure(rules, theory, graph))
    timings["closure"] = time.perf_counter() - started

    started = time.perf_counter()
    diagnostics.extend(check_dead_code(rules, theory, graph, target))
    timings["dead_code"] = time.perf_counter() - started

    started = time.perf_counter()
    classification = classify_program(rules, theory, graph)
    diagnostics.append(_classification_diagnostic(classification))
    _check_budget(classification, budget_declared, diagnostics)
    timings["classification"] = time.perf_counter() - started

    report = ProgramReport(
        theory=theory.name,
        kind="datalog",
        num_rules=len(rules),
        diagnostics=_finish(diagnostics, suppress),
        idb=tuple(sorted(graph.idb)),
        edb=tuple(sorted(graph.edb)),
        sccs=graph.sccs,
        recursive=graph.is_recursive(),
        has_negation=bool(graph.negative_edges),
        stratifiable=stratifiable,
        complexity_class=classification.complexity_class,
        theorem=classification.theorem,
        pass_timings=timings,
    )
    return report


def analyze_formula(
    formula: Formula,
    theory: ConstraintTheory,
    *,
    output: Sequence[str] | None = None,
    edb_schemas: Mapping[str, int] | None = None,
    suppress: Iterable[str] = (),
    budget_declared: bool = False,
) -> ProgramReport:
    """Run the calculus subset of the pipeline over one query formula."""
    timings: dict[str, float] = {}
    diagnostics: list[Diagnostic] = []

    started = time.perf_counter()
    arities: dict[str, int] = dict(edb_schemas or {})
    predicates: list[str] = []
    for atom in all_relation_atoms(formula):
        if atom.name not in predicates:
            predicates.append(atom.name)
        known = arities.get(atom.name)
        if known is not None and known != len(atom.args):
            diagnostics.append(
                Diagnostic(
                    "CQL002",
                    f"{atom.name} used with arity {len(atom.args)} here but "
                    f"{known} elsewhere",
                    predicate=atom.name,
                    atom=str(atom),
                )
            )
        else:
            arities[atom.name] = len(atom.args)
    for atom in _constraint_atoms(formula):
        try:
            theory.validate_atom(atom)
        except TheoryError as error:
            diagnostics.append(
                Diagnostic(
                    "CQL003",
                    f"constraint atom {atom} is not of the "
                    f"{theory.name!r} theory: {error}",
                    atom=str(atom),
                )
            )
    if output is not None:
        free = free_variables(formula)
        declared = frozenset(output)
        if free != declared:
            missing = sorted(declared - free)
            extra = sorted(free - declared)
            parts = []
            if missing:
                parts.append(f"declared but not free: {missing}")
            if extra:
                parts.append(f"free but not declared: {extra}")
            diagnostics.append(
                Diagnostic(
                    "CQL006",
                    "output schema does not match the query's free "
                    "variables (" + "; ".join(parts) + ")",
                    hint="declare exactly the free variables as the output "
                    "schema",
                )
            )
    if theory.name == "boolean" and _has_negation(formula):
        diagnostics.append(
            Diagnostic(
                "CQL012",
                "the boolean theory has no negation (Section 5): only "
                "positive existential queries are evaluable",
                hint="rewrite without not/forall, or switch theories",
            )
        )
    timings["well_formedness"] = time.perf_counter() - started

    started = time.perf_counter()
    classification = classify_calculus(theory)
    diagnostics.append(_classification_diagnostic(classification))
    _check_budget(classification, budget_declared, diagnostics)
    timings["classification"] = time.perf_counter() - started

    return ProgramReport(
        theory=theory.name,
        kind="calculus",
        num_rules=0,
        diagnostics=_finish(diagnostics, suppress),
        edb=tuple(sorted(predicates)),
        complexity_class=classification.complexity_class,
        theorem=classification.theorem,
        pass_timings=timings,
    )


def _classification_diagnostic(classification: Classification) -> Diagnostic:
    message = (
        f"predicted data complexity {classification.complexity_class} "
        f"({classification.theorem}): {classification.rationale}"
    )
    if classification.note:
        message += f"; {classification.note}"
    return Diagnostic("CQL030", message)


def _check_budget(
    classification: Classification,
    budget_declared: bool,
    diagnostics: list[Diagnostic],
) -> None:
    """CQL031: unbudgeted evaluation with no polynomial complexity bound.

    The two classes with no PTIME guarantee are ``closed-Pi2p-hard``
    (boolean constraint solving, Thm 5.11) and ``not-closed`` (recursion
    through real polynomials, Example 1.12): evaluation may blow up or
    diverge, so running without a deadline/step budget is flagged.
    """
    if budget_declared:
        return
    if classification.complexity_class not in (PI2P_HARD, NOT_CLOSED):
        return
    diagnostics.append(
        Diagnostic(
            "CQL031",
            f"no polynomial complexity bound "
            f"({classification.complexity_class}, "
            f"{classification.theorem}) and no resource budget declared: "
            "evaluation may blow up or diverge unsupervised",
            hint="run under EngineOptions(budget=Budget(...)) or declare "
            "'# budget: declared' to the linter",
        )
    )


def _finish(
    diagnostics: list[Diagnostic], suppress: Iterable[str]
) -> list[Diagnostic]:
    allowed = frozenset(suppress)
    return sort_diagnostics(
        d.suppress() if d.code in allowed else d for d in diagnostics
    )


def _constraint_atoms(formula: Formula) -> list[Atom]:
    """Every theory atom of a formula (relation atoms excluded)."""
    result: list[Atom] = []

    def walk(node: Formula) -> None:
        if isinstance(node, RelationAtom):
            return
        if isinstance(node, Atom):
            result.append(node)
            return
        if isinstance(node, Not):
            walk(node.child)
        elif isinstance(node, (Exists, ForAll)):
            walk(node.child)
        elif hasattr(node, "children"):
            for child in node.children:
                walk(child)

    walk(formula)
    return result


def _has_negation(formula: Formula) -> bool:
    if isinstance(formula, Not) or isinstance(formula, ForAll):
        return True
    if isinstance(formula, Exists):
        return _has_negation(formula.child)
    if hasattr(formula, "children"):
        return any(_has_negation(child) for child in formula.children)
    return False
