"""Pass 5: the data-complexity classifier (the paper's Section 1.3 table).

Maps the analyzed (theory, language fragment) pair onto the paper's
complexity table and names the justifying theorem.  The *fragment* is what
the earlier passes computed: does the program recurse, does it negate, is it
a plain calculus query.  The table (data complexity, fixed program, growing
database):

========================  ==================  ===========  ==============
theory                    fragment            class        theorem
========================  ==================  ===========  ==============
real_poly                 calculus /          NC           Thm 2.3
                          nonrecursive rules
real_poly                 recursive rules     not closed   Example 1.12
dense_order               calculus /          LOGSPACE     Thm 3.14.1
                          nonrecursive
                          positive rules
dense_order               Datalog(not)        PTIME        Thm 3.14.2
equality                  calculus /          LOGSPACE     Thm 4.11.1
                          nonrecursive
                          positive rules
equality                  Datalog(not)        PTIME        Thm 4.11.2
boolean                   positive Datalog /  closed;      Thm 5.6 /
                          existential         Pi-2-p-hard  Thm 5.11
                          calculus
========================  ==================  ===========  ==============

Positive *linear* recursion over dense order additionally earns an advisory
note: if the program has the polynomial-fringe property it evaluates in NC
(Theorem 3.21) -- a semantic property this static pass cannot decide, so the
note stays informational and the sound PTIME bound stands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.analysis.graph import DependencyGraph, RuleLike, build_dependency_graph
from repro.constraints.base import ConstraintTheory

#: class labels (stable strings, used in reports and tests)
LOGSPACE = "LOGSPACE"
NC = "NC"
PTIME = "PTIME"
NOT_CLOSED = "not-closed"
PI2P_HARD = "closed-Pi2p-hard"


@dataclass(frozen=True)
class Classification:
    """A complexity class plus the theorem that justifies it."""

    complexity_class: str
    theorem: str
    rationale: str
    #: an optional sharper bound that needs a semantic property to hold
    note: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "complexity_class": self.complexity_class,
            "theorem": self.theorem,
            "rationale": self.rationale,
            "note": self.note,
        }


def classify_program(
    rules: Sequence[RuleLike],
    theory: ConstraintTheory,
    graph: DependencyGraph | None = None,
) -> Classification:
    """The predicted data-complexity class of a Datalog(not) program."""
    if graph is None:
        graph = build_dependency_graph(rules)
    recursive = graph.is_recursive()
    negated = bool(graph.negative_edges)
    name = theory.name
    if name == "real_poly":
        if recursive:
            return Classification(
                NOT_CLOSED,
                "Example 1.12",
                "recursion through real-polynomial constraints has no "
                "finitely representable least fixpoint",
            )
        return Classification(
            NC,
            "Thm 2.3",
            "nonrecursive rules translate to relational calculus with "
            "polynomial inequalities, evaluable in NC via cell decomposition",
        )
    if name == "dense_order":
        if not recursive and not negated:
            return Classification(
                LOGSPACE,
                "Thm 3.14.1",
                "nonrecursive positive rules translate to relational "
                "calculus with dense order, evaluable in LOGSPACE over "
                "r-configurations",
            )
        return Classification(
            PTIME,
            "Thm 3.14.2",
            "inflationary Datalog(not) with dense order reaches its "
            "fixpoint in polynomially many canonical tuples",
            note=_fringe_note(rules, graph) if not negated else None,
        )
    if name == "equality":
        if not recursive and not negated:
            return Classification(
                LOGSPACE,
                "Thm 4.11.1",
                "nonrecursive positive rules translate to relational "
                "calculus with equality, evaluable in LOGSPACE over "
                "e-configurations",
            )
        return Classification(
            PTIME,
            "Thm 4.11.2",
            "inflationary Datalog(not) with equality constraints is "
            "PTIME-evaluable",
        )
    if name == "boolean":
        return Classification(
            PI2P_HARD,
            "Thm 5.6 / Thm 5.11",
            "positive Datalog with boolean equality constraints is closed "
            "(Boole's lemma) but constraint solving is Pi-2-p-hard, so no "
            "polynomial data-complexity bound applies",
        )
    return Classification(
        PTIME,
        "(unmapped theory)",
        f"theory {name!r} is not in the paper's Section 1.3 table",
    )


def classify_calculus(theory: ConstraintTheory) -> Classification:
    """The predicted data-complexity class of a calculus query."""
    name = theory.name
    if name == "dense_order":
        return Classification(
            LOGSPACE,
            "Thm 3.14.1",
            "relational calculus with dense order evaluates in LOGSPACE "
            "over r-configurations",
        )
    if name == "equality":
        return Classification(
            LOGSPACE,
            "Thm 4.11.1",
            "relational calculus with equality evaluates in LOGSPACE over "
            "e-configurations",
        )
    if name == "real_poly":
        return Classification(
            NC,
            "Thm 2.3",
            "relational calculus with polynomial inequalities evaluates in "
            "NC via cell decomposition (Tarski QE)",
        )
    if name == "boolean":
        return Classification(
            PI2P_HARD,
            "Thm 5.11",
            "boolean constraint solving is Pi-2-p-hard; only the positive "
            "existential fragment is supported",
        )
    return Classification(
        PTIME,
        "(unmapped theory)",
        f"theory {name!r} is not in the paper's Section 1.3 table",
    )


def _fringe_note(rules: Sequence[RuleLike], graph: DependencyGraph) -> str | None:
    """Advisory Thm 3.21 note for positive linear recursion (see module doc)."""
    recursive = graph.recursive_predicates()
    for rule in rules:
        in_cycle = [a for a in rule.positive_atoms if a.name in recursive]
        if rule.head.name in recursive and len(in_cycle) > 1:
            return None
    return (
        "linear recursion: if the program has the polynomial-fringe "
        "property it evaluates in NC (Thm 3.21)"
    )
