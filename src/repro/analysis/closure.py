"""Pass 3: theory-closure checking (the static Example 1.12 guard).

The paper's closure discipline is decidable from the (theory, language) pair
alone: Datalog over the real-polynomial theory is **not closed** under
recursion -- the least fixpoint of the transitive closure of ``y = 2x`` has
no finite generalized-relation representation (Example 1.12) -- while the
non-recursive fragment translates to relational calculus and stays closed
with NC data complexity (Theorem 2.3).  Dense order and equality are closed
for full inflationary Datalog¬ (Theorems 3.14.2 / 4.11.2), and the boolean
theory for positive Datalog (Theorem 5.6).

This module is the single source of truth for the condition: the runtime
guard in :class:`repro.core.datalog.DatalogProgram` delegates here (and is
verified to agree by ``tests/analysis/test_closure_parity.py``), and the
analyzer reports it statically as **CQL010 not-closed-recursion**.

A second, softer check flags polynomial atoms of total degree > 2
(**CQL011 elimination-fragment**): they sit outside the implemented QE
ladder (Fourier-Motzkin / virtual substitution / bivariate CAD, DESIGN.md
§4) and may raise ``UnsupportedEliminationError`` at evaluation time.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.graph import DependencyGraph, RuleLike, build_dependency_graph
from repro.constraints.base import ConstraintTheory
from repro.constraints.real_poly import PolyAtom, RealPolynomialTheory

#: the stock explanation attached to CQL010 and to the runtime error
NOT_CLOSED_MESSAGE = (
    "Datalog with real polynomial constraints is not closed "
    "(Example 1.12); pass allow_unsafe_recursion=True and a "
    "max_iterations bound to experiment with divergence"
)


def not_closed_recursion(
    rules: Sequence[RuleLike],
    theory: ConstraintTheory,
    graph: DependencyGraph | None = None,
) -> bool:
    """Whether evaluating ``rules`` under ``theory`` would not be closed.

    This predicate *is* the engine's refusal condition: the runtime guard in
    ``DatalogProgram.__init__`` raises :class:`repro.errors.NotClosedError`
    exactly when it holds (parity-tested across all four theories).
    """
    if not isinstance(theory, RealPolynomialTheory):
        return False
    if graph is None:
        graph = build_dependency_graph(rules)
    return graph.is_recursive()


def check_closure(
    rules: Sequence[RuleLike],
    theory: ConstraintTheory,
    graph: DependencyGraph | None = None,
) -> list[Diagnostic]:
    """The closure diagnostics of one rule list (CQL010, CQL011)."""
    if graph is None:
        graph = build_dependency_graph(rules)
    diagnostics: list[Diagnostic] = []
    if not_closed_recursion(rules, theory, graph):
        recursive = sorted(graph.recursive_predicates())
        diagnostics.append(
            Diagnostic(
                "CQL010",
                f"recursive predicates {recursive} over the real-polynomial "
                f"theory: {NOT_CLOSED_MESSAGE}",
                predicate=recursive[0] if recursive else None,
                hint="break the recursion, switch to the dense-order or "
                "equality theory, or opt into bounded iteration with "
                "allow_unsafe_recursion=True",
            )
        )
    diagnostics.extend(_fragment_diagnostics(rules, theory))
    return diagnostics


def _fragment_diagnostics(
    rules: Sequence[RuleLike], theory: ConstraintTheory
) -> list[Diagnostic]:
    if not isinstance(theory, RealPolynomialTheory):
        return []
    diagnostics: list[Diagnostic] = []
    for index, rule in enumerate(rules):
        for atom in rule.constraint_atoms:
            if isinstance(atom, PolyAtom) and atom.poly.total_degree() > 2:
                diagnostics.append(
                    Diagnostic(
                        "CQL011",
                        f"constraint {atom} has total degree "
                        f"{atom.poly.total_degree()}, outside the degree-2 "
                        "quantifier-elimination ladder",
                        rule_index=index,
                        predicate=rule.head.name,
                        atom=str(atom),
                        hint="elimination may raise "
                        "UnsupportedEliminationError; rewrite the constraint "
                        "with degree <= 2 per eliminated variable",
                    )
                )
    return diagnostics
