"""Pass 4: constraint-level dead-code detection.

Three findings, all warnings (dead code wastes work but cannot corrupt
results):

* **CQL020 unsatisfiable-body** -- the rule body's constraint conjunction is
  unsatisfiable in the active theory (decided with the theory's own
  ``is_satisfiable``, i.e. the same solver the engine would burn rounds on
  at runtime).  Such a rule can never fire.
* **CQL022 dead-rule** -- the body references a predicate that is *provably
  empty*: an IDB predicate all of whose defining rules are themselves dead.
  Computed as a fixpoint, so chains of dead definitions propagate.  EDB
  predicates are never assumed empty (their content is data, not program).
* **CQL021 unused-predicate** -- with a target predicate declared, an IDB
  predicate that the target does not (transitively) depend on; its rules'
  derivations are discarded.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.graph import DependencyGraph, RuleLike, build_dependency_graph
from repro.constraints.base import ConstraintTheory
from repro.errors import ReproError


def check_dead_code(
    rules: Sequence[RuleLike],
    theory: ConstraintTheory,
    graph: DependencyGraph | None = None,
    target: str | None = None,
) -> list[Diagnostic]:
    """The dead-code diagnostics of one rule list (CQL020/021/022)."""
    if graph is None:
        graph = build_dependency_graph(rules)
    diagnostics: list[Diagnostic] = []
    unsat: set[int] = set()
    for index, rule in enumerate(rules):
        conjunction = tuple(rule.constraint_atoms)
        if not conjunction:
            continue
        try:
            satisfiable = theory.is_satisfiable(conjunction)
        except ReproError:
            # a malformed conjunction is CQL003 territory (safety pass)
            continue
        if not satisfiable:
            unsat.add(index)
            diagnostics.append(
                Diagnostic(
                    "CQL020",
                    "the body's constraint conjunction is unsatisfiable; "
                    "the rule can never fire",
                    rule_index=index,
                    predicate=rule.head.name,
                    hint="drop the rule or fix the contradictory constraints",
                )
            )
    diagnostics.extend(_dead_rule_diagnostics(rules, graph, unsat))
    if target is not None:
        diagnostics.extend(_unused_diagnostics(rules, graph, target))
    return diagnostics


def _dead_rule_diagnostics(
    rules: Sequence[RuleLike],
    graph: DependencyGraph,
    unsat: set[int],
) -> list[Diagnostic]:
    """Propagate emptiness: a rule is dead if its body needs an empty IDB
    predicate; a predicate is empty if every defining rule is dead."""
    dead: set[int] = set(unsat)
    dead_reason: dict[int, str] = {}
    while True:
        empty = {
            name
            for name in graph.idb
            if all(
                index in dead
                for index, rule in enumerate(rules)
                if rule.head.name == name
            )
        }
        changed = False
        for index, rule in enumerate(rules):
            if index in dead:
                continue
            needs = [a.name for a in rule.positive_atoms if a.name in empty]
            if needs:
                dead.add(index)
                dead_reason[index] = needs[0]
                changed = True
        if not changed:
            break
    return [
        Diagnostic(
            "CQL022",
            f"the body requires {dead_reason[index]!r}, which is provably "
            "empty (all of its rules are dead)",
            rule_index=index,
            predicate=rules[index].head.name,
            hint="the emptiness propagates from an unsatisfiable body "
            "upstream; fix that rule first",
        )
        for index in sorted(dead_reason)
    ]


def _unused_diagnostics(
    rules: Sequence[RuleLike], graph: DependencyGraph, target: str
) -> list[Diagnostic]:
    live = graph.reachable_from(target) if target in set(graph.nodes) else {target}
    return [
        Diagnostic(
            "CQL021",
            f"predicate {name!r} does not contribute to the target "
            f"{target!r}",
            predicate=name,
            hint="remove its rules, or query it directly",
        )
        for name in sorted(graph.idb - set(live))
    ]
