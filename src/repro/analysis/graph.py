"""Predicate dependency graph, SCC condensation, recursion/negation facts.

The graph is built once per analysis and shared by the closure, dead-code and
classification passes.  Nodes are predicate names; there is an edge
``head -> body-predicate`` for every body occurrence, labelled positive or
negative.  SCCs are computed with an iterative Tarjan (no recursion-depth
limit on deep rule chains) and condensed in reverse topological order, which
is also the stratum order used by the stratifiability check.

The module is deliberately independent of :mod:`repro.core.datalog` (which
imports the closure pass back): rules are consumed through the structural
:class:`RuleLike` protocol that :class:`repro.core.datalog.Rule` satisfies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable


@runtime_checkable
class AtomLike(Protocol):
    """The slice of ``RelationAtom`` the analyzer needs."""

    name: str
    args: tuple[str, ...]


@runtime_checkable
class RuleLike(Protocol):
    """The slice of ``repro.core.datalog.Rule`` the analyzer needs."""

    head: AtomLike

    @property
    def positive_atoms(self) -> list:  # pragma: no cover - protocol
        ...

    @property
    def negative_atoms(self) -> list:  # pragma: no cover - protocol
        ...

    @property
    def constraint_atoms(self) -> list:  # pragma: no cover - protocol
        ...


@dataclass
class DependencyGraph:
    """The condensed predicate dependency structure of one program."""

    #: every predicate mentioned anywhere (head or body)
    nodes: tuple[str, ...]
    #: predicates defined by at least one rule head
    idb: frozenset[str]
    #: body-only predicates (assumed database-supplied)
    edb: frozenset[str]
    #: ``head -> body`` edges through positive literals
    positive_edges: frozenset[tuple[str, str]]
    #: ``head -> body`` edges through negated literals
    negative_edges: frozenset[tuple[str, str]]
    #: strongly connected components, reverse-topological (callees first)
    sccs: tuple[tuple[str, ...], ...] = ()
    _scc_index: dict[str, int] = field(default_factory=dict)

    @property
    def edges(self) -> frozenset[tuple[str, str]]:
        return self.positive_edges | self.negative_edges

    def scc_of(self, predicate: str) -> tuple[str, ...]:
        return self.sccs[self._scc_index[predicate]]

    def in_same_scc(self, left: str, right: str) -> bool:
        return self._scc_index.get(left) == self._scc_index.get(right)

    def recursive_predicates(self) -> frozenset[str]:
        """Predicates on a dependency cycle (SCC of size > 1 or a self-loop)."""
        result: set[str] = set()
        for scc in self.sccs:
            if len(scc) > 1:
                result.update(scc)
        for a, b in self.edges:
            if a == b:
                result.add(a)
        return frozenset(result)

    def is_recursive(self) -> bool:
        return bool(self.recursive_predicates())

    def recursive_negative_edges(self) -> frozenset[tuple[str, str]]:
        """Negative edges inside an SCC -- the stratifiability obstruction."""
        return frozenset(
            (a, b) for a, b in self.negative_edges if self.in_same_scc(a, b)
        )

    def is_stratifiable(self) -> bool:
        return not self.recursive_negative_edges()

    def reachable_from(self, start: str) -> frozenset[str]:
        """Predicates reachable from ``start`` along dependency edges."""
        adjacency: dict[str, set[str]] = {}
        for a, b in self.edges:
            adjacency.setdefault(a, set()).add(b)
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for successor in adjacency.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return frozenset(seen)


def build_dependency_graph(rules: Sequence[RuleLike]) -> DependencyGraph:
    """The dependency graph of a rule list (see module docstring)."""
    idb = {rule.head.name for rule in rules}
    nodes: list[str] = []
    positive: set[tuple[str, str]] = set()
    negative: set[tuple[str, str]] = set()

    def note(name: str) -> None:
        if name not in nodes:
            nodes.append(name)

    for rule in rules:
        note(rule.head.name)
        for atom in rule.positive_atoms:
            note(atom.name)
            positive.add((rule.head.name, atom.name))
        for atom in rule.negative_atoms:
            note(atom.name)
            negative.add((rule.head.name, atom.name))
    graph = DependencyGraph(
        nodes=tuple(nodes),
        idb=frozenset(idb),
        edb=frozenset(nodes) - frozenset(idb),
        positive_edges=frozenset(positive),
        negative_edges=frozenset(negative),
    )
    graph.sccs = _tarjan(graph.nodes, graph.edges)
    graph._scc_index = {
        name: index for index, scc in enumerate(graph.sccs) for name in scc
    }
    return graph


def _tarjan(
    nodes: Sequence[str], edges: frozenset[tuple[str, str]]
) -> tuple[tuple[str, ...], ...]:
    """Iterative Tarjan SCCs, emitted callees-first (reverse topological)."""
    adjacency: dict[str, list[str]] = {node: [] for node in nodes}
    for a, b in sorted(edges):
        adjacency[a].append(b)
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[tuple[str, ...]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        # each work item is (node, iterator over successors)
        work = [(root, iter(adjacency[root]))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(adjacency[successor])))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(component)))
    return tuple(sccs)
