"""Static analysis of constraint query programs (``cqlint``).

The package implements the multi-pass analyzer described in DESIGN.md §8:
well-formedness, dependency/stratification analysis, theory-closure checking
(the static Example 1.12 guard), constraint-level dead-code detection, and
the Section 1.3 data-complexity classifier.  Entry points:

* :func:`analyze_program` / :func:`analyze_formula` -- library API;
* ``python -m repro lint`` (:mod:`repro.analysis.lint`) -- the CLI;
* ``EngineOptions(analyze=True)`` -- the opt-in engine pre-flight.
"""

from repro.analysis.analyzer import analyze_formula, analyze_program
from repro.analysis.classify import (
    LOGSPACE,
    NC,
    NOT_CLOSED,
    PI2P_HARD,
    PTIME,
    Classification,
    classify_calculus,
    classify_program,
)
from repro.analysis.closure import (
    NOT_CLOSED_MESSAGE,
    check_closure,
    not_closed_recursion,
)
from repro.analysis.deadcode import check_dead_code
from repro.analysis.diagnostics import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    ProgramReport,
    sort_diagnostics,
)
from repro.analysis.graph import DependencyGraph, build_dependency_graph
from repro.analysis.safety import check_safety

__all__ = [
    "CODES",
    "ERROR",
    "INFO",
    "LOGSPACE",
    "NC",
    "NOT_CLOSED",
    "NOT_CLOSED_MESSAGE",
    "PI2P_HARD",
    "PTIME",
    "WARNING",
    "Classification",
    "DependencyGraph",
    "Diagnostic",
    "ProgramReport",
    "analyze_formula",
    "analyze_program",
    "build_dependency_graph",
    "check_closure",
    "check_dead_code",
    "check_safety",
    "classify_calculus",
    "classify_program",
    "not_closed_recursion",
    "sort_diagnostics",
]
