"""Pass 1: well-formedness -- arity/sort consistency, safety, stray variables.

Checks (codes defined in :mod:`repro.analysis.diagnostics`):

* **CQL001 unsafe-rule** -- a head variable that occurs in no body literal.
  Mirrors the constructor guard of :class:`repro.core.datalog.Rule`; it fires
  here for rule-like inputs built without that guard (e.g. raw parsed text).
* **CQL002 arity-mismatch** -- a predicate used with two different arities
  anywhere in the program, or disagreeing with a declared EDB schema.
* **CQL003 theory-mismatch** -- a body constraint atom the active theory's
  ``validate_atom`` rejects.
* **CQL004 constraint-only-variable** -- a variable that occurs only in
  constraint atoms, not in the head nor in any relation atom.  Legal (it is
  implicitly existentially quantified and eliminated in closed form) but a
  frequent typo vector, hence a warning.
* **CQL005 duplicate-rule** -- a rule that is literally repeated.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.graph import RuleLike
from repro.constraints.base import ConstraintTheory
from repro.errors import TheoryError


def check_safety(
    rules: Sequence[RuleLike],
    theory: ConstraintTheory,
    edb_schemas: Mapping[str, int] | None = None,
) -> list[Diagnostic]:
    """The well-formedness diagnostics of one rule list."""
    diagnostics: list[Diagnostic] = []
    arities: dict[str, int] = dict(edb_schemas or {})
    seen_rules: dict[str, int] = {}
    for index, rule in enumerate(rules):
        diagnostics.extend(_check_rule(index, rule, theory, arities))
        key = _rule_key(rule)
        if key in seen_rules:
            diagnostics.append(
                Diagnostic(
                    "CQL005",
                    f"rule {index} duplicates rule {seen_rules[key]}",
                    rule_index=index,
                    predicate=rule.head.name,
                    hint="remove the repeated rule; it adds no derivations",
                )
            )
        else:
            seen_rules[key] = index
    return diagnostics


def _rule_key(rule: RuleLike) -> str:
    return str(rule)


def _check_rule(
    index: int,
    rule: RuleLike,
    theory: ConstraintTheory,
    arities: dict[str, int],
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    # ---------------------------------------------------------------- arity
    for atom in [rule.head, *rule.positive_atoms, *rule.negative_atoms]:
        known = arities.get(atom.name)
        if known is not None and known != len(atom.args):
            diagnostics.append(
                Diagnostic(
                    "CQL002",
                    f"{atom.name} used with arity {len(atom.args)} here but "
                    f"{known} elsewhere",
                    rule_index=index,
                    predicate=atom.name,
                    atom=str(atom),
                    hint="make every occurrence of the predicate agree on "
                    "one arity",
                )
            )
        else:
            arities[atom.name] = len(atom.args)
    # --------------------------------------------------------------- safety
    head_vars = set(rule.head.args)
    relational_vars: set[str] = set()
    for atom in [*rule.positive_atoms, *rule.negative_atoms]:
        relational_vars |= set(atom.args)
    constraint_vars: set[str] = set()
    for atom in rule.constraint_atoms:
        constraint_vars |= set(atom.variables())
    missing = head_vars - relational_vars - constraint_vars
    if missing:
        diagnostics.append(
            Diagnostic(
                "CQL001",
                f"head variables {sorted(missing)} do not occur in the body",
                rule_index=index,
                predicate=rule.head.name,
                hint="bind every head variable in a body literal (relation "
                "atom or constraint)",
            )
        )
    stray = constraint_vars - relational_vars - head_vars
    if stray:
        diagnostics.append(
            Diagnostic(
                "CQL004",
                f"variables {sorted(stray)} occur only in constraint atoms; "
                "they are implicitly existentially quantified",
                rule_index=index,
                predicate=rule.head.name,
                hint="check for a typo; if intentional, the variables are "
                "eliminated in closed form when the rule fires",
            )
        )
    # --------------------------------------------------------------- theory
    for atom in rule.constraint_atoms:
        try:
            theory.validate_atom(atom)
        except TheoryError as error:
            diagnostics.append(
                Diagnostic(
                    "CQL003",
                    f"constraint atom {atom} is not of the "
                    f"{theory.name!r} theory: {error}",
                    rule_index=index,
                    predicate=rule.head.name,
                    atom=str(atom),
                    hint="build the program's constraints from the theory "
                    "passed to the engine",
                )
            )
    return diagnostics
