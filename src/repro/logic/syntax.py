"""Formula abstract syntax for constraint query languages.

A *query program* in the paper (Definition 1.6) is a first-order formula whose
atomic formulas are either database atoms ``R(x1, ..., xk)`` or constraints
from a class Phi.  This module defines the shared AST.  Constraint atoms are
provided by the individual theories in :mod:`repro.constraints`; they subclass
:class:`Atom` and implement the small protocol it declares (free variables,
variable renaming, ground evaluation).

Design notes
------------
* Formulas are immutable; connectives store their children as tuples so that
  formulas are hashable and can be used as dictionary keys by the evaluators.
* Relation atoms carry *variable names only*.  Following the paper
  ("without loss of generality, an occurrence of a database atom is of the
  form R(z1, ..., zk) where z1, ..., zk are distinct variables"), constants
  and repeated variables in surface syntax are compiled away by the parser
  into equality constraints of the active theory.
* ``And(())`` is truth and ``Or(())`` is falsity; the singletons :data:`TRUE`
  and :data:`FALSE` are provided for readability.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping


class Formula:
    """Base class of every formula node."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


class Atom(Formula):
    """Base class for constraint atoms supplied by the theories.

    Subclasses must be immutable and hashable, and must implement the three
    methods below.  ``negate`` is *not* part of this protocol: negation is a
    theory-level operation (the negation of a dense-order atom is a
    disjunction of atoms) and lives on the :class:`ConstraintTheory` object.
    """

    __slots__ = ()

    def variables(self) -> frozenset[str]:
        """Free variables of the atom."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Atom":
        """Return a copy with variables renamed according to ``mapping``.

        Variables not in the mapping are kept unchanged.
        """
        raise NotImplementedError

    def holds(self, assignment: Mapping[str, object]) -> bool:
        """Evaluate the atom at a ground point of the constraint domain."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class RelationAtom(Formula):
    """A database atom ``R(x1, ..., xk)`` with distinct variable arguments."""

    name: str
    args: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.args)) != len(self.args):
            raise ValueError(
                f"relation atom {self.name}{self.args} repeats a variable; "
                "repeated variables must be compiled into equality constraints"
            )

    def variables(self) -> frozenset[str]:
        return frozenset(self.args)

    def rename(self, mapping: Mapping[str, str]) -> "RelationAtom":
        return RelationAtom(self.name, tuple(mapping.get(a, a) for a in self.args))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.args)})"


@dataclass(frozen=True, slots=True)
class Not(Formula):
    """Logical negation."""

    child: Formula

    def __str__(self) -> str:
        return f"not ({self.child})"


@dataclass(frozen=True, slots=True)
class And(Formula):
    """Finite conjunction; the empty conjunction is truth."""

    children: tuple[Formula, ...]

    def __str__(self) -> str:
        if not self.children:
            return "true"
        return " and ".join(f"({c})" for c in self.children)


@dataclass(frozen=True, slots=True)
class Or(Formula):
    """Finite disjunction; the empty disjunction is falsity."""

    children: tuple[Formula, ...]

    def __str__(self) -> str:
        if not self.children:
            return "false"
        return " or ".join(f"({c})" for c in self.children)


@dataclass(frozen=True, slots=True)
class Exists(Formula):
    """Existential quantification over one or more variables."""

    variables_bound: tuple[str, ...]
    child: Formula

    def __str__(self) -> str:
        return f"exists {', '.join(self.variables_bound)} . ({self.child})"


@dataclass(frozen=True, slots=True)
class ForAll(Formula):
    """Universal quantification over one or more variables."""

    variables_bound: tuple[str, ...]
    child: Formula

    def __str__(self) -> str:
        return f"forall {', '.join(self.variables_bound)} . ({self.child})"


TRUE: Formula = And(())
FALSE: Formula = Or(())


def conjoin(parts: Iterable[Formula]) -> Formula:
    """Conjunction of ``parts`` flattening nested :class:`And` nodes."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.children)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjoin(parts: Iterable[Formula]) -> Formula:
    """Disjunction of ``parts`` flattening nested :class:`Or` nodes."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, Or):
            flat.extend(part.children)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def free_variables(formula: Formula) -> frozenset[str]:
    """The free variables of ``formula``.

    Quantifiers bind; relation atoms and theory atoms contribute their
    variables.
    """
    if isinstance(formula, (RelationAtom, Atom)):
        return formula.variables()
    if isinstance(formula, Not):
        return free_variables(formula.child)
    if isinstance(formula, (And, Or)):
        result: frozenset[str] = frozenset()
        for child in formula.children:
            result |= free_variables(child)
        return result
    if isinstance(formula, (Exists, ForAll)):
        return free_variables(formula.child) - frozenset(formula.variables_bound)
    raise TypeError(f"not a formula: {formula!r}")


def all_variables(formula: Formula) -> frozenset[str]:
    """All variables of ``formula`` -- free and bound."""
    if isinstance(formula, (RelationAtom, Atom)):
        return formula.variables()
    if isinstance(formula, Not):
        return all_variables(formula.child)
    if isinstance(formula, (And, Or)):
        result: frozenset[str] = frozenset()
        for child in formula.children:
            result |= all_variables(child)
        return result
    if isinstance(formula, (Exists, ForAll)):
        return all_variables(formula.child) | frozenset(formula.variables_bound)
    raise TypeError(f"not a formula: {formula!r}")


def all_relation_atoms(formula: Formula) -> Iterator[RelationAtom]:
    """Yield every relation atom occurring in ``formula`` (with repeats)."""
    if isinstance(formula, RelationAtom):
        yield formula
    elif isinstance(formula, Atom):
        return
    elif isinstance(formula, Not):
        yield from all_relation_atoms(formula.child)
    elif isinstance(formula, (And, Or)):
        for child in formula.children:
            yield from all_relation_atoms(child)
    elif isinstance(formula, (Exists, ForAll)):
        yield from all_relation_atoms(formula.child)
    else:
        raise TypeError(f"not a formula: {formula!r}")


def fresh_variable(used: Iterable[str], stem: str = "v") -> str:
    """Return a variable name with the given stem that does not occur in ``used``."""
    taken = set(used)
    for index in itertools.count():
        candidate = f"_{stem}{index}"
        if candidate not in taken:
            return candidate
    raise AssertionError("unreachable")


def rename_variables(formula: Formula, mapping: Mapping[str, str]) -> Formula:
    """Rename *free* variables of ``formula`` according to ``mapping``.

    The mapping must not capture bound variables: if a target name collides
    with a quantified variable the quantified variable is renamed to a fresh
    name first.  Variables absent from the mapping are left unchanged.
    """
    if isinstance(formula, (RelationAtom, Atom)):
        return formula.rename(mapping)
    if isinstance(formula, Not):
        return Not(rename_variables(formula.child, mapping))
    if isinstance(formula, And):
        return And(tuple(rename_variables(c, mapping) for c in formula.children))
    if isinstance(formula, Or):
        return Or(tuple(rename_variables(c, mapping) for c in formula.children))
    if isinstance(formula, (Exists, ForAll)):
        bound = formula.variables_bound
        inner_mapping = {k: v for k, v in mapping.items() if k not in bound}
        targets = set(inner_mapping.values())
        collisions = [b for b in bound if b in targets]
        child = formula.child
        if collisions:
            used = (
                set(all_variables(formula))
                | set(mapping.keys())
                | set(mapping.values())
            )
            bound_list = list(bound)
            for bad in collisions:
                replacement = fresh_variable(used, stem=bad.strip("_"))
                used.add(replacement)
                child = rename_variables(child, {bad: replacement})
                bound_list[bound_list.index(bad)] = replacement
            bound = tuple(bound_list)
        new_child = rename_variables(child, inner_mapping)
        constructor = Exists if isinstance(formula, Exists) else ForAll
        return constructor(bound, new_child)
    raise TypeError(f"not a formula: {formula!r}")
