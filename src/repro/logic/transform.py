"""Formula transforms: negation normal form and disjunctive normal form.

The bottom-up evaluators of :mod:`repro.core` work on quantifier-free DNF
formulas -- the representation of generalized relations (Definition 1.3).
Negation of a constraint atom is a theory-level operation (for dense order,
``not (x < y)`` is ``y < x or y = x``), so :func:`to_nnf` takes a negation
callback supplied by the active :class:`~repro.constraints.base.ConstraintTheory`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    conjoin,
    disjoin,
)

NegateAtom = Callable[[Atom], Formula]


def to_nnf(formula: Formula, negate_atom: NegateAtom) -> Formula:
    """Push negations down to atoms, eliminating :class:`Not` nodes.

    ``negate_atom`` maps a theory atom to a formula equivalent to its
    negation.  Negated relation atoms are kept as ``Not(RelationAtom)``
    because their complement is database-dependent; the calculus evaluator
    handles them explicitly.  Universal quantifiers are rewritten as negated
    existentials first, so the result contains only And/Or/Exists/atoms and
    possibly ``Not`` applied directly to relation atoms.
    """
    return _nnf(formula, negated=False, negate_atom=negate_atom)


def _nnf(formula: Formula, negated: bool, negate_atom: NegateAtom) -> Formula:
    if isinstance(formula, RelationAtom):
        return Not(formula) if negated else formula
    if isinstance(formula, Atom):
        return negate_atom(formula) if negated else formula
    if isinstance(formula, Not):
        return _nnf(formula.child, not negated, negate_atom)
    if isinstance(formula, And):
        parts = tuple(_nnf(c, negated, negate_atom) for c in formula.children)
        return Or(parts) if negated else And(parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(c, negated, negate_atom) for c in formula.children)
        return And(parts) if negated else Or(parts)
    if isinstance(formula, Exists):
        child = _nnf(formula.child, negated, negate_atom)
        if negated:
            return ForAll(formula.variables_bound, child)
        return Exists(formula.variables_bound, child)
    if isinstance(formula, ForAll):
        child = _nnf(formula.child, negated, negate_atom)
        if negated:
            return Exists(formula.variables_bound, child)
        return ForAll(formula.variables_bound, child)
    raise TypeError(f"not a formula: {formula!r}")


def to_dnf(formula: Formula) -> list[list[Formula]]:
    """Convert a quantifier-free NNF formula into DNF.

    Returns a list of conjunctions, each a list of literals (theory atoms,
    relation atoms, or ``Not(RelationAtom)``).  The empty list denotes
    falsity; a list containing the empty conjunction denotes truth.

    The expansion is the textbook distribution; its cost is exponential in
    the *query* size only, which is constant under data complexity
    (Definition 1.13).
    """
    if isinstance(formula, (Atom, RelationAtom)):
        return [[formula]]
    if isinstance(formula, Not):
        if isinstance(formula.child, RelationAtom):
            return [[formula]]
        raise ValueError("to_dnf expects NNF input (negations only on relation atoms)")
    if isinstance(formula, Or):
        result: list[list[Formula]] = []
        for child in formula.children:
            result.extend(to_dnf(child))
        return result
    if isinstance(formula, And):
        child_dnfs = [to_dnf(child) for child in formula.children]
        result = []
        for combination in itertools.product(*child_dnfs):
            conjunct: list[Formula] = []
            for part in combination:
                conjunct.extend(part)
            result.append(conjunct)
        return result
    raise ValueError(f"to_dnf expects a quantifier-free formula, got {formula!r}")


def dnf_to_formula(dnf: Sequence[Sequence[Formula]]) -> Formula:
    """Inverse of :func:`to_dnf`: rebuild an Or-of-Ands formula."""
    return disjoin(conjoin(tuple(conjunct)) for conjunct in dnf)
