"""First-order logic substrate: formula AST, transforms, and parsing.

The CQL framework of the paper combines a database query language with a
decidable logical theory.  This package provides the shared syntactic layer:

* :mod:`repro.logic.syntax` -- the formula AST (atoms, connectives,
  quantifiers, relation atoms) together with free-variable computation and
  variable renaming;
* :mod:`repro.logic.transform` -- negation normal form, disjunctive normal
  form, and quantifier-scope utilities used by the bottom-up evaluators;
* :mod:`repro.logic.parser` -- a small recursive-descent parser for a textual
  calculus / Datalog syntax used by the examples.
"""

from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    FALSE,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    TRUE,
    all_relation_atoms,
    free_variables,
    fresh_variable,
    rename_variables,
)
from repro.logic.transform import to_dnf, to_nnf

__all__ = [
    "And",
    "Atom",
    "Exists",
    "FALSE",
    "ForAll",
    "Formula",
    "Not",
    "Or",
    "RelationAtom",
    "TRUE",
    "all_relation_atoms",
    "free_variables",
    "fresh_variable",
    "rename_variables",
    "to_dnf",
    "to_nnf",
]
