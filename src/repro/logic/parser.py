"""A recursive-descent parser for textual CQL queries and Datalog programs.

Grammar (calculus queries)::

    formula   := "exists" vars "." formula
               | "forall" vars "." formula
               | disjunct
    disjunct  := conjunct ("or" conjunct)*
    conjunct  := unary ("and" unary)*
    unary     := "not" unary | "(" formula ")" | atom
    atom      := NAME "(" args ")"            -- database atom
               | arith OP arith               -- constraint atom
    OP        := "=" | "!=" | "<" | "<=" | ">" | ">="
    arith     := product (("+"|"-") product)*
    product   := factor ("*" factor)*
    factor    := NUMBER | NAME | "(" arith ")" | "-" factor

Datalog programs are sequences of rules ``Head(args) :- lit, lit, ... .``
where literals are database atoms, ``not`` database atoms, or constraint
atoms.

Database-atom arguments may be variables, numbers, or repeated variables;
following the paper's convention (Definition 1.6 footnote) constants and
repetitions are compiled into fresh variables plus equality constraints of
the active theory, wrapped in an existential quantifier (for queries) or
plain extra body constraints (for rules).

Arithmetic (+, -, *) is accepted only when the active theory is the real
polynomial theory; the dense-order and equality theories require each
comparison side to be a single variable or constant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction

from repro.constraints.base import ConstraintTheory
from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.constraints.real_poly import RealPolynomialTheory
from repro.constraints.terms import Const, Var
from repro.core.datalog import Rule
from repro.errors import ParseError
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    conjoin,
)
from repro.poly.polynomial import Polynomial

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+(?:\.\d+)?(?:/\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|!=|:-|[=<>(),.+\-*])"
    r")"
)

_KEYWORDS = {"exists", "forall", "and", "or", "not"}
_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}


class _DepthLimitError(ParseError):
    """The recursion-depth guard tripped (never caught by backtracking)."""


@dataclass
class _Token:
    kind: str  # "number" | "name" | "op" | "end"
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            if text[position:].strip():
                raise ParseError(f"unexpected character {text[position]!r}", position)
            break
        position = match.end()
        for kind in ("number", "name", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value, match.start(kind)))
                break
    tokens.append(_Token("end", "", len(text)))
    return tokens


class _Parser:
    #: maximum grammar nesting depth.  Each grammar level costs several
    #: Python frames (unary -> formula -> disjunct -> conjunct -> unary), so
    #: the bound is set well below CPython's default recursion limit: deeply
    #: nested input raises ParseError with a position instead of blowing the
    #: interpreter stack with RecursionError.
    MAX_DEPTH = 128

    def __init__(self, text: str, theory: ConstraintTheory) -> None:
        self.tokens = _tokenize(text)
        self.index = 0
        self.theory = theory
        self._fresh = 0
        self.depth = 0

    # ------------------------------------------------------------- plumbing
    def _descend(self) -> None:
        """Charge one grammar nesting level (paired with ``self.depth -= 1``)."""
        self.depth += 1
        if self.depth > self.MAX_DEPTH:
            raise _DepthLimitError(
                f"formula nesting exceeds the maximum depth of {self.MAX_DEPTH}",
                self.peek().position,
            )

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.peek()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.position)
        return self.advance()

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def fresh_var(self) -> str:
        self._fresh += 1
        return f"_k{self._fresh}"

    # -------------------------------------------------------------- formulas
    def parse_formula(self) -> Formula:
        self._descend()
        try:
            token = self.peek()
            if token.kind == "name" and token.text in ("exists", "forall"):
                self.advance()
                names = [self._variable_name()]
                while self.at(","):
                    self.advance()
                    names.append(self._variable_name())
                self.expect(".")
                child = self.parse_formula()
                constructor = Exists if token.text == "exists" else ForAll
                return constructor(tuple(names), child)
            return self.parse_disjunct()
        finally:
            self.depth -= 1

    def _variable_name(self) -> str:
        token = self.peek()
        if token.kind != "name" or token.text in _KEYWORDS:
            raise ParseError("expected a variable name", token.position)
        return self.advance().text

    def parse_disjunct(self) -> Formula:
        parts = [self.parse_conjunct()]
        while self.peek().text == "or":
            self.advance()
            parts.append(self.parse_conjunct())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_conjunct(self) -> Formula:
        parts = [self.parse_unary()]
        while self.peek().text == "and":
            self.advance()
            parts.append(self.parse_unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_unary(self) -> Formula:
        self._descend()
        try:
            token = self.peek()
            if token.text == "not":
                self.advance()
                return Not(self.parse_unary())
            if token.text == "(":
                # could be a parenthesized formula or a parenthesized
                # arithmetic expression starting a comparison; try formula
                # first by backtracking on failure -- except for the depth
                # guard, which must propagate or the fallback would just hit
                # it again via a deeper arithmetic recursion
                saved = self.index
                try:
                    self.advance()
                    inner = self.parse_formula()
                    self.expect(")")
                    if self.peek().text in _COMPARISONS:
                        raise ParseError("comparison", token.position)
                    return inner
                except _DepthLimitError:
                    raise
                except ParseError:
                    self.index = saved
                    return self.parse_atom()
            return self.parse_atom()
        finally:
            self.depth -= 1

    def parse_atom(self) -> Formula:
        token = self.peek()
        if (
            token.kind == "name"
            and token.text not in _KEYWORDS
            and self.tokens[self.index + 1].text == "("
            and not self._looks_like_arithmetic_call()
        ):
            return self._parse_relation_atom()
        return self._parse_comparison()

    def _looks_like_arithmetic_call(self) -> bool:
        # there are no function symbols, so NAME( is always a relation atom
        return False

    def _parse_relation_atom(self) -> Formula:
        name = self.advance().text
        self.expect("(")
        raw_args: list[tuple[str, object]] = []  # (kind, value)
        if not self.at(")"):
            while True:
                token = self.peek()
                if token.kind == "number" or token.text == "-":
                    raw_args.append(("const", self._parse_signed_number()))
                elif token.kind == "name" and token.text not in _KEYWORDS:
                    raw_args.append(("var", self.advance().text))
                else:
                    raise ParseError(
                        f"bad relation argument {token.text!r}", token.position
                    )
                if self.at(","):
                    self.advance()
                    continue
                break
        self.expect(")")
        # compile constants / repeated variables into equalities
        seen: set[str] = set()
        args: list[str] = []
        equalities: list[Atom] = []
        introduced: list[str] = []
        for kind, value in raw_args:
            if kind == "var" and value not in seen:
                seen.add(value)  # type: ignore[arg-type]
                args.append(value)  # type: ignore[arg-type]
                continue
            fresh = self.fresh_var()
            introduced.append(fresh)
            args.append(fresh)
            if kind == "var":
                equalities.append(self._equality_between_vars(fresh, str(value)))
            else:
                equalities.append(self._equality_with_constant(fresh, value))
        atom = RelationAtom(name, tuple(args))
        if not equalities:
            return atom
        inner = conjoin([atom, *equalities])
        return Exists(tuple(introduced), inner)

    def _equality_between_vars(self, left: str, right: str) -> Atom:
        if isinstance(self.theory, RealPolynomialTheory):
            return self.theory.equality(left, right)
        return self.theory.equality(Var(left), Var(right))

    def _equality_with_constant(self, var: str, value: object) -> Atom:
        if isinstance(self.theory, RealPolynomialTheory):
            return self.theory.equality(var, Polynomial.constant(value))  # type: ignore[arg-type]
        if isinstance(self.theory, DenseOrderTheory):
            return self.theory.equality(Var(var), Const(Fraction(value)))  # type: ignore[arg-type]
        return self.theory.equality(Var(var), Const(value))

    def _parse_signed_number(self) -> Fraction:
        negative = False
        while self.at("-"):
            self.advance()
            negative = not negative
        token = self.peek()
        if token.kind != "number":
            raise ParseError("expected a number", token.position)
        self.advance()
        value = _number_value(token.text)
        return -value if negative else value

    # ------------------------------------------------------------ comparisons
    def _parse_comparison(self) -> Formula:
        left = self._parse_arith()
        op_token = self.peek()
        if op_token.text not in _COMPARISONS:
            raise ParseError(
                f"expected a comparison operator, found {op_token.text!r}",
                op_token.position,
            )
        self.advance()
        right = self._parse_arith()
        return self._build_comparison(op_token.text, left, right, op_token.position)

    def _build_comparison(
        self, op: str, left: Polynomial, right: Polynomial, position: int
    ) -> Atom:
        if isinstance(self.theory, RealPolynomialTheory):
            from repro.constraints.real_poly import (
                poly_eq,
                poly_ge,
                poly_gt,
                poly_le,
                poly_lt,
                poly_ne,
            )

            builder = {
                "=": poly_eq,
                "!=": poly_ne,
                "<": poly_lt,
                "<=": poly_le,
                ">": poly_gt,
                ">=": poly_ge,
            }[op]
            return builder(left, right)
        left_term = _poly_as_term(left, position)
        right_term = _poly_as_term(right, position)
        if isinstance(self.theory, DenseOrderTheory):
            from repro.constraints import dense_order as od

            builder = {
                "=": od.eq,
                "!=": od.ne,
                "<": od.lt,
                "<=": od.le,
                ">": od.gt,
                ">=": od.ge,
            }[op]
            return builder(left_term, right_term)
        if isinstance(self.theory, EqualityTheory):
            if op not in ("=", "!="):
                raise ParseError(
                    f"the equality theory has no order comparison {op!r}", position
                )
            from repro.constraints import equality as eqth

            return eqth.eq(left_term, right_term) if op == "=" else eqth.ne(
                left_term, right_term
            )
        raise ParseError(
            f"theory {self.theory.name!r} has no textual comparison syntax", position
        )

    def _parse_arith(self) -> Polynomial:
        result = self._parse_product()
        while self.peek().text in ("+", "-"):
            op = self.advance().text
            operand = self._parse_product()
            result = result + operand if op == "+" else result - operand
        return result

    def _parse_product(self) -> Polynomial:
        result = self._parse_factor()
        while self.peek().text == "*":
            self.advance()
            result = result * self._parse_factor()
        return result

    def _parse_factor(self) -> Polynomial:
        self._descend()
        try:
            token = self.peek()
            if token.text == "-":
                self.advance()
                return -self._parse_factor()
            if token.kind == "number":
                self.advance()
                return Polynomial.constant(_number_value(token.text))
            if token.text == "(":
                self.advance()
                inner = self._parse_arith()
                self.expect(")")
                return inner
            if token.kind == "name" and token.text not in _KEYWORDS:
                self.advance()
                return Polynomial.variable(token.text)
            raise ParseError(
                f"bad arithmetic factor {token.text!r}", token.position
            )
        finally:
            self.depth -= 1

    # ----------------------------------------------------------------- rules
    def parse_rule(self) -> Rule:
        head_formula = self._parse_relation_atom()
        if isinstance(head_formula, Exists):
            raise ParseError(
                "rule heads must use distinct variables (no constants); "
                "add equality constraints in the body instead",
                self.peek().position,
            )
        assert isinstance(head_formula, RelationAtom)
        self.expect(":-")
        body: list[object] = []
        while True:
            token = self.peek()
            if token.text == "not":
                self.advance()
                literal = self._parse_relation_atom()
                literal, extras = _flatten_body_atom(literal)
                if extras:
                    raise ParseError(
                        "negated body atoms must use plain distinct variables",
                        token.position,
                    )
                body.append(Not(literal))
            elif (
                token.kind == "name"
                and token.text not in _KEYWORDS
                and self.tokens[self.index + 1].text == "("
            ):
                literal = self._parse_relation_atom()
                flat, extras = _flatten_body_atom(literal)
                body.append(flat)
                body.extend(extras)
            else:
                body.append(self._parse_comparison())
            if self.at(","):
                self.advance()
                continue
            break
        self.expect(".")
        return Rule(head_formula, tuple(body))

    def parse_program(self) -> list[Rule]:
        rules = []
        while self.peek().kind != "end":
            rules.append(self.parse_rule())
        return rules


def _flatten_body_atom(formula: Formula) -> tuple[RelationAtom, list[Atom]]:
    """Unwrap the Exists(atom and equalities) encoding used for constants."""
    if isinstance(formula, RelationAtom):
        return formula, []
    if isinstance(formula, Exists) and isinstance(formula.child, And):
        atom = formula.child.children[0]
        extras = list(formula.child.children[1:])
        assert isinstance(atom, RelationAtom)
        return atom, extras  # type: ignore[return-value]
    raise ParseError(f"expected a database atom, got {formula}", 0)


def _poly_as_term(poly: Polynomial, position: int):
    """A polynomial that is a bare variable or constant, as a theory term."""
    if poly.is_constant():
        return Const(poly.constant_value())
    linear = poly.as_linear()
    if linear is not None:
        coeffs, constant = linear
        if constant == 0 and len(coeffs) == 1:
            (name, coeff), = coeffs.items()
            if coeff == 1:
                return Var(name)
    raise ParseError(
        "this theory allows only a variable or a constant on each comparison "
        f"side, got {poly}",
        position,
    )


def _number_value(text: str) -> Fraction:
    if "/" in text:
        numerator, denominator = text.split("/")
        return Fraction(int(numerator), int(denominator))
    if "." in text:
        return Fraction(text)
    return Fraction(int(text))


def parse_query(text: str, theory: ConstraintTheory) -> Formula:
    """Parse a relational calculus + constraints query program."""
    parser = _Parser(text, theory)
    formula = parser.parse_formula()
    end = parser.peek()
    if end.kind != "end":
        raise ParseError(f"trailing input {end.text!r}", end.position)
    return formula


def parse_rules(text: str, theory: ConstraintTheory) -> list[Rule]:
    """Parse a Datalog + constraints program (a sequence of rules)."""
    return _Parser(text, theory).parse_program()
