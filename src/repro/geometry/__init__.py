"""Classical computational-geometry baselines.

The paper argues CQL programs express common geometry tasks (Examples 1.1,
2.1, 2.2) while "the general-purpose bottom-up evaluation ... is not as
efficient as the various specialized computational geometry algorithms".
This package provides those specialized algorithms so the benchmarks can
measure exactly that gap:

* :mod:`repro.geometry.convex_hull` -- Graham scan (O(N log N)) and the
  naive in-triangle filter (Floyd's O(N^4) method, the query's semantics);
* :mod:`repro.geometry.rectangles` -- sweep-line rectangle intersection and
  the brute-force pair check;
* :mod:`repro.geometry.voronoi` -- Voronoi-dual (Delaunay-adjacency)
  computation by the direct definition used in Example 2.2.

Everything is exact rational arithmetic.
"""

from repro.geometry.convex_hull import convex_hull_graham, convex_hull_naive, in_triangle
from repro.geometry.rectangles import (
    Rect,
    intersecting_pairs_bruteforce,
    intersecting_pairs_sweepline,
)
from repro.geometry.voronoi import voronoi_dual_naive

__all__ = [
    "Rect",
    "convex_hull_graham",
    "convex_hull_naive",
    "in_triangle",
    "intersecting_pairs_bruteforce",
    "intersecting_pairs_sweepline",
    "voronoi_dual_naive",
]
