"""The Voronoi dual (Delaunay adjacency) by the direct definition (Example 2.2).

"Two points u and v are adjacent in the Voronoi dual iff all the points on
the line from u to v are closer to u or to v than to any other point in the
database."  The condition is expressible in relational calculus + real
polynomial constraints; this module evaluates it directly with exact
rational arithmetic, serving as the geometric reference implementation the
CQL query is validated against.

For a point p = u + t(v - u) on the segment, "closer to u or v than to w"
is |p-u|^2 < |p-w|^2 or |p-v|^2 < |p-w|^2 -- after expansion the conditions
are *linear* in t, so for each witness w the violating t-set is an
intersection of half-lines and the whole check reduces to exact interval
reasoning over t in [0, 1].
"""

from __future__ import annotations

import itertools
from fractions import Fraction

Pt = tuple[Fraction, Fraction]


def _closer_interval(u: Pt, v: Pt, w: Pt) -> tuple[Fraction | None, Fraction | None, bool, bool] | None:
    """The t-interval where p(t) = u + t(v-u) is strictly closer to w than to
    *both* u and v; None when empty.

    |p - w|^2 < |p - u|^2 expands to a condition linear in t (the quadratic
    terms cancel); same against v.  Returns (low, high, low_strict, high_strict)
    bounds over the reals.
    """
    dx, dy = v[0] - u[0], v[1] - u[1]

    def half_plane(center: Pt) -> tuple[str, Fraction] | None:
        # |p - w|^2 - |p - center|^2 < 0 as  a*t + b < 0
        # p = u + t d;  |p-w|^2 - |p-c|^2 = -2 p.(w - c) + |w|^2 - |c|^2
        wx, wy = w
        cx, cy = center
        a = -2 * (dx * (wx - cx) + dy * (wy - cy))
        b = (
            -2 * (u[0] * (wx - cx) + u[1] * (wy - cy))
            + (wx * wx + wy * wy)
            - (cx * cx + cy * cy)
        )
        # condition: a t + b < 0
        if a == 0:
            return ("all", Fraction(0)) if b < 0 else None
        if a > 0:
            return ("lt", -b / a)  # t < -b/a
        return ("gt", -b / a)  # t > -b/a

    low: Fraction | None = None
    high: Fraction | None = None
    for center in (u, v):
        condition = half_plane(center)
        if condition is None:
            return None
        kind, bound = condition
        if kind == "all":
            continue
        if kind == "lt":
            if high is None or bound < high:
                high = bound
        else:
            if low is None or bound > low:
                low = bound
    return (low, high, True, True)


def voronoi_dual_naive(points: list[Pt]) -> set[tuple[Pt, Pt]]:
    """All Voronoi-adjacent (Delaunay) pairs, by the segment criterion.

    u ~ v iff no third point w strictly dominates a sub-segment of [u, v]:
    i.e. for every w, the open t-interval where w is strictly closer than
    both u and v misses [0, 1].
    """
    result: set[tuple[Pt, Pt]] = set()
    for u, v in itertools.combinations(points, 2):
        adjacent = True
        for w in points:
            if w == u or w == v:
                continue
            interval = _closer_interval(u, v, w)
            if interval is None:
                continue
            low, high, _, _ = interval
            # does the open interval (low, high) intersect [0, 1]?
            effective_low = low if low is not None else Fraction(-1)
            effective_high = high if high is not None else Fraction(2)
            if effective_low >= effective_high:
                continue
            if effective_high <= 0 or effective_low >= 1:
                continue
            adjacent = False
            break
        if adjacent:
            result.add((u, v))
            result.add((v, u))
    return result
