"""Convex hulls: Graham scan and Floyd's naive method (Example 2.1).

The paper's Example 2.1 expresses the convex hull in relational calculus +
polynomial constraints: a point is on the hull iff no three other database
points put it inside their triangle.  "The naive algorithm based on this
observation, known as Floyd's method, takes O(N^4) time ...  it cannot
compete with various known O(N log N) algorithms" -- both are implemented
here with exact rational arithmetic, and the benchmark measures the gap.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Sequence

Pt = tuple[Fraction, Fraction]


def _orient(a: Pt, b: Pt, c: Pt) -> Fraction:
    """Twice the signed area of triangle abc (positive = counterclockwise)."""
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def in_triangle(p: Pt, a: Pt, b: Pt, c: Pt) -> bool:
    """Whether ``p`` lies inside or on the triangle abc (any orientation).

    This is the ``Intriangle`` predicate of Example 2.1: expressible with
    polynomial inequality constraints (three orientation signs agree).
    """
    d1 = _orient(p, a, b)
    d2 = _orient(p, b, c)
    d3 = _orient(p, c, a)
    has_negative = d1 < 0 or d2 < 0 or d3 < 0
    has_positive = d1 > 0 or d2 > 0 or d3 > 0
    return not (has_negative and has_positive)


def convex_hull_naive(points: Sequence[Pt]) -> list[Pt]:
    """Floyd's O(N^4) method: keep points in no other triangle.

    Mirrors the Example 2.1 query exactly: a point is *not* a hull point iff
    three other points of the input contain it in their (non-degenerate)
    triangle.
    """
    unique = list(dict.fromkeys(points))
    hull = []
    for p in unique:
        others = [q for q in unique if q != p]
        inside = False
        for a, b, c in itertools.combinations(others, 3):
            if _orient(a, b, c) == 0:
                continue  # degenerate triangle contains only its segment
            if in_triangle(p, a, b, c):
                inside = True
                break
        if not inside:
            hull.append(p)
    return hull


def convex_hull_graham(points: Sequence[Pt]) -> list[Pt]:
    """Graham scan / Andrew monotone chain, O(N log N), exact arithmetic.

    Returns the hull in counterclockwise order, including collinear boundary
    points *excluded* (strict hull vertices), matching what Floyd's method
    keeps for points in general position; collinear middle points are
    inside a degenerate "triangle" of the hull per Example 2.1's semantics
    only when a containing non-degenerate triangle exists, so for exact
    agreement the naive-vs-fast benchmarks use general-position inputs.
    """
    unique = sorted(set(points))
    if len(unique) <= 2:
        return unique

    def half(points_iter):
        chain: list[Pt] = []
        for p in points_iter:
            while len(chain) >= 2 and _orient(chain[-2], chain[-1], p) <= 0:
                chain.pop()
            chain.append(p)
        return chain

    lower = half(unique)
    upper = half(reversed(unique))
    return lower[:-1] + upper[:-1]
