"""Rectangle intersection: brute force and sweep line (Example 1.1 baselines).

"The problem of computing all rectangle intersections" is the paper's
motivating spatial-database task (Figure 2).  The CQL expresses it in one
line; these are the specialized algorithms it is compared against:

* brute force: test all O(N^2) pairs with the closed-rectangle overlap test;
* sweep line: sort the x-extents' events, sweep with an interval tree over
  the y-extents -- O((N + K) log N).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.indexing.interval import Interval
from repro.indexing.interval_tree import IntervalTree


@dataclass(frozen=True)
class Rect:
    """An axis-parallel closed rectangle named ``n`` (Example 1.1's tuples)."""

    name: object
    x1: Fraction
    y1: Fraction
    x2: Fraction
    y2: Fraction

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            raise ValueError(f"malformed rectangle {self}")

    def intersects(self, other: "Rect") -> bool:
        return not (
            self.x2 < other.x1
            or other.x2 < self.x1
            or self.y2 < other.y1
            or other.y2 < self.y1
        )


def intersecting_pairs_bruteforce(rects: list[Rect]) -> set[tuple[object, object]]:
    """All ordered pairs of distinct intersecting rectangles, O(N^2)."""
    result: set[tuple[object, object]] = set()
    for i, a in enumerate(rects):
        for b in rects[i + 1:]:
            if a.intersects(b):
                result.add((a.name, b.name))
                result.add((b.name, a.name))
    return result


def intersecting_pairs_sweepline(rects: list[Rect]) -> set[tuple[object, object]]:
    """Sweep over x with an interval tree on y: O((N + K) log N)."""
    events: list[tuple[Fraction, int, Rect]] = []
    for rect in rects:
        events.append((rect.x1, 0, rect))  # 0 = open before close at same x
        events.append((rect.x2, 1, rect))
    events.sort(key=lambda e: (e[0], e[1]))
    active = IntervalTree()
    result: set[tuple[object, object]] = set()
    for _, kind, rect in events:
        y_interval = Interval(rect.y1, rect.y2, payload=rect)
        if kind == 0:
            for hit in active.overlapping(y_interval):
                other: Rect = hit.payload
                result.add((rect.name, other.name))
                result.add((other.name, rect.name))
            active.insert(y_interval)
        else:
            active.remove(y_interval)
    return result
