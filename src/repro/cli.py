"""An interactive constraint-database shell.

A small REPL over the CQL engines, so the system can be explored without
writing Python::

    $ python -m repro
    cql> .theory dense_order
    cql> .relation R(n, x)
    cql> .tuple R: n = 1 and 0 <= x and x <= 4
    cql> .point R: 2, 9
    cql> .query exists x . R(n, x) and x < 2
    result(n):
      (n) where n = 1
    cql> .rule T(a, b) :- E(a, b).
    cql> .run
    cql> .quit

Commands: ``.theory``, ``.relation``, ``.tuple``, ``.point``, ``.query``,
``.rule``, ``.run``, ``.view``, ``.insert``, ``.retract``, ``.plan``,
``.show``, ``.list``, ``.help``, ``.quit``.

``.view on`` registers the accumulated rules as a live materialized view
over the current database; from then on ``.insert``/``.retract`` apply
deltas and the derived relations are maintained incrementally (counting /
DRed through the same compiled closures ``.run`` uses) instead of being
recomputed::

    cql> .rule T(a, b) :- E(a, b).
    cql> .rule T(a, c) :- T(a, b), E(b, c).
    cql> .view on
    cql> .insert E: x = 1 and y = 2
    cql> .retract E: x = 1 and y = 2
    cql> .view
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Callable, TextIO

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ivm import MaterializedView

from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.constraints.real_poly import RealPolynomialTheory
from repro.core.calculus import evaluate_calculus
from repro.core.datalog import DatalogProgram, EngineOptions, Rule
from repro.core.generalized import GeneralizedDatabase
from repro.errors import ReproError
from repro.logic.parser import parse_query, parse_rules
from repro.logic.syntax import And, Atom, Formula
from repro.runtime.budget import Budget, parse_budget_spec, supervised

THEORIES: dict[str, Callable[[], object]] = {
    "dense_order": DenseOrderTheory,
    "equality": EqualityTheory,
    "real_poly": RealPolynomialTheory,
}

HELP = """commands:
  .theory NAME            switch theory (dense_order | equality | real_poly);
                          resets the database
  .relation R(x, y)       declare a generalized relation
  .tuple R: CONSTRAINTS   add a generalized tuple, e.g. .tuple R: 0 <= x and x <= 4
  .point R: v1, v2        add a classical ground tuple
  .query FORMULA          evaluate a query.  A quantifier-free goal naming a
                          rule head -- .query T(0, y) or .query T(x, y), x < 3
                          -- runs demand-driven (magic sets): only the cone
                          relevant to the bindings is derived, no .run needed.
                          Anything else is a calculus query over the current
                          database, e.g. exists x . R(n, x)
  .rule HEAD :- BODY.     add a Datalog rule
  .run                    evaluate the accumulated rules to their fixpoint
  .view [on|off|refresh]  maintain the rules as a live materialized view:
                          .view on registers it, .insert/.retract then update
                          the fixpoint incrementally; bare .view shows status
                          (mode, staleness, maintenance counters); .view
                          refresh rebuilds a stale view from scratch
  .insert R: CONSTRAINTS  insert a generalized tuple through the view
  .retract R: CONSTRAINTS retract a generalized tuple through the view
  .budget SPEC            resource budget for .run/.query, e.g.
                          .budget deadline=0.05 rounds=100 fringe
                          (.budget off clears it; bare .budget shows it)
  .engine [FLAG=on|off]   show or toggle fast-path flags for .run, e.g.
                          .engine index_probes=off parallel=on
                          (.engine all_on / .engine all_off reset the lot;
                          also reports the rule-compiler plan-cache state
                          and the sharded-cluster state of the last .run)
  .workers N              evaluate .run fixpoints sharded across N worker
                          processes (supervised, deterministic merge);
                          .workers 0 or 1 goes back to in-process
  .plan RULE              pretty-print the lowered IR for a rule, by head
                          predicate name or 1-based position in .list order
  .analyze                semantic analysis of the accumulated rules:
                          subsumption, literal elimination, constraint
                          tightening, unsat pruning (CQL040-range report
                          plus the minimized rule set; report-only)
  .show R                 print a relation
  .list                   list relations and rules
  .help                   this text
  .quit                   leave"""


class Shell:
    """State and command dispatch for the REPL (testable without a TTY)."""

    def __init__(self, out: TextIO | None = None) -> None:
        import sys

        self.out = out or sys.stdout
        self.theory_name = "dense_order"
        self.theory = DenseOrderTheory()
        self.db = GeneralizedDatabase(self.theory)
        self.rules: list[Rule] = []
        self.budget: Budget | None = None
        self.engine = EngineOptions()
        self.view: MaterializedView | None = None
        #: cluster summary of the last sharded .run (shown by .engine)
        self.last_cluster: dict | None = None

    def write(self, text: str) -> None:
        print(text, file=self.out)

    # ------------------------------------------------------------- dispatch
    def handle(self, line: str) -> bool:
        """Process one line; returns False when the shell should exit."""
        line = line.strip()
        if not line:
            return True
        try:
            return self._dispatch(line)
        except ReproError as error:
            self.write(f"error: {error}")
            return True
        except (ValueError, KeyError) as error:
            self.write(f"error: {error}")
            return True

    def _dispatch(self, line: str) -> bool:
        if line in (".quit", ".exit"):
            return False
        if line == ".help":
            self.write(HELP)
            return True
        if line == ".list":
            self._list()
            return True
        if line == ".run":
            self._run_rules()
            return True
        if line == ".analyze":
            self._analyze()
            return True
        if line == ".view":
            self._view("")
            return True
        if line == ".budget":
            self._set_budget("")
            return True
        if line == ".engine":
            self._set_engine("")
            return True
        command, _, rest = line.partition(" ")
        rest = rest.strip()
        if command == ".theory":
            self._set_theory(rest)
        elif command == ".relation":
            self._declare_relation(rest)
        elif command == ".tuple":
            self._add_tuple(rest)
        elif command == ".point":
            self._add_point(rest)
        elif command == ".query":
            self._query(rest)
        elif command == ".rule":
            if self._view_blocks("rule changes"):
                return True
            self.rules.extend(parse_rules(rest, theory=self.theory))
            self.write(f"rule added ({len(self.rules)} total)")
        elif command == ".view":
            self._view(rest)
        elif command == ".insert":
            self._delta("insert", rest)
        elif command == ".retract":
            self._delta("retract", rest)
        elif command == ".plan":
            self._plan(rest)
        elif command == ".show":
            self.write(str(self.db.relation(rest)))
        elif command == ".budget":
            self._set_budget(rest)
        elif command == ".engine":
            self._set_engine(rest)
        elif command == ".workers":
            self._set_workers(rest)
        else:
            self.write(f"unknown command {command!r}; try .help")
        return True

    # ------------------------------------------------------------- commands
    def _view_blocks(self, action: str) -> bool:
        """True (with a hint) when a live view forbids direct mutation."""
        if self.view is None:
            return False
        self.write(
            f"a live view is registered; {action} would bypass maintenance "
            "-- use .insert/.retract, or .view off first"
        )
        return True

    def _set_theory(self, name: str) -> None:
        factory = THEORIES.get(name)
        if factory is None:
            self.write(f"unknown theory {name!r}; options: {sorted(THEORIES)}")
            return
        self._drop_view()
        self.theory_name = name
        self.theory = factory()  # type: ignore[assignment]
        self.db = GeneralizedDatabase(self.theory)  # type: ignore[arg-type]
        self.rules = []
        self.write(f"theory set to {name}; database reset")

    def _declare_relation(self, spec: str) -> None:
        if self._view_blocks("declaring relations"):
            return
        name, _, args = spec.partition("(")
        if not args.endswith(")"):
            self.write("usage: .relation R(x, y)")
            return
        variables = tuple(a.strip() for a in args[:-1].split(",") if a.strip())
        self.db.create_relation(name.strip(), variables)
        self.write(f"relation {name.strip()}/{len(variables)} created")

    def _parse_conjunction(self, text: str) -> tuple[Atom, ...]:
        formula = parse_query(text, theory=self.theory)
        atoms: list[Atom] = []

        def collect(node: Formula) -> None:
            if isinstance(node, And):
                for child in node.children:
                    collect(child)
            elif isinstance(node, Atom):
                atoms.append(node)
            else:
                raise ReproError(
                    "a generalized tuple is a conjunction of constraint atoms"
                )

        collect(formula)
        return tuple(atoms)

    def _add_tuple(self, spec: str) -> None:
        if self._view_blocks("direct tuple writes"):
            return
        name, _, constraints = spec.partition(":")
        relation = self.db.relation(name.strip())
        added = relation.add_tuple(self._parse_conjunction(constraints.strip()))
        self.write("tuple added" if added else "tuple already present (or unsatisfiable)")

    def _add_point(self, spec: str) -> None:
        if self._view_blocks("direct tuple writes"):
            return
        name, _, values = spec.partition(":")
        relation = self.db.relation(name.strip())
        parsed = []
        for raw in values.split(","):
            raw = raw.strip()
            try:
                parsed.append(Fraction(raw))
            except ValueError:
                parsed.append(raw)
        added = relation.add_point(parsed)
        self.write("point added" if added else "point already present")

    def _set_budget(self, spec: str) -> None:
        if not spec:
            if self.budget is None:
                self.write("no budget set; .budget deadline=0.05 rounds=100")
            else:
                parts = ", ".join(
                    f"{k}={v}"
                    for k, v in self.budget.as_dict().items()
                    if v is not None and k != "partial_results"
                )
                self.write(
                    f"budget: {parts or 'unlimited'} "
                    f"(on exhaustion: {self.budget.partial_results})"
                )
            return
        if spec == "off":
            self.budget = None
            self.write("budget cleared")
            return
        self.budget = parse_budget_spec(spec)
        self._set_budget("")

    def _set_engine(self, spec: str) -> None:
        from dataclasses import replace

        if not spec:
            from repro.core.compile import PLAN_CACHE

            flags = ", ".join(
                f"{name}={'on' if value else 'off'}"
                for name, value in self.engine.as_dict().items()
            )
            self.write(f"engine: {flags}")
            self.write(
                "query path: magic "
                + ("on" if self.engine.magic else "off (full-fixpoint oracle)")
            )
            cache = PLAN_CACHE.stats()
            self.write(
                "plan cache: {entries} compiled program(s), "
                "{hits} hits, {misses} misses, "
                "{invalidations} invalidations".format(**cache)
            )
            if self.engine.sharded:
                pool = self.engine.shard_workers or "auto"
                self.write(f"cluster: sharded over {pool} worker process(es)")
            else:
                self.write("cluster: off (in-process evaluation)")
            if self.last_cluster is not None:
                summary = self.last_cluster
                states = ", ".join(summary.get("worker_states", ())) or "-"
                self.write(
                    "last run: {dispatched} shard(s) dispatched, "
                    "{redispatched} re-dispatched, {restarts} worker "
                    "restart(s), workers [{states}]{degraded}".format(
                        dispatched=summary.get("shards_dispatched", 0),
                        redispatched=summary.get("shards_redispatched", 0),
                        restarts=summary.get("restarts", 0),
                        states=states,
                        degraded=(
                            " -- DEGRADED to in-process"
                            if summary.get("degraded")
                            else ""
                        ),
                    )
                )
            return
        if spec == "all_on":
            self.engine = EngineOptions.all_on()
        elif spec == "all_off":
            self.engine = EngineOptions.all_off()
        else:
            known = self.engine.as_dict()
            # the demand-driven query path is togglable too, though it is
            # not a fixpoint grid flag (absent from as_dict)
            known["magic"] = self.engine.magic
            for token in spec.split():
                name, sep, state = token.partition("=")
                if not sep or name not in known or state not in ("on", "off"):
                    self.write(
                        f"usage: .engine FLAG=on|off with FLAG in "
                        f"{sorted(known)} (or .engine all_on / all_off)"
                    )
                    return
                self.engine = replace(self.engine, **{name: state == "on"})
        self._set_engine("")

    def _set_workers(self, spec: str) -> None:
        from dataclasses import replace

        try:
            count = int(spec)
        except ValueError:
            self.write("usage: .workers N (0 or 1 turns sharding off)")
            return
        if count < 0:
            self.write("usage: .workers N (0 or 1 turns sharding off)")
            return
        if count <= 1:
            self.engine = replace(self.engine, sharded=False, shard_workers=0)
            self.write("sharding off; .run evaluates in-process")
            return
        self.engine = replace(self.engine, sharded=True, shard_workers=count)
        self.write(
            f"sharding on: .run fans rounds across {count} worker "
            "processes (byte-identical to serial; degrades to in-process "
            "on pool failure)"
        )

    def _query(self, text: str) -> None:
        if self._magic_query(text):
            return
        query = parse_query(text, theory=self.theory)
        # a tripped budget raises BudgetExceededError (a ReproError), which
        # the dispatcher surfaces as a plain shell error
        with supervised(self.budget):
            result = evaluate_calculus(query, self.db)
        self.write(str(result))

    def _magic_query(self, text: str) -> bool:
        """Route a rule-goal query through the demand-driven engine.

        Fires only for quantifier-free goals naming an IDB head of the
        accumulated rules -- ``.query T(0, y)`` or ``.query T(x, y), x < 3``
        evaluate just the relevant cone via the magic-set rewrite instead
        of requiring a full ``.run`` first.  Everything else (calculus
        formulas, EDB atoms, quantified queries) keeps the calculus path.
        """
        rules = self.view.program.rules if self.view is not None else self.rules
        if not rules or any(word in text for word in ("exists", "forall")):
            return False
        from repro.core.magic import parse_goal

        try:
            goal = parse_goal(text, self.theory)
        except ReproError:
            return False
        if goal.predicate not in {rule.head.name for rule in rules}:
            return False
        from dataclasses import replace

        from repro.core.query import Engine

        options = replace(self.engine, budget=self.budget)
        if self.view is not None:
            engine = Engine.from_view(self.view, options=options)
        else:
            engine = Engine(rules, self.theory, options=options, database=self.db)
        with supervised(self.budget):
            result = engine.query(text)
        self.write(str(result.relation))
        if result.full_fallback:
            mode = "full-evaluation fallback"
        elif not self.engine.magic:
            mode = "full fixpoint (magic off)"
        else:
            mode = f"{result.magic_rules} magic rule(s)"
        line = (
            f"-- {len(result)} answer(s) "
            f"[{goal.predicate}^{result.adornment}, {mode}, "
            f"cone {result.cone_tuples} tuple(s)]"
        )
        if result.fallback_predicates:
            line += " [full evaluation for negation strata: " + ", ".join(
                result.fallback_predicates
            ) + "]"
        self.write(line)
        return True

    def _run_rules(self) -> None:
        if self.view is not None:
            self.write(
                "the live view already maintains the fixpoint; "
                ".show/.view to inspect, .view off to go back to .run"
            )
            return
        if not self.rules:
            self.write("no rules; add some with .rule")
            return
        from dataclasses import replace

        program = DatalogProgram(
            self.rules, self.theory, options=replace(self.engine, budget=self.budget)
        )
        world, stats = program.evaluate(self.db)
        self.db = world
        self.last_cluster = stats.cluster
        status = f"fixpoint in {stats.iterations} iterations"
        if self.engine.sharded and stats.shard_rounds:
            status += f" ({stats.shard_rounds} sharded round(s))"
        if stats.shard_fallback:
            status += f" [cluster degraded: {stats.shard_fallback}]"
        if stats.incomplete:
            exhausted = (stats.budget or {}).get("budget_kind", "budget")
            status = (
                f"PARTIAL fixpoint ({exhausted} budget exhausted after "
                f"{stats.iterations} iterations; sound under-approximation)"
            )
        self.write(f"{status}, {stats.tuples_added} tuples added")
        for name in sorted(program.idb_predicates()):
            self.write(str(world.relation(name)))

    # --------------------------------------------------- materialized views
    def _drop_view(self) -> None:
        if self.view is not None:
            self.view.close()
            self.view = None

    def _view(self, spec: str) -> None:
        from dataclasses import replace

        from repro.core.ivm import MaterializedView

        if spec == "on":
            if self.view is not None:
                self.write("a view is already registered; .view off first")
                return
            if not self.rules:
                self.write("no rules; add some with .rule before .view on")
                return
            program = DatalogProgram(
                self.rules,
                self.theory,
                options=replace(self.engine, budget=self.budget),
            )
            self.view = MaterializedView(program, self.db)
            self.db = self.view.world
            self._view("")
            return
        if spec == "off":
            if self.view is None:
                self.write("no view registered")
                return
            # the maintained world (EDB + derived relations) stays queryable
            self.db = self.view.world
            self._drop_view()
            self.write("view dropped; database keeps the last maintained state")
            return
        if spec == "refresh":
            if self.view is None:
                self.write("no view registered")
                return
            stats = self.view.refresh()
            self.db = self.view.world
            state = "stale" if self.view.stale else "fresh"
            self.write(
                f"view rebuilt from scratch ({state}, "
                f"{stats.tuples_added} tuples derived)"
            )
            return
        if spec:
            self.write("usage: .view [on|off|refresh]")
            return
        if self.view is None:
            self.write("no view registered; .view on materializes the rules")
            return
        view = self.view
        staleness = (
            f"STALE ({view.stale_reason}); .view refresh to rebuild"
            if view.stale
            else "fresh"
        )
        self.write(f"view: mode={view.mode}, {staleness}")
        totals = view.total_stats
        self.write(
            f"  maintenance: {totals.ivm_steps} batch(es), "
            f"+{totals.ivm_inserts}/-{totals.ivm_retracts} base tuples, "
            f"+{totals.ivm_derived_added}/-{totals.ivm_derived_removed} derived "
            f"(rederived {totals.ivm_rederived} of {totals.ivm_overdeleted} "
            f"overdeleted, {totals.ivm_recomputed_strata} strata recomputed, "
            f"{totals.ivm_maintain_seconds:.4f}s)"
        )

    def _delta(self, op: str, spec: str) -> None:
        if self.view is None:
            self.write(f"no view registered; .view on enables .{op}")
            return
        name, sep, constraints = spec.partition(":")
        if not sep:
            self.write(f"usage: .{op} R: CONSTRAINTS")
            return
        atoms = self._parse_conjunction(constraints.strip())
        if op == "insert":
            stats = self.view.insert(name.strip(), atoms)
        else:
            stats = self.view.retract(name.strip(), atoms)
        self.db = self.view.world
        if self.view.stale:
            self.write(
                f"budget exhausted mid-maintenance: view is STALE "
                f"({self.view.stale_reason}); .view refresh to rebuild"
            )
            return
        applied = stats.ivm_inserts if op == "insert" else stats.ivm_retracts
        if not applied:
            self.write(f"no-op ({op} of a {'present' if op == 'insert' else 'missing'} tuple)")
            return
        self.write(
            f"{op} applied: +{stats.ivm_derived_added}/"
            f"-{stats.ivm_derived_removed} derived tuples "
            f"in {stats.ivm_maintain_seconds:.4f}s"
        )

    def _analyze(self) -> None:
        from repro.analysis.semantic import CONTAINMENT_THEORIES, optimize_program

        if not self.rules:
            self.write("no rules; add some with .rule")
            return
        result = optimize_program(self.rules, self.theory)
        stats = result.stats
        self.write(
            f"semantic analysis over {self.theory_name}: "
            f"{len(result.original)} rule(s) -> {len(result.rules)} rule(s)"
        )
        if self.theory_name not in CONTAINMENT_THEORIES:
            self.write(
                f"  (containment is undecided for {self.theory_name}: the "
                "subsumption/minimization passes are no-ops)"
            )
        self.write(
            f"  subsumed={stats.rules_subsumed} "
            f"literals_eliminated={stats.literals_eliminated} "
            f"constraints_tightened={stats.constraints_tightened} "
            f"unsat_removed={stats.unsat_rules_removed} "
            f"containment_checks={stats.containment_checks} "
            f"({stats.containment_seconds:.4f}s)"
        )
        if stats.budget_tripped:
            self.write("  budget exhausted mid-analysis: partial report")
        for diagnostic in result.diagnostics:
            self.write(f"  {diagnostic.render()}")
        if result.changed:
            self.write("minimized rules:")
            for rule in result.rules:
                self.write(f"  {rule}")
        else:
            self.write("no rewrites: the program is already minimal")

    def _plan(self, selector: str) -> None:
        from repro.core.compile import render_plan

        if not self.rules:
            self.write("no rules; add some with .rule")
            return
        if not selector:
            self.write("usage: .plan HEAD_NAME or .plan N (1-based .list order)")
            return
        if selector.isdigit():
            index = int(selector)
            if not 1 <= index <= len(self.rules):
                self.write(f"rule index out of range (1..{len(self.rules)})")
                return
            chosen = [self.rules[index - 1]]
        else:
            chosen = [r for r in self.rules if r.head.name == selector]
            if not chosen:
                heads = sorted({r.head.name for r in self.rules})
                self.write(f"no rule with head {selector!r}; heads: {heads}")
                return
        program = DatalogProgram(self.rules, self.theory, options=self.engine)
        for rule in chosen:
            self.write(render_plan(program, rule, self.db))

    def _list(self) -> None:
        self.write(f"theory: {self.theory_name}")
        for name in self.db.names():
            relation = self.db.relation(name)
            self.write(f"  {name}/{relation.arity}: {len(relation)} tuples")
        for rule in self.rules:
            self.write(f"  rule: {rule}")


def main() -> None:
    """Entry point for ``python -m repro``."""
    shell = Shell()
    shell.write("constraint query language shell -- .help for commands")
    while True:
        try:
            line = input("cql> ")
        except (EOFError, KeyboardInterrupt):
            shell.write("")
            break
        if not shell.handle(line):
            break


if __name__ == "__main__":  # pragma: no cover
    main()
