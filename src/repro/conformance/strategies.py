"""The strategy registry: every way the engine can evaluate one case.

Each :class:`Strategy` is an adapter from a :class:`~repro.conformance.spec.
CaseSpec` to a :class:`~repro.core.generalized.GeneralizedRelation` over the
spec's output schema.  Every run calls :func:`~repro.conformance.spec.
build_case` itself, so each strategy gets a *fresh* theory instance and no
solver caches are shared between the strategies under comparison -- cache
correctness is one of the properties being tested.

Registered adapters (per applicable kind/theory):

* ``calculus`` -- the Figure 1 pipeline (:func:`evaluate_calculus`);
* ``algebra`` -- an independent structural evaluator composed from the
  Section 2.1 generalized relational algebra operators (join/union/
  project/complement), *not* sharing the calculus evaluator's NNF pass;
* ``rconfig`` / ``econfig`` -- the paper-verbatim EVAL-phi procedures
  (dense order / equality only);
* ``datalog[...]`` -- the semi-naive engine under ``EngineOptions.all_on``,
  ``all_off``, and each single-flag-off ablation, plus a naive-order run;
* ``boole_lemma`` -- the Section 5.2 boolean Datalog engine (Theorem 5.6),
  for positive boolean programs;
* ``qe:calculus`` / ``qe:fourier_motzkin`` / ``qe:virtual_substitution`` --
  the QE-backend pair on bare existential linear blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.boolean_algebra.datalog_bool import (
    BodyAtom,
    BooleanDatalogProgram,
    BooleanRule,
    canonical_variables,
    table_as_term,
)
from repro.boolean_algebra.terms import BoolTerm, BOr, BVar, BZero
from repro.conformance.spec import (
    BuiltCase,
    CaseSpec,
    SpecError,
    build_case,
    decode_atom,
)
from repro.conformance.oracles import compare_relations
from repro.conformance.updates import IncrementalMismatchError, update_sequence
from repro.constraints.boolean import BooleanConstraintAtom, BooleanTheory
from repro.constraints.real_poly import PolyAtom
from repro.core import algebra as ra
from repro.core.calculus import evaluate_calculus
from repro.core.datalog import DatalogProgram, EngineOptions
from repro.core.econfig import evaluate_query_econfig
from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation
from repro.core.ivm import MaterializedView
from repro.core.magic import Binding, MagicQuery, select_answers
from repro.core.query import Engine
from repro.core.rconfig import evaluate_query_rconfig
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
)
from repro.qe.fourier_motzkin import fourier_motzkin_eliminate
from repro.qe.signs import SignCond
from repro.qe.virtual_substitution import vs_eliminate
from repro.runtime.chaos import unwrap_theory


@dataclass(frozen=True)
class Strategy:
    """A named evaluation route for conformance cases."""

    name: str
    run: Callable[[CaseSpec], GeneralizedRelation]
    #: the engine-options config this strategy exercises (datalog routes)
    options: EngineOptions | None = None


#: the EngineOptions ablation grid: everything on, everything off, and each
#: single flag off -- the acceptance criterion requires every one of these
#: to be exercised by at least one strategy pair
ABLATION_GRID: tuple[tuple[str, EngineOptions], ...] = (
    ("all_on", EngineOptions.all_on()),
    ("all_off", EngineOptions.all_off()),
    *(
        (f"no_{flag}", replace(EngineOptions.all_on(), **{flag: False}))
        for flag in EngineOptions.all_on().as_dict()
    ),
    # the three plan/index/parallel layers off together while the original
    # cache layers stay on: the pre-planner "serial scan" engine
    (
        "serial_scan",
        replace(
            EngineOptions.all_on(),
            join_planner=False,
            index_probes=False,
            parallel=False,
        ),
    ),
    # pinned worker count: the auto-sized pool degrades to the serial path
    # on single-CPU runners, so the threaded round executor must be forced
    # to actually run multi-worker under conformance
    ("parallel_forced", replace(EngineOptions.all_on(), parallel_workers=3)),
    # compiled vs interpreted differential pair: compiled_off is the
    # interpreted oracle with every other layer live, compiled_forced runs
    # compiled closures inside forced multi-worker rounds (worker count
    # distinct from parallel_forced so the two strategies stay independent)
    ("compiled_off", replace(EngineOptions.all_on(), compile_rules=False)),
    ("compiled_forced", replace(EngineOptions.all_on(), parallel_workers=2)),
    # the semantic-optimizer differential pair: semantic_off is the
    # unrewritten oracle (the auto-generated no_optimize_semantic ablation
    # under its acceptance-criterion name) -- any fixpoint difference against
    # all_on means a containment rewrite changed program semantics
    (
        "semantic_off",
        replace(EngineOptions.all_on(), optimize_semantic=False),
    ),
)


def strategies_for(spec: CaseSpec) -> list[Strategy]:
    """All applicable strategies for a spec; the first is the reference."""
    if spec.kind == "calculus":
        routes = [
            Strategy("calculus", _run_calculus),
            Strategy("algebra", _run_algebra),
        ]
        if spec.theory == "dense_order":
            routes.append(Strategy("rconfig", _run_rconfig))
        elif spec.theory == "equality":
            routes.append(Strategy("econfig", _run_econfig))
        return routes
    if spec.kind == "datalog":
        routes = [
            Strategy(
                f"datalog[{label}]",
                _datalog_runner(options, semi_naive=True),
                options=options,
            )
            for label, options in ABLATION_GRID
        ]
        routes.append(
            Strategy(
                "datalog[naive]",
                _datalog_runner(EngineOptions.all_on(), semi_naive=False),
                options=EngineOptions.all_on(),
            )
        )
        if spec.theory == "boolean":
            routes.append(Strategy("boole_lemma", _run_boole_lemma))
        # incremental maintenance: replay the EDB as an update stream,
        # asserting maintained == from-scratch after every step; the chaos
        # variant adds retract/reinsert churn (DRed + counting decrements)
        routes.append(Strategy("incremental", _incremental_runner(churn=0)))
        routes.append(
            Strategy("incremental_chaos", _incremental_runner(churn=2))
        )
        # multi-process sharded evaluation: replay the case through the
        # worker pool and demand a *byte-identical* fixpoint against the
        # serial engine; the chaos variant additionally kills workers
        # mid-round (supervised restart + re-dispatch must not change a
        # single tuple)
        routes.append(Strategy("sharded", _sharded_runner(process_chaos=False)))
        routes.append(
            Strategy("sharded_chaos", _sharded_runner(process_chaos=True))
        )
        # demand-driven magic-set queries: derive bound queries from the
        # target's own fixpoint and demand answers identical to the filtered
        # full fixpoint; the chaos variant keeps the containment-based
        # result-reuse cache warm across the queries
        routes.append(Strategy("magic", _magic_runner(reuse=False)))
        routes.append(Strategy("magic_chaos", _magic_runner(reuse=True)))
        return routes
    if spec.kind == "qe":
        return [
            Strategy("qe:calculus", _run_calculus),
            Strategy("qe:fourier_motzkin", _qe_runner(fourier_motzkin_eliminate)),
            Strategy("qe:virtual_substitution", _qe_runner(vs_eliminate)),
        ]
    raise SpecError(f"unknown case kind {spec.kind!r}")


# ---------------------------------------------------------------- calculus
def _run_calculus(spec: CaseSpec) -> GeneralizedRelation:
    case = build_case(spec)
    return evaluate_calculus(case.query, case.database, output=case.output)


def _run_rconfig(spec: CaseSpec) -> GeneralizedRelation:
    case = build_case(spec)
    return evaluate_query_rconfig(case.query, case.database, output=case.output)


def _run_econfig(spec: CaseSpec) -> GeneralizedRelation:
    case = build_case(spec)
    return evaluate_query_econfig(case.query, case.database, output=case.output)


# ----------------------------------------------------------------- algebra
def _run_algebra(spec: CaseSpec) -> GeneralizedRelation:
    """Structural evaluation by generalized-relational-algebra composition.

    Unlike the calculus evaluator this never normalizes to NNF: negation is
    the algebra's unrestricted ``complement`` operator applied to the
    subformula's relation, disjunction pads both sides onto the union schema
    (joining with the universal relation over the missing attributes), and
    ``forall`` is complement-project-complement.
    """
    case = build_case(spec)
    result = _algebra_eval(case.query, case)
    missing = [v for v in case.output if v not in result.variables]
    if missing:
        raise SpecError(
            f"algebra evaluation lost output variables {missing}"
        )
    return ra.project(result, case.output, name="result")


def _algebra_eval(formula: Formula, case: BuiltCase) -> GeneralizedRelation:
    theory = case.theory
    if isinstance(formula, RelationAtom):
        source = case.database.relation(formula.name)
        if len(set(formula.args)) != len(formula.args):
            raise SpecError(f"repeated arguments in {formula}")
        return ra.rename(
            source, dict(zip(source.variables, formula.args)), name="atom"
        )
    if isinstance(formula, Atom):
        schema = tuple(sorted(formula.variables()))
        relation = GeneralizedRelation("constraint", schema, theory)
        relation.add_tuple((formula,))
        return relation
    if isinstance(formula, Not):
        return ra.complement(_algebra_eval(formula.child, case))
    if isinstance(formula, And):
        parts = [_algebra_eval(child, case) for child in formula.children]
        result = parts[0]
        for part in parts[1:]:
            result = ra.join(result, part)
        return result
    if isinstance(formula, Or):
        parts = [_algebra_eval(child, case) for child in formula.children]
        schema: tuple[str, ...] = ()
        for part in parts:
            schema = schema + tuple(
                v for v in part.variables if v not in schema
            )
        result = _pad(parts[0], schema, theory)
        for part in parts[1:]:
            result = ra.union(
                result, ra.project(_pad(part, schema, theory), result.variables)
            )
        return result
    if isinstance(formula, Exists):
        inner = _algebra_eval(formula.child, case)
        keep = [v for v in inner.variables if v not in formula.variables_bound]
        return ra.project(inner, keep)
    if isinstance(formula, ForAll):
        # forall v. psi == not exists v. not psi, as algebra operators
        inner = _algebra_eval(formula.child, case)
        complemented = ra.complement(inner)
        keep = [
            v for v in complemented.variables if v not in formula.variables_bound
        ]
        return ra.complement(ra.project(complemented, keep))
    raise SpecError(f"algebra evaluator cannot handle {formula!r}")


def _pad(
    relation: GeneralizedRelation, schema: Sequence[str], theory
) -> GeneralizedRelation:
    """Extend onto a superset schema by joining with the universal relation
    over the missing attributes (one tuple with an empty conjunction)."""
    missing = [v for v in schema if v not in relation.variables]
    if not missing:
        return relation
    universal = GeneralizedRelation("_universe", tuple(missing), theory)
    universal.add_tuple(())
    return ra.join(relation, universal, name="pad")


# ----------------------------------------------------------------- datalog
def _datalog_runner(
    options: EngineOptions, semi_naive: bool
) -> Callable[[CaseSpec], GeneralizedRelation]:
    def run(spec: CaseSpec) -> GeneralizedRelation:
        case = build_case(spec)
        program = DatalogProgram(case.rules, case.theory, options=options)
        world, _stats = program.evaluate(
            case.database, semi_naive=semi_naive, semantics=spec.semantics
        )
        derived = world.relation(spec.target)
        result = GeneralizedRelation("result", case.output, case.theory)
        for item in derived:
            result.add(item)
        return result

    return run


def _incremental_runner(churn: int) -> Callable[[CaseSpec], GeneralizedRelation]:
    """Differentially-tested incremental maintenance over an update stream.

    Starts a :class:`MaterializedView` on an *empty* EDB, replays the spec's
    seeded update sequence one step at a time, and after every step compares
    the maintained world against a from-scratch evaluation of the current
    EDB state (canonical key sets, over the same theory instance, so the
    comparison is exact).  The first divergence raises
    :class:`IncrementalMismatchError`, which the runner reports as a
    discrepancy of oracle ``"incremental"``.  The stream's net effect is the
    spec's full EDB, so the returned target relation is comparable against
    every other datalog strategy through the ordinary semantic oracles.
    """

    def run(spec: CaseSpec) -> GeneralizedRelation:
        case = build_case(spec)
        program = DatalogProgram(
            case.rules, case.theory, options=EngineOptions.all_on()
        )
        initial = GeneralizedDatabase(case.theory)
        for name, variables, _tuples in spec.relations:
            initial.create_relation(name, variables)
        tuple_atoms = {
            (name, index): encoded
            for name, _variables, tuples in spec.relations
            for index, encoded in enumerate(tuples)
        }
        view = MaterializedView(program, initial, semantics=spec.semantics)
        try:
            for step, (op, name, index) in enumerate(
                update_sequence(spec, churn=churn)
            ):
                atoms = [
                    decode_atom(a, case.theory)
                    for a in tuple_atoms[(name, index)]
                ]
                if op == "insert":
                    view.insert(name, atoms)
                else:
                    view.retract(name, atoms)
                _check_against_scratch(view, case, spec, step, (op, name, index))
            result = GeneralizedRelation("result", case.output, case.theory)
            for item in view.relation(spec.target):
                result.add(item)
            return result
        finally:
            view.close()

    return run


class ShardedDivergenceError(Exception):
    """The sharded fixpoint differed from serial, byte for byte."""


def _sharded_runner(
    process_chaos: bool,
) -> Callable[[CaseSpec], GeneralizedRelation]:
    """Multi-process sharded evaluation, differentially byte-checked.

    Runs the case twice from fresh builds -- once on the serial engine,
    once through the :class:`~repro.runtime.cluster.ShardedExecutor`
    (``force=True`` so even single-shard rounds cross the process
    boundary) -- and raises :class:`ShardedDivergenceError` unless every
    relation's *insertion order* matches tuple for tuple.  With
    ``process_chaos`` a seeded :class:`ProcessFaultPolicy` kills workers
    mid-round; supervised restart and re-dispatch must leave the bytes
    unchanged.  Pool-level degradation (the engine falling back to the
    in-process path) is sound and intentionally *not* an error: the
    fallback recomputes the round from the synced world.
    """
    from repro.runtime.chaos import ProcessFaultPolicy
    from repro.runtime.cluster import ClusterConfig

    def run(spec: CaseSpec) -> GeneralizedRelation:
        base = replace(EngineOptions.all_on(), parallel=False)
        serial_case = build_case(spec)
        serial = DatalogProgram(
            serial_case.rules, serial_case.theory, options=base
        )
        world_s, _stats = serial.evaluate(
            serial_case.database, semantics=spec.semantics
        )
        faults = (
            ProcessFaultPolicy(
                p=0.08,
                seed=spec.seed,
                faults=("worker_kill",),
                max_consecutive=2,
            )
            if process_chaos
            else None
        )
        cluster = ClusterConfig(
            workers=2,
            min_slice=2,
            force=True,
            max_restarts=6,
            max_task_retries=4,
            backoff_base_seconds=0.001,
            faults=faults,
        )
        case = build_case(spec)
        program = DatalogProgram(
            case.rules,
            case.theory,
            options=replace(base, sharded=True, cluster=cluster),
        )
        world_x, _stats_x = program.evaluate(
            case.database, semantics=spec.semantics
        )
        for name in world_s.names():
            left = world_s.relation(name).tuples()
            right = world_x.relation(name).tuples()
            if [t.atoms for t in left] != [t.atoms for t in right]:
                raise ShardedDivergenceError(
                    f"sharded fixpoint diverged from serial on {name!r} "
                    f"(serial {len(left)} tuples, sharded {len(right)})"
                )
        result = GeneralizedRelation("result", case.output, case.theory)
        for item in world_x.relation(spec.target):
            result.add(item)
        return result

    return run


class MagicMismatchError(Exception):
    """A demand-driven query's answers diverged from the filtered fixpoint."""


def _magic_runner(reuse: bool) -> Callable[[CaseSpec], GeneralizedRelation]:
    """Demand-driven (magic-set) query evaluation, differentially checked.

    Evaluates the full fixpoint once (the oracle), then derives a small
    deterministic family of queries from the target's first sample point --
    the all-free query, a constant binding on the first position, an
    all-positions point query, a repeated-variable query (positions 0 and 1
    forced equal), and for dense order an interval binding -- and demands
    that :meth:`repro.core.query.Engine.query` answers every one of them
    with exactly the oracle's answers filtered by the same bindings
    (:func:`repro.core.magic.select_answers`, compared with the semantic
    oracles -- canonical keys are only unique up to the mentioned-variable
    set, e.g. for boolean tables).  A divergence raises
    :class:`MagicMismatchError`, which the runner reports as a discrepancy
    of oracle ``"magic"``.

    With ``reuse`` the engine's containment-based result cache stays warm
    across the queries -- the all-free query runs first, so every later
    bound query may legally be answered by cache containment, which is
    exactly the path under test; without it the cache is cleared before
    every query so the rewrite-and-evaluate path itself is exercised.  The
    returned relation is the engine's own all-free answer, comparable
    against every other datalog strategy through the standard oracles.
    """

    def normalized(
        relation: GeneralizedRelation, output: Sequence[str], theory
    ) -> GeneralizedRelation:
        over_output = GeneralizedRelation("cmp", output, theory)
        for item in relation:
            over_output.add(item)
        return over_output

    def run(spec: CaseSpec) -> GeneralizedRelation:
        case = build_case(spec)
        theory = case.theory
        oracle = DatalogProgram(
            case.rules, theory, options=EngineOptions.all_on()
        )
        world, _stats = oracle.evaluate(case.database, semantics=spec.semantics)
        full = world.relation(spec.target)
        result = GeneralizedRelation("result", case.output, theory)
        for item in full:
            result.add(item)
        if spec.target not in {rule.head.name for rule in case.rules}:
            return result  # EDB-only target: nothing for a rewrite to do
        arity = len(case.output)
        engine = Engine(
            case.rules,
            theory,
            options=EngineOptions.all_on(),
            database=case.database,
        )
        queries = [MagicQuery(spec.target, arity, {})]
        points = full.sample_points() if arity else []
        if points:
            values = [points[0][v] for v in full.variables]
            queries.append(MagicQuery(spec.target, arity, {0: values[0]}))
            queries.append(
                MagicQuery(spec.target, arity, dict(enumerate(values)))
            )
            if arity >= 2:
                queries.append(
                    MagicQuery(
                        spec.target,
                        arity,
                        {0: values[0]},
                        equalities=((0, 1),),
                    )
                )
            if spec.theory == "dense_order":
                queries.append(
                    MagicQuery(
                        spec.target,
                        arity,
                        {0: Binding.interval(values[0] - 1, values[0] + 1)},
                    )
                )
        answers: GeneralizedRelation | None = None
        for query in queries:
            if not reuse:
                engine.cache.clear()
            answered = engine.query(query, semantics=spec.semantics)
            got = normalized(answered.relation, case.output, theory)
            expected = normalized(
                select_answers(full, query, theory), case.output, theory
            )
            found = compare_relations(
                expected, got, "full-filter", "magic", spec.theory, spec.m
            )
            if found is not None:
                raise MagicMismatchError(
                    f"magic answers diverged from the filtered fixpoint on "
                    f"{spec.target}^{query.adornment}"
                    + (" (via reuse cache)" if answered.reused else "")
                    + f": {found.detail}"
                )
            if not query.bindings:
                answers = answered.relation
        if answers is not None:
            result = GeneralizedRelation("result", case.output, theory)
            for item in answers:
                result.add(item)
        return result

    return run


def _check_against_scratch(
    view: MaterializedView,
    case: BuiltCase,
    spec: CaseSpec,
    step: int,
    op: tuple[str, str, int],
) -> None:
    """Assert the maintained world equals from-scratch over the current EDB."""
    scratch_db = GeneralizedDatabase(case.theory)
    for name, variables, _tuples in spec.relations:
        relation = scratch_db.create_relation(name, variables)
        for _key, item in view.relation(name).entries():
            relation.adopt_canonical(item)
    program = DatalogProgram(
        case.rules, case.theory, options=EngineOptions.all_on()
    )
    world, _stats = program.evaluate(scratch_db, semantics=spec.semantics)
    for name in world.names():
        expected = frozenset(world.relation(name).keys())
        maintained = frozenset(view.relation(name).keys())
        if expected != maintained:
            raise IncrementalMismatchError(step, op, name)


def _run_boole_lemma(spec: CaseSpec) -> GeneralizedRelation:
    """The Section 5.2 engine: facts as canonical tables, Boole's lemma QE."""
    case = build_case(spec)
    theory = unwrap_theory(case.theory)
    assert isinstance(theory, BooleanTheory)
    program = BooleanDatalogProgram(theory.algebra)
    for rule in case.rules:
        if rule.negative_atoms:
            raise SpecError("boolean Datalog is positive only (Section 5)")
        constraint: BoolTerm = BZero()
        for atom in rule.constraint_atoms:
            assert isinstance(atom, BooleanConstraintAtom)
            constraint = BOr(constraint, atom.term)
        program.add_rule(
            BooleanRule(
                rule.head.name,
                tuple(rule.head.args),
                tuple(
                    BodyAtom(a.name, tuple(a.args)) for a in rule.positive_atoms
                ),
                constraint,
            )
        )
    for name, variables, _tuples in spec.relations:
        relation = case.database.relation(name)
        for item in relation:
            term: BoolTerm = BZero()
            for atom in item.atoms:
                assert isinstance(atom, BooleanConstraintAtom)
                term = BOr(term, atom.term)
            program.add_fact(name, item.variables, term)
    facts = program.evaluate()
    result = GeneralizedRelation("result", case.output, theory)
    renaming = {
        canonical: target
        for canonical, target in zip(
            canonical_variables(len(case.output)), case.output
        )
    }
    for fact in facts.get(spec.target, set()):
        term = table_as_term(
            fact.table, fact.variable_names(), theory.algebra
        )
        renamed = term.substitute(
            {old: BVar(new) for old, new in renaming.items()}
        )
        result.add_tuple((BooleanConstraintAtom(renamed, theory.algebra),))
    return result


# ---------------------------------------------------------------------- qe
def _qe_runner(
    eliminate: Callable[[Sequence[SignCond], str], list],
) -> Callable[[CaseSpec], GeneralizedRelation]:
    """Run one QE backend directly on the spec's existential block."""

    def run(spec: CaseSpec) -> GeneralizedRelation:
        case = build_case(spec)
        query = case.query
        if not isinstance(query, Exists) or not isinstance(query.child, And):
            raise SpecError("qe cases must be exists-over-conjunction")
        conds = []
        for atom in query.child.children:
            if not isinstance(atom, PolyAtom):
                raise SpecError("qe cases must contain poly atoms only")
            conds.append(atom.as_cond())
        dnf: list[tuple[SignCond, ...]] = [tuple(conds)]
        for variable in query.variables_bound:
            step: list[tuple[SignCond, ...]] = []
            seen: set[frozenset[SignCond]] = set()
            for conjunction in dnf:
                for reduced in eliminate(conjunction, variable):
                    key = frozenset(reduced)
                    if key not in seen:
                        seen.add(key)
                        step.append(tuple(reduced))
            dnf = step
        result = GeneralizedRelation("result", case.output, case.theory)
        for conjunction in dnf:
            result.add_tuple(tuple(PolyAtom.from_cond(c) for c in conjunction))
        return result

    return run
