"""Greedy minimization of failing conformance cases.

Given a spec whose strategies disagree, :func:`shrink` repeatedly applies
structure-removing mutations -- drop a database tuple, drop an atom from a
tuple's conjunction, drop a rule or a body literal, replace a query node by
one of its children -- keeping a mutation only when the discrepancy
predicate still holds.  The result is a locally minimal spec: no single
removal preserves the failure.  Mutations that make the spec ill-formed
(free variables no longer matching the output, head variables missing from
a rule body, ...) simply make the predicate raise or return False and are
rejected; the shrinker never needs to know the well-formedness rules.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Iterator

from repro.conformance.spec import CaseSpec

#: cap on predicate evaluations per shrink (each runs every strategy)
DEFAULT_BUDGET = 400


def shrink(
    spec: CaseSpec,
    predicate: Callable[[CaseSpec], bool],
    budget: int = DEFAULT_BUDGET,
) -> CaseSpec:
    """Greedily minimize ``spec`` while ``predicate`` keeps holding.

    ``predicate`` must return True on ``spec`` itself (the caller observed
    the discrepancy there); it is expected to swallow evaluation errors and
    return False for ill-formed mutants.
    """
    current = spec
    attempts = 0
    improved = True
    while improved and attempts < budget:
        improved = False
        for candidate in _mutations(current):
            attempts += 1
            if attempts > budget:
                break
            try:
                keeps_failing = predicate(candidate)
            except Exception:
                keeps_failing = False
            if keeps_failing:
                current = candidate
                improved = True
                break  # restart mutation enumeration from the smaller spec
    return current


def _mutations(spec: CaseSpec) -> Iterator[CaseSpec]:
    """All one-step reductions of a spec, smallest-impact first."""
    # drop one tuple from one relation
    for r_index, (name, variables, tuples) in enumerate(spec.relations):
        for t_index in range(len(tuples)):
            reduced = tuples[:t_index] + tuples[t_index + 1 :]
            relations = (
                spec.relations[:r_index]
                + ((name, variables, reduced),)
                + spec.relations[r_index + 1 :]
            )
            yield replace(spec, relations=relations)
    # drop one atom from one tuple's conjunction
    for r_index, (name, variables, tuples) in enumerate(spec.relations):
        for t_index, atoms in enumerate(tuples):
            if len(atoms) <= 1:
                continue
            for a_index in range(len(atoms)):
                new_tuple = atoms[:a_index] + atoms[a_index + 1 :]
                reduced = (
                    tuples[:t_index] + (new_tuple,) + tuples[t_index + 1 :]
                )
                relations = (
                    spec.relations[:r_index]
                    + ((name, variables, reduced),)
                    + spec.relations[r_index + 1 :]
                )
                yield replace(spec, relations=relations)
    # drop one rule
    for index in range(len(spec.rules)):
        yield replace(spec, rules=spec.rules[:index] + spec.rules[index + 1 :])
    # drop one body literal from one rule
    for index, rule in enumerate(spec.rules):
        body = rule["body"]
        if len(body) <= 1:
            continue
        for b_index in range(len(body)):
            new_rule = {
                "head": rule["head"],
                "body": body[:b_index] + body[b_index + 1 :],
            }
            yield replace(
                spec,
                rules=spec.rules[:index] + (new_rule,) + spec.rules[index + 1 :],
            )
    # structurally simplify the query
    if spec.query is not None:
        for simplified in _formula_reductions(spec.query):
            yield replace(spec, query=simplified)


def _formula_reductions(encoded: Any) -> Iterator[Any]:
    """One-step reductions of an encoded formula (children replace parents,
    connective arguments drop one element), outermost first."""
    tag = encoded[0]
    if tag in ("and", "or"):
        children = encoded[1]
        # replace the whole node by one child
        for child in children:
            yield child
        # drop one child (only meaningful with 2+ children)
        if len(children) > 1:
            for index in range(len(children)):
                yield [tag, children[:index] + children[index + 1 :]]
        # recurse into one child
        for index, child in enumerate(children):
            for reduced in _formula_reductions(child):
                yield [
                    tag,
                    children[:index] + [reduced] + children[index + 1 :],
                ]
    elif tag == "not":
        yield encoded[1]
        for reduced in _formula_reductions(encoded[1]):
            yield ["not", reduced]
    elif tag in ("exists", "forall"):
        yield encoded[2]
        for reduced in _formula_reductions(encoded[2]):
            yield [tag, encoded[1], reduced]
    # atoms and relation atoms are irreducible
