"""The differential conformance loop and its CLI.

For each case: generate a spec, evaluate it through every applicable
strategy (the first registry entry is the reference), compare each result
against the reference with the semantic oracles, and -- when a discrepancy
survives -- greedily shrink the case and write a replayable JSON artifact
under the corpus directory.  ``tests/conformance/test_corpus_replay.py``
replays every artifact forever after, so a fixed bug stays fixed.

CLI::

    python -m repro conformance --theory dense --cases 500 --seed 0
    python -m repro conformance --theory all --profile deep

``--seed`` defaults to the ``REPRO_SEED`` environment variable when set
(satellite of the replayability requirement); the per-case seed printed in
every failure message replays that exact case via ``--case-seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.conformance.generators import (
    DEEP,
    SMOKE,
    THEORY_ALIASES,
    THEORY_NAMES,
    GeneratorConfig,
    case_seed,
    generate_case,
    resolve_seed,
)
from repro.conformance.oracles import Discrepancy, compare_relations
from repro.conformance.shrinker import shrink
from repro.conformance.spec import CaseSpec
from repro.conformance.strategies import ABLATION_GRID, strategies_for


@dataclass
class CaseFailure:
    """A surviving discrepancy, with the minimized spec that reproduces it."""

    spec: CaseSpec  # minimized
    original_spec: CaseSpec
    discrepancy: Discrepancy

    def as_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.as_dict(),
            "original_spec": self.original_spec.as_dict(),
            "discrepancy": {
                "left": self.discrepancy.left_name,
                "right": self.discrepancy.right_name,
                "oracle": self.discrepancy.oracle,
                "point": {
                    k: str(v) for k, v in (self.discrepancy.point or {}).items()
                },
                "detail": self.discrepancy.detail,
            },
        }


@dataclass
class ConformanceReport:
    """Aggregate outcome of one conformance run over one theory."""

    theory: str
    cases: int
    seed: int
    failures: list[CaseFailure] = field(default_factory=list)
    strategy_runs: Counter = field(default_factory=Counter)
    #: EngineOptions configs exercised, as frozensets of as_dict() items
    exercised_options: set = field(default_factory=set)
    kind_counts: Counter = field(default_factory=Counter)

    @property
    def ok(self) -> bool:
        return not self.failures

    def options_coverage(self) -> tuple[int, int]:
        """(exercised, total) over the ablation grid."""
        grid = {
            frozenset(options.as_dict().items()) for _, options in ABLATION_GRID
        }
        return len(self.exercised_options & grid), len(grid)

    def summary_lines(self) -> list[str]:
        exercised, total = self.options_coverage()
        lines = [
            f"theory={self.theory} cases={self.cases} seed={self.seed}",
            "  kinds: "
            + " ".join(f"{k}={n}" for k, n in sorted(self.kind_counts.items())),
            f"  engine-options ablations exercised: {exercised}/{total}",
            f"  strategies run: {sum(self.strategy_runs.values())} "
            f"({len(self.strategy_runs)} distinct)",
            f"  discrepancies: {len(self.failures)}",
        ]
        for failure in self.failures:
            lines.append(
                f"    seed={failure.original_spec.seed}: "
                + failure.discrepancy.describe()
            )
        return lines


def analyze_spec(spec: CaseSpec):
    """Static-analyze one spec (``repro.analysis``); the ProgramReport.

    Datalog specs go through :func:`repro.analysis.analyze_program`, calculus
    and QE specs through :func:`repro.analysis.analyze_formula`; the spec's
    relation schemas feed the arity cross-check and its target the
    reachability pass.
    """
    from repro.analysis import analyze_formula, analyze_program
    from repro.conformance.spec import build_theory, decode_formula, decode_rule

    theory = build_theory(spec)
    edb_schemas = {
        name: len(variables) for name, variables, _tuples in spec.relations
    }
    if spec.kind == "datalog":
        rules = [decode_rule(r, theory) for r in spec.rules]
        return analyze_program(
            rules, theory, target=spec.target, edb_schemas=edb_schemas
        )
    formula = decode_formula(spec.query, theory)
    return analyze_formula(
        formula, theory, output=spec.output, edb_schemas=edb_schemas
    )


def run_case(spec: CaseSpec) -> Discrepancy | None:
    """Evaluate one spec through every strategy; first discrepancy or None.

    Every generated program must pass static analysis before the strategy
    fan-out: error diagnostics become a discrepancy of oracle ``"lint"``
    (a generator emitting an ill-formed program is a harness bug on par with
    an engine bug).  A strategy raising is itself reported as a discrepancy
    (oracle ``"error"``) -- strategies declare applicability via the
    registry, so an exception inside one is an engine bug, not an expected
    skip.
    """
    lint_report = analyze_spec(spec)
    lint_errors = lint_report.errors()
    if lint_errors:
        return Discrepancy(
            "analysis",
            "analysis",
            "lint",
            None,
            "; ".join(d.render() for d in lint_errors),
        )
    routes = strategies_for(spec)
    reference = routes[0]
    try:
        expected = reference.run(spec)
    except Exception as error:  # noqa: BLE001 - reported, not swallowed
        return Discrepancy(
            reference.name, reference.name, "error", None, repr(error)
        )
    for route in routes[1:]:
        try:
            actual = route.run(spec)
        except Exception as error:  # noqa: BLE001 - reported, not swallowed
            return Discrepancy(
                reference.name, route.name, "error", None, repr(error)
            )
        found = compare_relations(
            expected, actual, reference.name, route.name, spec.theory, spec.m
        )
        if found is not None:
            return found
    return None


def run_conformance(
    theory: str,
    cases: int,
    seed: int,
    config: GeneratorConfig = SMOKE,
    corpus_dir: str | Path | None = None,
    shrink_failures: bool = True,
    progress=None,
) -> ConformanceReport:
    """The differential loop over ``cases`` generated specs for one theory."""
    name = THEORY_ALIASES.get(theory, theory)
    report = ConformanceReport(theory=name, cases=cases, seed=seed)
    for index in range(cases):
        spec_seed = case_seed(seed, name, index)
        spec = generate_case(name, spec_seed, config)
        report.kind_counts[spec.kind] += 1
        for route in strategies_for(spec):
            report.strategy_runs[route.name] += 1
            if route.options is not None:
                report.exercised_options.add(
                    frozenset(route.options.as_dict().items())
                )
        found = run_case(spec)
        if found is not None:
            minimized = spec
            if shrink_failures:
                minimized = shrink(spec, lambda s: run_case(s) is not None)
                final = run_case(minimized)
                if final is not None:
                    found = final
            failure = CaseFailure(minimized, spec, found)
            report.failures.append(failure)
            if corpus_dir is not None:
                _write_artifact(Path(corpus_dir), failure)
        if progress is not None:
            progress(index + 1, cases, report)
    return report


def _write_artifact(corpus_dir: Path, failure: CaseFailure) -> Path:
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = (
        corpus_dir
        / f"{failure.spec.theory}-seed{failure.original_spec.seed}.json"
    )
    path.write_text(json.dumps(failure.as_dict(), indent=2, sort_keys=True))
    return path


def replay_artifact(path: str | Path) -> Discrepancy | None:
    """Re-run the minimized spec stored in a corpus artifact."""
    data = json.loads(Path(path).read_text())
    return run_case(CaseSpec.from_dict(data["spec"]))


# ----------------------------------------------------------------------- CLI
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro conformance",
        description="Differential conformance testing across all evaluation "
        "strategies of the constraint query engine.",
    )
    parser.add_argument(
        "--theory",
        default="all",
        help="dense|equality|boolean|poly|all (aliases accepted)",
    )
    parser.add_argument(
        "--cases", type=int, default=100, help="cases per theory"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed (default: REPRO_SEED env var, else 0)",
    )
    parser.add_argument(
        "--profile",
        choices=("smoke", "deep"),
        default="smoke",
        help="generator size preset",
    )
    parser.add_argument(
        "--case-seed",
        type=int,
        default=None,
        help="replay a single case by its per-case seed (needs --theory)",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        help="directory for surviving-discrepancy JSON artifacts",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip case minimization on failures",
    )
    args = parser.parse_args(argv)
    seed = resolve_seed(0) if args.seed is None else args.seed
    config = DEEP if args.profile == "deep" else SMOKE
    if args.theory == "all":
        theories = list(THEORY_NAMES)
    else:
        name = THEORY_ALIASES.get(args.theory, args.theory)
        if name not in THEORY_NAMES:
            parser.error(f"unknown theory {args.theory!r}")
        theories = [name]
    if args.case_seed is not None:
        if len(theories) != 1:
            parser.error("--case-seed requires a single --theory")
        spec = generate_case(theories[0], args.case_seed, config)
        found = run_case(spec)
        print(json.dumps(spec.as_dict(), indent=2, sort_keys=True))
        if found is None:
            print("case-seed replay: all strategies agree")
            return 0
        print(f"case-seed replay: {found.describe()}")
        return 1
    exit_code = 0
    for theory in theories:
        report = run_conformance(
            theory,
            args.cases,
            seed,
            config,
            corpus_dir=args.corpus,
            shrink_failures=not args.no_shrink,
        )
        for line in report.summary_lines():
            print(line)
        if not report.ok:
            exit_code = 1
            print(
                f"  replay: python -m repro conformance --theory {theory} "
                f"--case-seed <seed above>"
                + (f" (or REPRO_SEED={seed})" if args.seed is None else "")
            )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
