"""The differential conformance loop and its CLI.

For each case: generate a spec, evaluate it through every applicable
strategy (the first registry entry is the reference), compare each result
against the reference with the semantic oracles, and -- when a discrepancy
survives -- greedily shrink the case and write a replayable JSON artifact
under the corpus directory.  ``tests/conformance/test_corpus_replay.py``
replays every artifact forever after, so a fixed bug stays fixed.

CLI::

    python -m repro conformance --theory dense --cases 500 --seed 0
    python -m repro conformance --theory all --profile deep

``--seed`` defaults to the ``REPRO_SEED`` environment variable when set
(satellite of the replayability requirement); the per-case seed printed in
every failure message replays that exact case via ``--case-seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.conformance.generators import (
    DEEP,
    SMOKE,
    THEORY_ALIASES,
    THEORY_NAMES,
    GeneratorConfig,
    case_seed,
    generate_case,
    resolve_seed,
)
from repro.conformance.oracles import Discrepancy, compare_relations
from repro.conformance.shrinker import shrink
from repro.conformance.spec import CaseSpec
from repro.conformance.strategies import (
    ABLATION_GRID,
    MagicMismatchError,
    strategies_for,
)
from repro.conformance.updates import IncrementalMismatchError
from repro.errors import BudgetExceededError, TransientTheoryError
from repro.runtime.budget import Budget, parse_budget_spec, supervised
from repro.runtime.chaos import (
    ChaosPolicy,
    ChaosRuntime,
    chaos_scope,
    parse_chaos_spec,
)


@dataclass
class CaseFailure:
    """A surviving discrepancy, with the minimized spec that reproduces it."""

    spec: CaseSpec  # minimized
    original_spec: CaseSpec
    discrepancy: Discrepancy

    def as_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.as_dict(),
            "original_spec": self.original_spec.as_dict(),
            "discrepancy": {
                "left": self.discrepancy.left_name,
                "right": self.discrepancy.right_name,
                "oracle": self.discrepancy.oracle,
                "point": {
                    k: str(v) for k, v in (self.discrepancy.point or {}).items()
                },
                "detail": self.discrepancy.detail,
            },
        }


@dataclass
class ConformanceReport:
    """Aggregate outcome of one conformance run over one theory."""

    theory: str
    cases: int
    seed: int
    failures: list[CaseFailure] = field(default_factory=list)
    strategy_runs: Counter = field(default_factory=Counter)
    #: EngineOptions configs exercised, as frozensets of as_dict() items
    exercised_options: set = field(default_factory=set)
    kind_counts: Counter = field(default_factory=Counter)
    #: supervisor interventions: strategy runs killed by a budget trip or by
    #: an injected fault that exhausted its retries -- *degradations*, not
    #: discrepancies (the run produced no answer rather than a wrong one)
    degraded: Counter = field(default_factory=Counter)
    #: injection statistics when the run was chaos-armed (ChaosStats.as_dict)
    chaos_stats: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def options_coverage(self) -> tuple[int, int]:
        """(exercised, total) over the ablation grid."""
        grid = {
            frozenset(options.as_dict().items()) for _, options in ABLATION_GRID
        }
        return len(self.exercised_options & grid), len(grid)

    def summary_lines(self) -> list[str]:
        exercised, total = self.options_coverage()
        lines = [
            f"theory={self.theory} cases={self.cases} seed={self.seed}",
            "  kinds: "
            + " ".join(f"{k}={n}" for k, n in sorted(self.kind_counts.items())),
            f"  engine-options ablations exercised: {exercised}/{total}",
            f"  strategies run: {sum(self.strategy_runs.values())} "
            f"({len(self.strategy_runs)} distinct)",
            f"  discrepancies: {len(self.failures)}",
        ]
        if self.degraded:
            lines.append(
                "  degraded runs: "
                + " ".join(
                    f"{kind}={n}" for kind, n in sorted(self.degraded.items())
                )
            )
        if self.chaos_stats is not None:
            stats = self.chaos_stats
            lines.append(
                f"  chaos: injected={stats['total_injected']}/{stats['calls']} "
                f"retries={stats['retries']} "
                f"recovered={stats['retry_successes']} "
                f"fairness-suppressed={stats['suppressed_by_fairness']}"
            )
        for failure in self.failures:
            lines.append(
                f"    seed={failure.original_spec.seed}: "
                + failure.discrepancy.describe()
            )
        return lines


def analyze_spec(spec: CaseSpec):
    """Static-analyze one spec (``repro.analysis``); the ProgramReport.

    Datalog specs go through :func:`repro.analysis.analyze_program`, calculus
    and QE specs through :func:`repro.analysis.analyze_formula`; the spec's
    relation schemas feed the arity cross-check and its target the
    reachability pass.
    """
    from repro.analysis import analyze_formula, analyze_program
    from repro.conformance.spec import build_theory, decode_formula, decode_rule

    theory = build_theory(spec)
    edb_schemas = {
        name: len(variables) for name, variables, _tuples in spec.relations
    }
    if spec.kind == "datalog":
        rules = [decode_rule(r, theory) for r in spec.rules]
        return analyze_program(
            rules, theory, target=spec.target, edb_schemas=edb_schemas
        )
    formula = decode_formula(spec.query, theory)
    return analyze_formula(
        formula, theory, output=spec.output, edb_schemas=edb_schemas
    )


class _Degraded(Exception):
    """Internal marker: a strategy run was killed by the supervisor.

    Carries the underlying :class:`BudgetExceededError` or exhausted
    :class:`TransientTheoryError`; a degraded run produced *no* answer
    (never a wrong one), so it is counted, not reported as a discrepancy.
    """

    def __init__(self, error: Exception) -> None:
        super().__init__(repr(error))
        self.error = error


def _run_route(
    route,
    spec: CaseSpec,
    chaos: ChaosRuntime | None,
    budget: Budget | None,
):
    """One strategy run under the (optional) chaos scope and budget.

    The chaos scope is armed *only* around the strategy's own evaluation;
    the semantic oracles afterwards always compare against clean theories,
    so injected faults can delay or kill an answer but never corrupt the
    comparison itself.
    """
    try:
        with chaos_scope(chaos), supervised(budget):
            return route.run(spec)
    except (BudgetExceededError, TransientTheoryError) as error:
        raise _Degraded(error) from error


def run_case(
    spec: CaseSpec,
    chaos: ChaosRuntime | None = None,
    budget: Budget | None = None,
    degraded: Counter | None = None,
) -> Discrepancy | None:
    """Evaluate one spec through every strategy; first discrepancy or None.

    Every generated program must pass static analysis before the strategy
    fan-out: error diagnostics become a discrepancy of oracle ``"lint"``
    (a generator emitting an ill-formed program is a harness bug on par with
    an engine bug).  A strategy raising is itself reported as a discrepancy
    (oracle ``"error"``) -- strategies declare applicability via the
    registry, so an exception inside one is an engine bug, not an expected
    skip.

    Under an armed chaos runtime or budget, :class:`BudgetExceededError`
    and exhausted :class:`TransientTheoryError` are the two sanctioned ways
    for a run to die: they are tallied into ``degraded`` (keyed by error
    class) and the affected comparison is skipped -- if the *reference*
    route degrades there is nothing sound to compare against, so the whole
    case is skipped.  Any other exception is still an engine bug.
    """
    lint_report = analyze_spec(spec)
    lint_errors = lint_report.errors()
    if lint_errors:
        return Discrepancy(
            "analysis",
            "analysis",
            "lint",
            None,
            "; ".join(d.render() for d in lint_errors),
        )
    routes = strategies_for(spec)
    reference = routes[0]
    try:
        expected = _run_route(reference, spec, chaos, budget)
    except _Degraded as marker:
        if degraded is not None:
            degraded[type(marker.error).__name__] += 1
        return None
    except Exception as error:  # noqa: BLE001 - reported, not swallowed
        return Discrepancy(
            reference.name, reference.name, "error", None, repr(error)
        )
    for route in routes[1:]:
        try:
            actual = _run_route(route, spec, chaos, budget)
        except _Degraded as marker:
            if degraded is not None:
                degraded[type(marker.error).__name__] += 1
            continue
        except IncrementalMismatchError as error:
            # the incremental strategies verify maintained == from-scratch
            # after every update step; a stepwise divergence is a first-class
            # discrepancy even though the final states might re-agree
            return Discrepancy(
                reference.name, route.name, "incremental", None, str(error)
            )
        except MagicMismatchError as error:
            # the magic strategies verify demand-driven answers against the
            # filtered full fixpoint for every derived bound query; any
            # divergence is a first-class discrepancy even though the
            # strategy's returned (all-free) relation might still agree
            return Discrepancy(
                reference.name, route.name, "magic", None, str(error)
            )
        except Exception as error:  # noqa: BLE001 - reported, not swallowed
            return Discrepancy(
                reference.name, route.name, "error", None, repr(error)
            )
        found = compare_relations(
            expected, actual, reference.name, route.name, spec.theory, spec.m
        )
        if found is not None:
            return found
    return None


def run_conformance(
    theory: str,
    cases: int,
    seed: int,
    config: GeneratorConfig = SMOKE,
    corpus_dir: str | Path | None = None,
    shrink_failures: bool = True,
    progress=None,
    chaos: ChaosPolicy | None = None,
    budget: Budget | None = None,
) -> ConformanceReport:
    """The differential loop over ``cases`` generated specs for one theory.

    ``chaos`` arms one seeded :class:`ChaosRuntime` for the whole run (a
    single deterministic injection stream across all cases); ``budget`` is
    re-applied fresh per strategy run.  Chaos disables shrinking: replaying
    a sub-spec consumes the injection stream at a different offset, so a
    minimized case would not reproduce the same faults.
    """
    name = THEORY_ALIASES.get(theory, theory)
    report = ConformanceReport(theory=name, cases=cases, seed=seed)
    runtime = ChaosRuntime(chaos) if chaos is not None else None
    if runtime is not None:
        shrink_failures = False
    for index in range(cases):
        spec_seed = case_seed(seed, name, index)
        spec = generate_case(name, spec_seed, config)
        report.kind_counts[spec.kind] += 1
        for route in strategies_for(spec):
            report.strategy_runs[route.name] += 1
            if route.options is not None:
                report.exercised_options.add(
                    frozenset(route.options.as_dict().items())
                )
        found = run_case(spec, runtime, budget, report.degraded)
        if found is not None:
            minimized = spec
            if shrink_failures:
                minimized = shrink(spec, lambda s: run_case(s) is not None)
                final = run_case(minimized)
                if final is not None:
                    found = final
            failure = CaseFailure(minimized, spec, found)
            report.failures.append(failure)
            if corpus_dir is not None:
                _write_artifact(Path(corpus_dir), failure)
        if progress is not None:
            progress(index + 1, cases, report)
    if runtime is not None:
        report.chaos_stats = runtime.stats.as_dict()
    return report


def _write_artifact(corpus_dir: Path, failure: CaseFailure) -> Path:
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = (
        corpus_dir
        / f"{failure.spec.theory}-seed{failure.original_spec.seed}.json"
    )
    path.write_text(json.dumps(failure.as_dict(), indent=2, sort_keys=True))
    return path


def replay_artifact(path: str | Path) -> Discrepancy | None:
    """Re-run the minimized spec stored in a corpus artifact."""
    data = json.loads(Path(path).read_text())
    return run_case(CaseSpec.from_dict(data["spec"]))


# ----------------------------------------------------------------------- CLI
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro conformance",
        description="Differential conformance testing across all evaluation "
        "strategies of the constraint query engine.",
    )
    parser.add_argument(
        "--theory",
        default="all",
        help="dense|equality|boolean|poly|all (aliases accepted)",
    )
    parser.add_argument(
        "--cases", type=int, default=100, help="cases per theory"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed (default: REPRO_SEED env var, else 0)",
    )
    parser.add_argument(
        "--profile",
        choices=("smoke", "deep"),
        default="smoke",
        help="generator size preset",
    )
    parser.add_argument(
        "--case-seed",
        type=int,
        default=None,
        help="replay a single case by its per-case seed (needs --theory)",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        help="directory for surviving-discrepancy JSON artifacts",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip case minimization on failures",
    )
    parser.add_argument(
        "--chaos",
        nargs="*",
        default=None,
        metavar="KEY=VALUE",
        help="arm seeded fault injection, e.g. --chaos p=0.05 seed=7 "
        "(bare --chaos uses the policy defaults)",
    )
    parser.add_argument(
        "--budget",
        nargs="*",
        default=None,
        metavar="KEY=VALUE",
        help="per-strategy-run resource budget, e.g. "
        "--budget rounds=200 qe_steps=5000",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-strategy-run wall-clock deadline (shorthand for "
        "--budget deadline=SECONDS)",
    )
    args = parser.parse_args(argv)
    seed = resolve_seed(0) if args.seed is None else args.seed
    chaos = None
    if args.chaos is not None:
        try:
            chaos = parse_chaos_spec(args.chaos)
        except ValueError as error:
            parser.error(f"--chaos: {error}")
    budget = None
    if args.budget is not None or args.deadline is not None:
        try:
            budget = parse_budget_spec(args.budget or [])
        except ValueError as error:
            parser.error(f"--budget: {error}")
        if args.deadline is not None:
            budget = replace(budget, deadline_seconds=args.deadline)
        if budget.partial_results == "fringe":
            parser.error(
                "--budget: fringe mode is unsound under conformance "
                "(partial answers would register as mismatches); use the "
                "default raise mode"
            )
    config = DEEP if args.profile == "deep" else SMOKE
    if args.theory == "all":
        theories = list(THEORY_NAMES)
    else:
        name = THEORY_ALIASES.get(args.theory, args.theory)
        if name not in THEORY_NAMES:
            parser.error(f"unknown theory {args.theory!r}")
        theories = [name]
    if args.case_seed is not None:
        if len(theories) != 1:
            parser.error("--case-seed requires a single --theory")
        spec = generate_case(theories[0], args.case_seed, config)
        found = run_case(spec)
        print(json.dumps(spec.as_dict(), indent=2, sort_keys=True))
        if found is None:
            print("case-seed replay: all strategies agree")
            return 0
        print(f"case-seed replay: {found.describe()}")
        return 1
    exit_code = 0
    for theory in theories:
        report = run_conformance(
            theory,
            args.cases,
            seed,
            config,
            corpus_dir=args.corpus,
            shrink_failures=not args.no_shrink,
            chaos=chaos,
            budget=budget,
        )
        for line in report.summary_lines():
            print(line)
        if chaos is not None:
            from repro.harness.benchjson import record_bench

            record_bench(
                f"chaos_stats:{report.theory}",
                {
                    "theory": report.theory,
                    "cases": report.cases,
                    "seed": report.seed,
                    "policy": chaos.as_dict(),
                    "stats": report.chaos_stats,
                    "degraded": dict(report.degraded),
                    "discrepancies": len(report.failures),
                },
            )
        if not report.ok:
            exit_code = 1
            print(
                f"  replay: python -m repro conformance --theory {theory} "
                f"--case-seed <seed above>"
                + (f" (or REPRO_SEED={seed})" if args.seed is None else "")
            )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
