"""JSON-serializable conformance case descriptions and their builders.

A *case spec* is a plain-data description of one differential test case: a
constraint theory, a generalized database, and either a relational calculus
query, a Datalog program, or a bare existential block (for the QE-backend
comparison).  Specs are what the generators produce, what the shrinker
mutates, and what gets written to ``tests/conformance/corpus/`` when a
discrepancy survives -- so everything here must round-trip through JSON.

Encodings (all plain lists/dicts/strings):

* terms: ``["v", name]`` / ``["c", value]`` (dense-order constants are
  ``Fraction`` strings, equality constants ints);
* atoms: ``["ord", op, t, t]``, ``["equ", op, t, t]``,
  ``["poly", op, [[coeff, [[var, exp], ...]], ...]]``,
  ``["bool", bterm]`` (meaning ``bterm = 0``);
* boolean terms: ``["bvar", n]``, ``["bconst", n]``, ``["bzero"]``,
  ``["bone"]``, ``["band"|"bor"|"bxor", t, t]``, ``["bnot", t]``;
* formulas: an atom encoding, ``["rel", name, [args]]``,
  ``["not", f]``, ``["and", [fs]]``, ``["or", [fs]]``,
  ``["exists", [vars], f]``, ``["forall", [vars], f]``;
* rules: ``{"head": [name, [args]], "body": [literal, ...]}`` where a
  literal is a formula-encoded relation atom, ``["notrel", name, [args]]``,
  or an atom encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Sequence

from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.boolean_algebra.terms import (
    BAnd,
    BConst,
    BNot,
    BOne,
    BOr,
    BoolTerm,
    BVar,
    BXor,
    BZero,
)
from repro.constraints.base import ConstraintTheory
from repro.constraints.boolean import BooleanConstraintAtom, BooleanTheory
from repro.constraints.dense_order import DenseOrderTheory, OrderAtom
from repro.constraints.equality import EqualityAtom, EqualityTheory
from repro.constraints.real_poly import PolyAtom, RealPolynomialTheory
from repro.constraints.terms import Const, Var
from repro.core.datalog import Rule
from repro.core.generalized import GeneralizedDatabase
from repro.errors import ReproError
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
)
from repro.poly.polynomial import Polynomial


class SpecError(ReproError):
    """A case spec is malformed or cannot be decoded."""


@dataclass(frozen=True)
class CaseSpec:
    """One differential test case, as plain JSON-able data.

    ``kind`` is ``"calculus"`` (first-order query), ``"datalog"`` (rules +
    target predicate + semantics), or ``"qe"`` (existential block over
    constraint atoms only, for the QE-backend pair).
    """

    theory: str  # dense_order | equality | boolean | real_poly
    kind: str  # calculus | datalog | qe
    relations: tuple[tuple[str, tuple[str, ...], tuple[tuple[Any, ...], ...]], ...]
    output: tuple[str, ...]
    query: Any = None  # formula encoding (calculus / qe kinds)
    rules: tuple[Any, ...] = ()  # rule encodings (datalog kind)
    target: str | None = None  # target IDB predicate (datalog kind)
    semantics: str = "auto"  # datalog semantics for this case
    m: int = 0  # boolean algebra generator count
    seed: int | None = None  # generator seed, for replay messages

    def as_dict(self) -> dict[str, Any]:
        return {
            "theory": self.theory,
            "kind": self.kind,
            "relations": [
                [name, list(variables), [list(t) for t in tuples]]
                for name, variables, tuples in self.relations
            ],
            "output": list(self.output),
            "query": self.query,
            "rules": list(self.rules),
            "target": self.target,
            "semantics": self.semantics,
            "m": self.m,
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "CaseSpec":
        try:
            return CaseSpec(
                theory=data["theory"],
                kind=data["kind"],
                relations=tuple(
                    (name, tuple(variables), tuple(tuple(t) for t in tuples))
                    for name, variables, tuples in data["relations"]
                ),
                output=tuple(data["output"]),
                query=data.get("query"),
                rules=tuple(data.get("rules", ())),
                target=data.get("target"),
                semantics=data.get("semantics", "auto"),
                m=data.get("m", 0),
                seed=data.get("seed"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SpecError(f"malformed case spec: {error}") from error


@dataclass
class BuiltCase:
    """A spec instantiated against a fresh theory instance.

    Every strategy run builds its own :class:`BuiltCase` so no solver caches
    are shared between the strategies under comparison (cache correctness is
    itself one of the properties being tested).
    """

    spec: CaseSpec
    theory: ConstraintTheory
    database: GeneralizedDatabase
    query: Formula | None
    rules: list[Rule]
    output: tuple[str, ...]


THEORY_BUILDERS = {
    "dense_order": lambda spec: DenseOrderTheory(),
    "equality": lambda spec: EqualityTheory(),
    "boolean": lambda spec: BooleanTheory(FreeBooleanAlgebra.with_generators(spec.m)),
    "real_poly": lambda spec: RealPolynomialTheory(),
}


def build_theory(spec: CaseSpec) -> ConstraintTheory:
    try:
        factory = THEORY_BUILDERS[spec.theory]
    except KeyError:
        raise SpecError(f"unknown theory {spec.theory!r}") from None
    theory = factory(spec)
    # under an armed chaos scope (conformance --chaos) every theory is built
    # hardened: fault injection below, retry-with-backoff above.  Outside a
    # scope the wrappers are inert pass-throughs, so this only triggers for
    # strategies the runner deliberately executes under chaos_scope().
    from repro.runtime.chaos import current_chaos, harden

    runtime = current_chaos()
    if runtime is not None:
        theory = harden(theory, runtime.policy)
    return theory


def build_case(spec: CaseSpec) -> BuiltCase:
    """Instantiate a spec: fresh theory, database, and query or rules."""
    theory = build_theory(spec)
    database = GeneralizedDatabase(theory)
    for name, variables, tuples in spec.relations:
        relation = database.create_relation(name, variables)
        for encoded in tuples:
            relation.add_tuple([decode_atom(a, theory) for a in encoded])
    query = decode_formula(spec.query, theory) if spec.query is not None else None
    rules = [decode_rule(r, theory) for r in spec.rules]
    return BuiltCase(spec, theory, database, query, rules, spec.output)


# ------------------------------------------------------------------- terms
def encode_term(term: Any) -> list:
    if isinstance(term, Var):
        return ["v", term.name]
    if isinstance(term, Const):
        value = term.value
        if isinstance(value, Fraction):
            return ["c", str(value)]
        return ["c", value]
    raise SpecError(f"cannot encode term {term!r}")


def _decode_order_term(encoded: Sequence) -> Any:
    tag, value = encoded
    if tag == "v":
        return Var(value)
    if tag == "c":
        return Const(Fraction(value))
    raise SpecError(f"bad term encoding {encoded!r}")


def _decode_equality_term(encoded: Sequence) -> Any:
    tag, value = encoded
    if tag == "v":
        return Var(value)
    if tag == "c":
        return Const(value)
    raise SpecError(f"bad term encoding {encoded!r}")


# ------------------------------------------------------------------- atoms
def encode_atom(atom: Atom) -> list:
    if isinstance(atom, OrderAtom):
        return ["ord", atom.op, encode_term(atom.left), encode_term(atom.right)]
    if isinstance(atom, EqualityAtom):
        return ["equ", atom.op, encode_term(atom.left), encode_term(atom.right)]
    if isinstance(atom, PolyAtom):
        monomials = [
            [str(coeff), [[name, exp] for name, exp in mono]]
            for mono, coeff in sorted(atom.poly.terms.items())
        ]
        return ["poly", atom.op, monomials]
    if isinstance(atom, BooleanConstraintAtom):
        return ["bool", encode_bool_term(atom.term)]
    raise SpecError(f"cannot encode atom {atom!r}")


def decode_atom(encoded: Sequence, theory: ConstraintTheory) -> Atom:
    tag = encoded[0]
    if tag == "ord":
        _, op, left, right = encoded
        return OrderAtom(op, _decode_order_term(left), _decode_order_term(right))
    if tag == "equ":
        _, op, left, right = encoded
        return EqualityAtom(
            op, _decode_equality_term(left), _decode_equality_term(right)
        )
    if tag == "poly":
        _, op, monomials = encoded
        terms = {
            tuple((name, exp) for name, exp in mono): Fraction(coeff)
            for coeff, mono in monomials
        }
        return PolyAtom(Polynomial(terms), op)
    if tag == "bool":
        from repro.runtime.chaos import unwrap_theory

        bare = unwrap_theory(theory)
        if not isinstance(bare, BooleanTheory):
            raise SpecError("boolean atom outside a boolean-theory case")
        return BooleanConstraintAtom(decode_bool_term(encoded[1]), bare.algebra)
    raise SpecError(f"bad atom encoding {encoded!r}")


def encode_bool_term(term: BoolTerm) -> list:
    if isinstance(term, BVar):
        return ["bvar", term.name]
    if isinstance(term, BConst):
        return ["bconst", term.name]
    if isinstance(term, BZero):
        return ["bzero"]
    if isinstance(term, BOne):
        return ["bone"]
    if isinstance(term, BAnd):
        return ["band", encode_bool_term(term.left), encode_bool_term(term.right)]
    if isinstance(term, BOr):
        return ["bor", encode_bool_term(term.left), encode_bool_term(term.right)]
    if isinstance(term, BXor):
        return ["bxor", encode_bool_term(term.left), encode_bool_term(term.right)]
    if isinstance(term, BNot):
        return ["bnot", encode_bool_term(term.child)]
    raise SpecError(f"cannot encode boolean term {term!r}")


def decode_bool_term(encoded: Sequence) -> BoolTerm:
    tag = encoded[0]
    if tag == "bvar":
        return BVar(encoded[1])
    if tag == "bconst":
        return BConst(encoded[1])
    if tag == "bzero":
        return BZero()
    if tag == "bone":
        return BOne()
    if tag == "bnot":
        return BNot(decode_bool_term(encoded[1]))
    binary = {"band": BAnd, "bor": BOr, "bxor": BXor}.get(tag)
    if binary is not None:
        return binary(decode_bool_term(encoded[1]), decode_bool_term(encoded[2]))
    raise SpecError(f"bad boolean term encoding {encoded!r}")


# ---------------------------------------------------------------- formulas
_ATOM_TAGS = frozenset({"ord", "equ", "poly", "bool"})


def decode_formula(encoded: Any, theory: ConstraintTheory) -> Formula:
    tag = encoded[0]
    if tag in _ATOM_TAGS:
        return decode_atom(encoded, theory)
    if tag == "rel":
        return RelationAtom(encoded[1], tuple(encoded[2]))
    if tag == "not":
        return Not(decode_formula(encoded[1], theory))
    if tag == "and":
        return And(tuple(decode_formula(c, theory) for c in encoded[1]))
    if tag == "or":
        return Or(tuple(decode_formula(c, theory) for c in encoded[1]))
    if tag == "exists":
        return Exists(tuple(encoded[1]), decode_formula(encoded[2], theory))
    if tag == "forall":
        return ForAll(tuple(encoded[1]), decode_formula(encoded[2], theory))
    raise SpecError(f"bad formula encoding {encoded!r}")


def encode_formula(formula: Formula) -> Any:
    if isinstance(formula, RelationAtom):
        return ["rel", formula.name, list(formula.args)]
    if isinstance(formula, Atom):
        return encode_atom(formula)
    if isinstance(formula, Not):
        return ["not", encode_formula(formula.child)]
    if isinstance(formula, And):
        return ["and", [encode_formula(c) for c in formula.children]]
    if isinstance(formula, Or):
        return ["or", [encode_formula(c) for c in formula.children]]
    if isinstance(formula, Exists):
        return ["exists", list(formula.variables_bound), encode_formula(formula.child)]
    if isinstance(formula, ForAll):
        return ["forall", list(formula.variables_bound), encode_formula(formula.child)]
    raise SpecError(f"cannot encode formula {formula!r}")


# ------------------------------------------------------------------- rules
def decode_rule(encoded: dict, theory: ConstraintTheory) -> Rule:
    head_name, head_args = encoded["head"]
    body: list[object] = []
    for literal in encoded["body"]:
        tag = literal[0]
        if tag == "rel":
            body.append(RelationAtom(literal[1], tuple(literal[2])))
        elif tag == "notrel":
            body.append(Not(RelationAtom(literal[1], tuple(literal[2]))))
        elif tag in _ATOM_TAGS:
            body.append(decode_atom(literal, theory))
        else:
            raise SpecError(f"bad rule literal {literal!r}")
    return Rule(RelationAtom(head_name, tuple(head_args)), tuple(body))


def encode_rule(rule: Rule) -> dict:
    body: list[Any] = []
    for literal in rule.body:
        if isinstance(literal, RelationAtom):
            body.append(["rel", literal.name, list(literal.args)])
        elif isinstance(literal, Not):
            child = literal.child
            assert isinstance(child, RelationAtom)
            body.append(["notrel", child.name, list(child.args)])
        elif isinstance(literal, Atom):
            body.append(encode_atom(literal))
        else:
            raise SpecError(f"cannot encode rule literal {literal!r}")
    return {"head": [rule.head.name, list(rule.head.args)], "body": body}
