"""Seeded update sequences for the incremental-maintenance strategies.

The ``incremental`` conformance strategy replays a spec's EDB as a stream of
insert/retract deltas through :class:`repro.core.ivm.MaterializedView`,
asserting after every step that the maintained fixpoint equals a from-scratch
evaluation of the same EDB state.  The stream comes from here.

An update sequence is a *pure function of the spec* (its seed and its
relation tuples): steps reference spec tuples by (relation name, tuple
index), never by value.  That buys three properties for free:

* **replayability** -- a corpus artifact replays the identical sequence;
* **shrinker support** -- the spec-level shrinker drops tuples/relations and
  the derived sequence shrinks with them, no sequence-aware shrinking rules
  needed;
* **net-effect equality** -- every tuple is inserted exactly once and churn
  rounds retract-then-reinsert already-inserted tuples, so the final EDB
  state is exactly the spec's EDB and the strategy's final answer is
  comparable against every other strategy through the ordinary oracles.

``churn > 0`` additionally weaves in retract/reinsert rounds (exercising
DRed over-deletion/re-derivation and the counting decrement path) and no-op
retracts of not-yet-inserted tuples (which must cost nothing).
"""

from __future__ import annotations

import random

from repro.conformance.spec import CaseSpec
from repro.errors import ReproError

#: one update step: (``"insert"`` | ``"retract"``, relation name, tuple index
#: into that relation's tuple list in ``spec.relations``)
UpdateStep = tuple[str, str, int]


class IncrementalMismatchError(ReproError):
    """The maintained view diverged from the from-scratch fixpoint.

    Raised by the ``incremental`` strategies at the first update step whose
    maintained world differs (as canonical key sets) from re-evaluating the
    program against the current EDB state; the conformance runner reports it
    as a discrepancy of oracle ``"incremental"``.
    """

    def __init__(self, step: int, op: UpdateStep, relation: str) -> None:
        self.step = step
        self.op = op
        self.relation = relation
        super().__init__(
            f"maintained != scratch at step {step} ({op[0]} {op[1]}[{op[2]}]): "
            f"relation {relation!r} differs"
        )


def update_sequence(spec: CaseSpec, churn: int = 0) -> list[UpdateStep]:
    """Derive the deterministic update stream for a spec.

    The base stream inserts every EDB tuple exactly once, in seeded-shuffled
    order.  Each of the ``churn`` rounds then picks an insert, retracts that
    tuple again at a later point, and reinserts it after the retract --
    preserving the net effect.  Finally, one no-op retract of a tuple that
    is not yet present is woven in.
    """
    rng = random.Random((spec.seed or 0) ^ 0x1B01)
    steps: list[UpdateStep] = [
        ("insert", name, index)
        for name, _variables, tuples in spec.relations
        for index in range(len(tuples))
    ]
    rng.shuffle(steps)
    for _ in range(churn):
        if not steps:
            break
        anchor = rng.randrange(len(steps))
        op, name, index = steps[anchor]
        if op != "insert":
            continue
        # retract strictly after the anchor insert, reinsert after that
        retract_at = rng.randint(anchor + 1, len(steps))
        steps.insert(retract_at, ("retract", name, index))
        steps.insert(rng.randint(retract_at + 1, len(steps)), ("insert", name, index))
    if churn and steps:
        # one no-op retract: placed at or before the tuple's first insert,
        # so the tuple is not present and the step must cost nothing
        first_insert = {}
        for position, (op, name, index) in reversed(list(enumerate(steps))):
            if op == "insert":
                first_insert[(name, index)] = position
        (name, index), position = rng.choice(sorted(first_insert.items()))
        steps.insert(rng.randrange(position + 1), ("retract", name, index))
    return steps
