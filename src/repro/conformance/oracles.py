"""Semantic-equivalence oracles for pairs of generalized relations.

Two generalized relations are *equivalent* when they denote the same
unrestricted point set (Definition 1.3).  Syntactic equality is useless here
-- different strategies legitimately produce different DNFs (EVAL-phi's
r-configuration disjunctions are much finer than the calculus evaluator's)
-- so the oracles work at the semantic level, strongest first:

1. **symbolic symmetric difference** (dense order, equality, real_poly):
   ``left != right`` iff some conjunct of one side is jointly satisfiable
   with the complement of the other; complete because satisfiability is
   decided by the theory solver itself;
2. **exhaustive enumeration** (boolean): the domain ``B_m`` is finite
   (``2^(2^m)`` elements), so all points of ``B_m^k`` are checked -- also
   complete, and independent of any solver;
3. **endpoint grid sampling** (all ordered theories): evaluate both
   relations at every constant mentioned by either side, at *two* interior
   rationals per gap between consecutive constants, and at points beyond
   both ends.  For dense order this grid is complete for arities <= 2: a
   tuple's truth depends only on the order type of its coordinates relative
   to the constants (Lemma 3.9), and two interior points per gap realize
   every order type (``x < y``, ``x = y``, ``x > y``) inside a single gap;
4. **per-tuple witnesses**: each tuple's ``sample_point`` must be contained
   in the other relation (a fast, targeted subset of 3).

Oracle 3/4 are kept even where 1 applies: they exercise ``holds``/
``sample_point`` themselves and catch solver bugs that a solver-based
symmetric difference would mirror on both sides.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Mapping

from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.core.calculus import complement_dnf
from repro.core.generalized import GeneralizedRelation
from repro.errors import ReproError

#: grid size guard: skip point products larger than this (arity 3+ deep runs)
MAX_GRID_POINTS = 4096


@dataclass
class Discrepancy:
    """One observed disagreement between two strategies on one case."""

    left_name: str
    right_name: str
    oracle: str  # witness | grid | symbolic | enumeration
    point: dict[str, Any] | None  # a point in the symmetric difference
    detail: str

    def describe(self) -> str:
        where = f" at {_printable_point(self.point)}" if self.point else ""
        return (
            f"{self.left_name} vs {self.right_name} [{self.oracle}]{where}: "
            f"{self.detail}"
        )


def _printable_point(point: Mapping[str, Any] | None) -> dict[str, str]:
    return {} if point is None else {k: str(v) for k, v in point.items()}


def compare_relations(
    left: GeneralizedRelation,
    right: GeneralizedRelation,
    left_name: str,
    right_name: str,
    theory_name: str,
    m: int = 0,
) -> Discrepancy | None:
    """The first discrepancy between two results, or None if equivalent."""
    if tuple(left.variables) != tuple(right.variables):
        return Discrepancy(
            left_name,
            right_name,
            "schema",
            None,
            f"schemas differ: {left.variables} vs {right.variables}",
        )
    if theory_name == "boolean":
        return _enumerate_boolean(left, right, left_name, right_name, m)
    symbolic = _symbolic_difference(left, right, left_name, right_name)
    if symbolic is not None:
        return symbolic
    witness = _witness_check(left, right, left_name, right_name)
    if witness is not None:
        return witness
    return _grid_check(left, right, left_name, right_name, theory_name)


# ------------------------------------------------------------- oracle 1
def _symbolic_difference(
    left: GeneralizedRelation,
    right: GeneralizedRelation,
    left_name: str,
    right_name: str,
) -> Discrepancy | None:
    """sat(left and not right) or sat(right and not left), via the theory."""
    theory = left.theory
    sides = (
        (left, right, left_name, right_name),
        (right, left, right_name, left_name),
    )
    for inside, outside, inside_name, outside_name in sides:
        outside_dnf = [tuple(t.atoms) for t in outside]
        complement = complement_dnf(outside_dnf, theory)
        for item in inside:
            for conjunction in complement:
                candidate = tuple(item.atoms) + conjunction
                if theory.is_satisfiable(candidate):
                    point = theory.sample_point(candidate, inside.variables)
                    return Discrepancy(
                        left_name,
                        right_name,
                        "symbolic",
                        point,
                        f"point set of {inside_name} is not contained in "
                        f"{outside_name}",
                    )
    return None


# ------------------------------------------------------------- oracle 2
def _enumerate_boolean(
    left: GeneralizedRelation,
    right: GeneralizedRelation,
    left_name: str,
    right_name: str,
    m: int,
) -> Discrepancy | None:
    """Exhaustive check over the finite domain ``B_m`` (complete)."""
    algebra = FreeBooleanAlgebra.with_generators(m)
    elements = list(algebra.all_elements())
    variables = left.variables
    for values in itertools.product(elements, repeat=len(variables)):
        point = dict(zip(variables, values))
        in_left = left.contains_point(point)
        in_right = right.contains_point(point)
        if in_left != in_right:
            return Discrepancy(
                left_name,
                right_name,
                "enumeration",
                point,
                f"in {left_name}: {in_left}, in {right_name}: {in_right}",
            )
    return None


# ------------------------------------------------------------- oracle 3
def sample_grid(constants: Iterable[Any], theory_name: str) -> list[Any]:
    """The point-membership sampling grid for one coordinate.

    Rational theories: every constant, two interior points per gap between
    consecutive constants (so both orders of a coordinate pair are realized
    inside one gap), and two points beyond each end.  Equality theory: every
    constant plus two fresh values (two, so distinct-from-all pairs with
    ``x != y`` are realizable).
    """
    if theory_name == "equality":
        values = sorted(set(constants))
        fresh_base = (max(values) if values else 0) + 1
        return list(values) + [fresh_base, fresh_base + 1]
    values = sorted({Fraction(c) for c in constants})
    if not values:
        return [Fraction(0), Fraction(1), Fraction(2)]
    grid: list[Fraction] = [values[0] - 2, values[0] - 1]
    for index, value in enumerate(values):
        grid.append(value)
        if index + 1 < len(values):
            gap = values[index + 1] - value
            grid.append(value + gap / 3)
            grid.append(value + 2 * gap / 3)
    grid.extend([values[-1] + 1, values[-1] + 2])
    return grid


def _grid_check(
    left: GeneralizedRelation,
    right: GeneralizedRelation,
    left_name: str,
    right_name: str,
    theory_name: str,
) -> Discrepancy | None:
    constants = set(left.constants()) | set(right.constants())
    grid = sample_grid(constants, theory_name)
    variables = left.variables
    if len(grid) ** len(variables) > MAX_GRID_POINTS:
        return None  # symbolic oracle already covered this case
    for values in itertools.product(grid, repeat=len(variables)):
        point = dict(zip(variables, values))
        in_left = left.contains_point(point)
        in_right = right.contains_point(point)
        if in_left != in_right:
            return Discrepancy(
                left_name,
                right_name,
                "grid",
                point,
                f"in {left_name}: {in_left}, in {right_name}: {in_right}",
            )
    return None


# ------------------------------------------------------------- oracle 4
def _witness_check(
    left: GeneralizedRelation,
    right: GeneralizedRelation,
    left_name: str,
    right_name: str,
) -> Discrepancy | None:
    """Each tuple's own sample point must lie in the other relation."""
    sides = (
        (left, right, left_name, right_name),
        (right, left, right_name, left_name),
    )
    for inside, outside, inside_name, outside_name in sides:
        for item in inside:
            try:
                point = inside.theory.sample_point(item.atoms, inside.variables)
            except ReproError:
                continue
            if point is None:
                continue
            if not inside.contains_point(point):
                return Discrepancy(
                    left_name,
                    right_name,
                    "witness",
                    point,
                    f"sample point of a {inside_name} tuple is not in "
                    f"{inside_name} itself (broken sample_point or holds)",
                )
            if not outside.contains_point(point):
                return Discrepancy(
                    left_name,
                    right_name,
                    "witness",
                    point,
                    f"witness of a {inside_name} tuple is missing from "
                    f"{outside_name}",
                )
    return None
