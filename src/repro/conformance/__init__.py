"""Differential conformance harness for the four constraint theories.

The paper's central guarantee is *closed-form bottom-up evaluation*: every
query strategy -- calculus + quantifier elimination (Thm 2.3), r-/e-
configuration enumeration (Thms 3.14/4.11), the generalized relational
algebra (Section 2.1), and the Datalog fixpoint engines -- must denote the
same point set.  This package checks that guarantee mechanically:

* :mod:`repro.conformance.spec` -- JSON-serializable case descriptions
  (generalized database + query/program) and builders;
* :mod:`repro.conformance.generators` -- seeded random case generation per
  theory, with size knobs shared by CI smoke runs and deep nightly runs;
* :mod:`repro.conformance.strategies` -- the strategy registry: every way
  the engine can evaluate a case, including each ``EngineOptions`` ablation
  and the Fourier-Motzkin vs virtual-substitution QE backends;
* :mod:`repro.conformance.oracles` -- semantic equivalence of generalized
  relations via endpoint/point-membership sampling plus symbolic
  symmetric-difference checks;
* :mod:`repro.conformance.shrinker` -- greedy case minimization;
* :mod:`repro.conformance.runner` -- the differential loop, replayable JSON
  corpus artifacts, and the ``python -m repro conformance`` CLI.
"""

from repro.conformance.generators import (
    GeneratorConfig,
    THEORY_NAMES,
    generate_case,
    resolve_seed,
)
from repro.conformance.oracles import Discrepancy, compare_relations
from repro.conformance.runner import ConformanceReport, run_conformance
from repro.conformance.spec import BuiltCase, CaseSpec, build_case
from repro.conformance.strategies import Strategy, strategies_for

__all__ = [
    "BuiltCase",
    "CaseSpec",
    "ConformanceReport",
    "Discrepancy",
    "GeneratorConfig",
    "Strategy",
    "THEORY_NAMES",
    "build_case",
    "compare_relations",
    "generate_case",
    "resolve_seed",
    "run_conformance",
    "strategies_for",
]
