"""Seeded random case generation for the differential conformance harness.

Each generator is a pure function of ``(theory, seed, config)`` producing a
:class:`~repro.conformance.spec.CaseSpec` -- replaying a seed replays the
exact case, which is what the corpus artifacts and the ``--seed`` CLI knob
rely on.  The :class:`GeneratorConfig` size knobs let the same generator
drive fast CI smoke runs (``SMOKE``) and deep nightly runs (``DEEP``).

The grammar per theory mirrors what the engine claims to support:

* **dense_order / equality**: databases of interval/point tuples over
  ``R(u)``/``S(u, v)``/``V(u)``; calculus queries built from relation atoms,
  theory atoms, ``not``/``and``/``or``/``exists``/``forall``; transitive-
  closure-shaped Datalog programs with optional stratified or inflationary
  negation;
* **boolean** (``B_m``, m <= 1): *positive* existential calculus queries and
  positive Datalog only -- the theory has no negation (Section 5);
* **real_poly**: linear constraints only (the paper's Section 6 emphasis and
  the fragment where Fourier-Motzkin and virtual substitution overlap);
  Datalog programs are nonrecursive (Example 1.12: recursion is not closed).

``REPRO_SEED`` (see :func:`resolve_seed`) overrides the base seed everywhere
so any run -- pytest, benchmark, or CLI -- can be replayed exactly.
"""

from __future__ import annotations

import os
import random
import zlib
from dataclasses import dataclass
from typing import Any

from repro.conformance.spec import CaseSpec

#: canonical theory order; also the CLI's ``--theory all`` expansion
THEORY_NAMES = ("dense_order", "equality", "boolean", "real_poly")

#: short CLI aliases
THEORY_ALIASES = {
    "dense": "dense_order",
    "order": "dense_order",
    "eq": "equality",
    "bool": "boolean",
    "poly": "real_poly",
    "linear": "real_poly",
}

#: environment variable overriding every conformance/benchmark seed
SEED_ENV_VAR = "REPRO_SEED"


def resolve_seed(default: int = 0) -> int:
    """The base seed: ``REPRO_SEED`` if set, else ``default``.

    Every harness entry point funnels through this, so exporting
    ``REPRO_SEED=N`` replays a failing run without editing code.
    """
    raw = os.environ.get(SEED_ENV_VAR)
    if raw is None:
        return default
    try:
        return int(raw, 0)
    except ValueError:
        raise ValueError(
            f"{SEED_ENV_VAR} must be an integer, got {raw!r}"
        ) from None


@dataclass(frozen=True)
class GeneratorConfig:
    """Size knobs shared by all four theory generators."""

    #: maximum generalized tuples per database relation
    max_tuples: int = 3
    #: largest integer constant used in databases and queries
    max_constant: int = 6
    #: maximum depth of the random query tree
    max_depth: int = 3
    #: probability that a calculus case has a binary output schema
    binary_output_share: float = 0.2
    #: boolean algebra generator count is drawn from [0, max_algebra_m]
    max_algebra_m: int = 1

    @staticmethod
    def smoke() -> "GeneratorConfig":
        return GeneratorConfig()

    @staticmethod
    def deep() -> "GeneratorConfig":
        return GeneratorConfig(
            max_tuples=5, max_constant=9, max_depth=4, binary_output_share=0.3
        )


SMOKE = GeneratorConfig.smoke()
DEEP = GeneratorConfig.deep()


def case_seed(base_seed: int, theory: str, index: int) -> int:
    """A stable per-case seed derived from the run seed.

    Uses crc32, not ``hash`` -- string hashing is randomized per process,
    and case seeds must replay across runs.
    """
    return zlib.crc32(f"{theory}:{base_seed}:{index}".encode()) & 0x7FFFFFFF


def generate_case(
    theory: str, seed: int, config: GeneratorConfig = SMOKE
) -> CaseSpec:
    """A random case spec for ``theory``, deterministic in ``seed``."""
    name = THEORY_ALIASES.get(theory, theory)
    # string seeding hashes with sha512 (stable across processes); tuple
    # seeding would fall back to randomized hash()
    rng = random.Random(f"{name}:{seed}")
    if name == "dense_order":
        return _dense_case(rng, seed, config)
    if name == "equality":
        return _equality_case(rng, seed, config)
    if name == "boolean":
        return _boolean_case(rng, seed, config)
    if name == "real_poly":
        return _poly_case(rng, seed, config)
    raise ValueError(f"unknown theory {theory!r}")


# ------------------------------------------------------------- dense order
def _frac(value: int) -> list:
    return ["c", str(value)]


def _dense_atom(rng: random.Random, variables: list[str], config) -> list:
    op = rng.choice(["<", "<=", "=", "!="])
    left = rng.choice(variables)
    if len(variables) > 1 and rng.random() < 0.4:
        right = rng.choice([v for v in variables if v != left])
        return ["ord", op, ["v", left], ["v", right]]
    constant = rng.randrange(config.max_constant + 1)
    if rng.random() < 0.5:
        return ["ord", op, ["v", left], _frac(constant)]
    return ["ord", op, _frac(constant), ["v", left]]


def _dense_relations(rng: random.Random, config) -> tuple:
    r_tuples = []
    for _ in range(rng.randrange(1, config.max_tuples + 1)):
        low = rng.randrange(config.max_constant + 1)
        width = rng.randrange(4)
        if rng.random() < 0.3 and width:
            r_tuples.append(
                (["ord", "<", _frac(low), ["v", "u"]],
                 ["ord", "<", ["v", "u"], _frac(low + width)])
            )
        elif rng.random() < 0.15:
            r_tuples.append((["ord", "<=", _frac(low), ["v", "u"]],))
        else:
            r_tuples.append(
                (["ord", "<=", _frac(low), ["v", "u"]],
                 ["ord", "<=", ["v", "u"], _frac(low + width)])
            )
    s_tuples = []
    for _ in range(rng.randrange(config.max_tuples)):
        a = rng.randrange(config.max_constant + 1)
        b = rng.randrange(config.max_constant + 1)
        s_tuples.append(
            (["ord", "=", ["v", "u"], _frac(a)],
             ["ord", "=", ["v", "v"], _frac(b)])
        )
    if rng.random() < 0.3:
        low = rng.randrange(config.max_constant)
        s_tuples.append(
            (["ord", "<=", _frac(low), ["v", "u"]],
             ["ord", "<", ["v", "u"], ["v", "v"]],
             ["ord", "<=", ["v", "v"], _frac(low + 2)])
        )
    return (
        ("R", ("u",), tuple(r_tuples)),
        ("S", ("u", "v"), tuple(s_tuples)),
    )


def _dense_case(rng: random.Random, seed: int, config) -> CaseSpec:
    relations = _dense_relations(rng, config)
    if rng.random() < 0.4:
        return _order_like_datalog_case(
            "dense_order", rng, seed, config, atom=_dense_atom
        )
    output = (
        ("x", "y") if rng.random() < config.binary_output_share else ("x",)
    )
    query = _calculus_query(
        rng, config, output, atom=_dense_atom, allow_negation=True
    )
    return CaseSpec(
        theory="dense_order",
        kind="calculus",
        relations=relations,
        output=output,
        query=query,
        seed=seed,
    )


# ---------------------------------------------------------------- equality
def _equality_atom(rng: random.Random, variables: list[str], config) -> list:
    op = rng.choice(["=", "!="])
    left = rng.choice(variables)
    if len(variables) > 1 and rng.random() < 0.4:
        right = rng.choice([v for v in variables if v != left])
        return ["equ", op, ["v", left], ["v", right]]
    return ["equ", op, ["v", left], ["c", rng.randrange(config.max_constant + 1)]]


def _equality_relations(rng: random.Random, config) -> tuple:
    r_tuples = []
    for _ in range(rng.randrange(1, config.max_tuples + 1)):
        r_tuples.append(
            (["equ", "=", ["v", "u"], ["c", rng.randrange(config.max_constant + 1)]],)
        )
    if rng.random() < 0.25:
        r_tuples.append(
            (["equ", "!=", ["v", "u"], ["c", rng.randrange(config.max_constant + 1)]],)
        )
    s_tuples = []
    for _ in range(rng.randrange(config.max_tuples)):
        if rng.random() < 0.75:
            s_tuples.append(
                (["equ", "=", ["v", "u"], ["c", rng.randrange(config.max_constant + 1)]],
                 ["equ", "=", ["v", "v"], ["c", rng.randrange(config.max_constant + 1)]])
            )
        else:
            s_tuples.append((["equ", "!=", ["v", "u"], ["v", "v"]],))
    return (
        ("R", ("u",), tuple(r_tuples)),
        ("S", ("u", "v"), tuple(s_tuples)),
    )


def _equality_case(rng: random.Random, seed: int, config) -> CaseSpec:
    relations = _equality_relations(rng, config)
    if rng.random() < 0.4:
        return _order_like_datalog_case(
            "equality", rng, seed, config, atom=_equality_atom
        )
    output = (
        ("x", "y") if rng.random() < config.binary_output_share else ("x",)
    )
    query = _calculus_query(
        rng, config, output, atom=_equality_atom, allow_negation=True
    )
    return CaseSpec(
        theory="equality",
        kind="calculus",
        relations=relations,
        output=output,
        query=query,
        seed=seed,
    )


# ----------------------------------------------------------------- boolean
def _bool_term(rng: random.Random, variables: list[str], m: int, depth: int) -> list:
    if depth <= 0 or rng.random() < 0.4:
        choices: list[list] = [["bvar", rng.choice(variables)], ["bzero"], ["bone"]]
        if m:
            choices.append(["bconst", f"c{rng.randrange(m)}"])
        return rng.choice(choices)
    op = rng.choice(["band", "bor", "bxor", "bnot"])
    if op == "bnot":
        return ["bnot", _bool_term(rng, variables, m, depth - 1)]
    return [
        op,
        _bool_term(rng, variables, m, depth - 1),
        _bool_term(rng, variables, m, depth - 1),
    ]


def _bool_atom(rng: random.Random, variables: list[str], config, m: int = 1) -> list:
    return ["bool", _bool_term(rng, variables, m, 2)]


def _boolean_relations(rng: random.Random, config, m: int) -> tuple:
    r_tuples = []
    for _ in range(rng.randrange(1, config.max_tuples + 1)):
        r_tuples.append((["bool", _bool_term(rng, ["u"], m, 2)],))
    s_tuples = []
    for _ in range(rng.randrange(1, config.max_tuples + 1)):
        s_tuples.append(
            (["bool", _bool_term(rng, ["u"], m, 1)],
             ["bool", _bool_term(rng, ["v"], m, 1)])
        )
    return (
        ("R", ("u",), tuple(r_tuples)),
        ("S", ("u", "v"), tuple(s_tuples)),
    )


def _boolean_case(rng: random.Random, seed: int, config) -> CaseSpec:
    m = rng.randrange(config.max_algebra_m + 1)
    relations = _boolean_relations(rng, config, m)
    if rng.random() < 0.45:
        return _boolean_datalog_case(rng, seed, config, m)
    output = ("x",) if rng.random() > config.binary_output_share else ("x", "y")

    def atom(rng_, variables, config_):
        return _bool_atom(rng_, variables, config_, m)

    query = _calculus_query(rng, config, output, atom=atom, allow_negation=False)
    return CaseSpec(
        theory="boolean",
        kind="calculus",
        relations=relations,
        output=output,
        query=query,
        m=m,
        seed=seed,
    )


def _boolean_datalog_case(rng: random.Random, seed: int, config, m: int) -> CaseSpec:
    """Positive transitive closure over a random boolean-element graph."""
    algebra_size = 2 ** (2**m)
    e_tuples = []
    for _ in range(rng.randrange(2, config.max_tuples + 2)):
        a = rng.randrange(algebra_size)
        b = rng.randrange(algebra_size)
        e_tuples.append(
            (_bool_element_eq("x", a, m), _bool_element_eq("y", b, m))
        )
    if rng.random() < 0.3:
        e_tuples.append((["bool", ["band", ["bvar", "x"], ["bvar", "y"]]],))
    rules: list[Any] = [
        {"head": ["T", ["x", "y"]], "body": [["rel", "E", ["x", "y"]]]},
        {
            "head": ["T", ["x", "y"]],
            "body": [["rel", "T", ["x", "z"]], ["rel", "E", ["z", "y"]]],
        },
    ]
    return CaseSpec(
        theory="boolean",
        kind="datalog",
        relations=(("E", ("x", "y"), tuple(e_tuples)),),
        output=("x", "y"),
        rules=tuple(rules),
        target="T",
        semantics="auto",
        m=m,
        seed=seed,
    )


def _bool_element_eq(variable: str, minterm_mask: int, m: int) -> list:
    """``variable = element`` where the element is the given minterm set.

    Encoded as ``variable xor element-term = 0``; the element term is the
    join of its minterms, each a meet of (complemented) generators.
    """
    clauses: list = []
    for minterm in range(2**m):
        if not minterm_mask & (1 << minterm):
            continue
        clause: list = ["bone"]
        for i in range(m):
            literal: list = ["bconst", f"c{i}"]
            if not minterm & (1 << i):
                literal = ["bnot", literal]
            clause = ["band", clause, literal]
        clauses.append(clause)
    if not clauses:
        element: list = ["bzero"]
    else:
        element = clauses[0]
        for clause in clauses[1:]:
            element = ["bor", element, clause]
    return ["bool", ["bxor", ["bvar", variable], element]]


# --------------------------------------------------------------- real poly
def _linear_poly(
    rng: random.Random, variables: list[str], config, n_vars: int = 2
) -> list:
    """Monomial encoding of a random linear polynomial over ``variables``."""
    monomials: list = []
    chosen = rng.sample(variables, min(len(variables), rng.randrange(1, n_vars + 1)))
    for name in chosen:
        coeff = rng.choice([-2, -1, 1, 2])
        monomials.append([str(coeff), [[name, 1]]])
    constant = rng.randrange(-config.max_constant, config.max_constant + 1)
    if constant or not monomials:
        monomials.append([str(constant), []])
    return monomials


def _poly_atom(rng: random.Random, variables: list[str], config) -> list:
    op = rng.choice(["<", "<=", "=", "!="])
    return ["poly", op, _linear_poly(rng, variables, config)]


def _poly_relations(rng: random.Random, config) -> tuple:
    r_tuples = []
    for _ in range(rng.randrange(1, config.max_tuples + 1)):
        low = rng.randrange(config.max_constant + 1)
        width = rng.randrange(1, 4)
        # low <= u <= low+width, i.e. low - u <= 0 and u - (low+width) <= 0
        r_tuples.append(
            (["poly", "<=", [[str(-1), [["u", 1]]], [str(low), []]]],
             ["poly", "<=", [[str(1), [["u", 1]]], [str(-(low + width)), []]]])
        )
    s_tuples = []
    for _ in range(rng.randrange(config.max_tuples)):
        a = rng.randrange(config.max_constant + 1)
        b = rng.randrange(config.max_constant + 1)
        s_tuples.append(
            (["poly", "=", [[str(1), [["u", 1]]], [str(-a), []]]],
             ["poly", "=", [[str(1), [["v", 1]]], [str(-b), []]]])
        )
    if rng.random() < 0.3:
        bound = rng.randrange(2, config.max_constant + 2)
        # 0 <= u, 0 <= v, u + v <= bound
        s_tuples.append(
            (["poly", "<=", [[str(-1), [["u", 1]]]]],
             ["poly", "<=", [[str(-1), [["v", 1]]]]],
             ["poly", "<=", [[str(1), [["u", 1]]], [str(1), [["v", 1]]], [str(-bound), []]]])
        )
    return (
        ("R", ("u",), tuple(r_tuples)),
        ("S", ("u", "v"), tuple(s_tuples)),
    )


def _poly_case(rng: random.Random, seed: int, config) -> CaseSpec:
    roll = rng.random()
    if roll < 0.3:
        return _qe_case(rng, seed, config)
    relations = _poly_relations(rng, config)
    if roll < 0.55:
        return _poly_datalog_case(rng, seed, config, relations)
    output = (
        ("x", "y") if rng.random() < config.binary_output_share else ("x",)
    )
    query = _calculus_query(
        rng, config, output, atom=_poly_atom, allow_negation=True, allow_forall=False
    )
    return CaseSpec(
        theory="real_poly",
        kind="calculus",
        relations=relations,
        output=output,
        query=query,
        seed=seed,
    )


def _poly_datalog_case(rng: random.Random, seed: int, config, relations) -> CaseSpec:
    """Nonrecursive rules only: recursion over real_poly is not closed."""
    rules: list[Any] = [
        {
            "head": ["P", ["x"]],
            "body": [["rel", "S", ["x", "w"]], _poly_atom(rng, ["x", "w"], config)],
        },
        {"head": ["P", ["x"]], "body": [["rel", "R", ["x"]]]},
    ]
    if rng.random() < 0.5:
        rules.append(
            {
                "head": ["Q", ["x", "y"]],
                "body": [
                    ["rel", "S", ["x", "w"]],
                    ["rel", "S", ["w", "y"]],
                ],
            }
        )
        target = "Q"
        output = ("x", "y")
    else:
        target = "P"
        output = ("x",)
    return CaseSpec(
        theory="real_poly",
        kind="datalog",
        relations=relations,
        output=output,
        rules=tuple(rules),
        target=target,
        semantics="auto",
        seed=seed,
    )


def _qe_case(rng: random.Random, seed: int, config) -> CaseSpec:
    """An existential block over a random linear conjunction (FM vs VS)."""
    variables = ["x", "y", "z"][: rng.randrange(2, 4)]
    n_drop = rng.randrange(1, len(variables))
    dropped = rng.sample(variables, n_drop)
    atoms = [
        _poly_atom(rng, variables, config)
        for _ in range(rng.randrange(2, config.max_tuples + 3))
    ]
    used = {
        name
        for atom in atoms
        for monomial in atom[2]
        for name, _exp in monomial[1]
    }
    for name in dropped:
        if name not in used:
            # make sure every bound variable actually occurs in the block
            atoms.append(_poly_atom(rng, [name], config))
            used.add(name)
    # the output must be exactly the block's free variables: kept variables
    # that no atom mentions are not free, so they cannot appear in the schema
    output = tuple(v for v in variables if v not in dropped and v in used)
    query = ["exists", dropped, ["and", atoms]]
    return CaseSpec(
        theory="real_poly",
        kind="qe",
        relations=(),
        output=output,
        query=query,
        seed=seed,
    )


# --------------------------------------------------- shared query skeleton
def _calculus_query(
    rng: random.Random,
    config,
    output: tuple[str, ...],
    atom,
    allow_negation: bool,
    allow_forall: bool | None = None,
) -> list:
    """A random query with free variables exactly ``output``.

    The top level conjoins an *anchor* relation atom mentioning every output
    variable (pinning the free-variable set) with a random subformula over
    the outputs; the subformula may quantify fresh variables.
    """
    if allow_forall is None:
        allow_forall = allow_negation
    if output == ("x",):
        anchor = ["rel", "R", ["x"]]
    else:
        anchor = ["rel", "S", ["x", "y"]]
    body = _random_subformula(
        rng,
        config,
        list(output),
        depth=rng.randrange(1, config.max_depth + 1),
        atom=atom,
        allow_negation=allow_negation,
        allow_forall=allow_forall,
        quantifier_budget=2,
    )
    shape = rng.random()
    if shape < 0.25:
        return anchor
    if shape < 0.55 or not allow_negation:
        return ["and", [anchor, body]]
    if shape < 0.8:
        return ["or", [anchor, ["and", [anchor, body]]]]
    return ["and", [anchor, ["not", body]]] if _is_relation_atom(body) else [
        "and",
        [anchor, body],
    ]


def _is_relation_atom(encoded: Any) -> bool:
    return isinstance(encoded, list) and encoded and encoded[0] == "rel"


def _random_subformula(
    rng: random.Random,
    config,
    scope: list[str],
    depth: int,
    atom,
    allow_negation: bool,
    allow_forall: bool,
    quantifier_budget: int,
) -> list:
    """A random formula with free variables drawn from ``scope``."""
    if depth <= 0:
        return _leaf(rng, config, scope, atom, allow_negation)
    roll = rng.random()
    recurse = lambda s, q=quantifier_budget: _random_subformula(  # noqa: E731
        rng, config, s, depth - 1, atom, allow_negation, allow_forall, q
    )
    if roll < 0.25:
        return ["and", [recurse(scope), recurse(scope)]]
    if roll < 0.5:
        return ["or", [recurse(scope), recurse(scope)]]
    if roll < 0.85 and quantifier_budget > 0:
        fresh = f"w{quantifier_budget}"
        inner_scope = scope + [fresh]
        quantified_leaf = rng.random()
        if quantified_leaf < 0.6:
            # quantify over a relation atom so the bound variable matters
            base: list = ["rel", "S", [rng.choice(scope) if scope else fresh, fresh]]
        else:
            base = ["and", [["rel", "S", [scope[0] if scope else fresh, fresh]],
                            atom(rng, inner_scope, config)]]
        if allow_forall and rng.random() < 0.15:
            return ["forall", [fresh], ["or", [["not", base] if allow_negation else base,
                                               recurse(scope, quantifier_budget - 1)]]]
        return ["exists", [fresh], base]
    return _leaf(rng, config, scope, atom, allow_negation)


def _leaf(rng, config, scope, atom, allow_negation) -> list:
    roll = rng.random()
    if roll < 0.35 and scope:
        return atom(rng, scope, config)
    if roll < 0.7 and "x" in scope:
        leaf: list = ["rel", "R", ["x"]]
    elif len(scope) >= 2:
        leaf = ["rel", "S", [scope[0], scope[1]]]
    elif scope:
        leaf = ["rel", "R", [scope[0]]]
    else:
        return atom(rng, ["x"], config)
    if allow_negation and rng.random() < 0.3:
        return ["not", leaf]
    return leaf


# ----------------------------------------------- shared datalog generation
def _order_like_datalog_case(
    theory: str, rng: random.Random, seed: int, config, atom
) -> CaseSpec:
    """Transitive closure (optionally with negation) over a random graph."""
    nodes = max(2, config.max_constant - 2)
    constant = (lambda v: _frac(v)) if theory == "dense_order" else (lambda v: ["c", v])
    tag = "ord" if theory == "dense_order" else "equ"
    e_tuples = []
    for _ in range(rng.randrange(2, config.max_tuples + 3)):
        a = rng.randrange(nodes)
        b = rng.randrange(nodes)
        if a == b:
            continue
        e_tuples.append(
            ([tag, "=", ["v", "x"], constant(a)],
             [tag, "=", ["v", "y"], constant(b)])
        )
    if theory == "dense_order" and rng.random() < 0.4:
        low = rng.randrange(nodes)
        e_tuples.append(
            (["ord", "<=", _frac(low), ["v", "x"]],
             ["ord", "<", ["v", "x"], ["v", "y"]],
             ["ord", "<=", ["v", "y"], _frac(low + 1)])
        )
    if theory == "equality" and rng.random() < 0.3:
        e_tuples.append(
            ([tag, "=", ["v", "x"], constant(0)], [tag, "!=", ["v", "x"], ["v", "y"]])
        )
    v_tuples = tuple(
        ([tag, "=", ["v", "x"], constant(v)],) for v in range(min(nodes, 3))
    )
    rules: list[Any] = [
        {"head": ["T", ["x", "y"]], "body": [["rel", "E", ["x", "y"]]]},
        {
            "head": ["T", ["x", "y"]],
            "body": [["rel", "T", ["x", "z"]], ["rel", "E", ["z", "y"]]],
        },
    ]
    if rng.random() < 0.4:
        rules[0]["body"] = rules[0]["body"] + [atom(rng, ["x", "y"], config)]
    target = "T"
    output = ("x", "y")
    semantics = "auto"
    if rng.random() < 0.45:
        rules.append(
            {
                "head": ["U", ["x", "y"]],
                "body": [
                    ["rel", "V", ["x"]],
                    ["rel", "V", ["y"]],
                    ["notrel", "T", ["x", "y"]],
                ],
            }
        )
        target = rng.choice(["T", "U"])
        semantics = rng.choice(["stratified", "inflationary"])
    return CaseSpec(
        theory=theory,
        kind="datalog",
        relations=(
            ("E", ("x", "y"), tuple(e_tuples)),
            ("V", ("x",), v_tuples),
        ),
        output=output,
        rules=tuple(rules),
        target=target,
        semantics=semantics,
        seed=seed,
    )
