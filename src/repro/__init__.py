"""repro: a full reproduction of "Constraint Query Languages"
(Kanellakis, Kuper, Revesz; PODS 1990).

Quick start::

    from repro import DenseOrderTheory, GeneralizedDatabase, evaluate_calculus
    from repro.logic.parser import parse_query

    order = DenseOrderTheory()
    db = GeneralizedDatabase(order)
    rect = db.create_relation("R", ("n", "x", "y"))
    rect.add_tuple([order.eq("n", 1), order.le(0, "x"), order.le("x", 2),
                    order.le(0, "y"), order.le("y", 2)])
    query = parse_query("exists x, y . R(n1, x, y) and R(n2, x, y) and n1 != n2",
                        theory=order)
    result = evaluate_calculus(query, db, output=("n1", "n2"))

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduction of every table and figure of the paper.
"""

from repro.constraints import (
    BooleanTheory,
    DenseOrderTheory,
    EqualityTheory,
    RealPolynomialTheory,
)
from repro.core import algebra
from repro.core.calculus import evaluate_boolean_query, evaluate_calculus
from repro.core.datalog import DatalogProgram, Rule
from repro.core.generalized import (
    GeneralizedDatabase,
    GeneralizedRelation,
    GeneralizedTuple,
)
from repro.core.magic import MagicQuery, answer_magic_query
from repro.core.optimize import optimize

__version__ = "1.0.0"

__all__ = [
    "BooleanTheory",
    "DatalogProgram",
    "DenseOrderTheory",
    "EqualityTheory",
    "GeneralizedDatabase",
    "GeneralizedRelation",
    "GeneralizedTuple",
    "RealPolynomialTheory",
    "MagicQuery",
    "Rule",
    "algebra",
    "answer_magic_query",
    "evaluate_boolean_query",
    "evaluate_calculus",
    "optimize",
    "__version__",
]
