"""Resultants and discriminants of multivariate polynomials.

Computed as the determinant of the Sylvester matrix with entries in the
polynomial ring Q[other variables], using Bareiss fraction-free Gaussian
elimination (every division is exact in the ring, performed by
:meth:`Polynomial.exact_div`).  These are the projection operators of the
cylindrical algebraic decomposition: the resultant of two polynomials in the
main variable vanishes exactly where they share a root (or both leading
coefficients vanish), and the discriminant vanishes where a polynomial has a
multiple root -- the x-coordinates where the root structure of the lifted
decomposition can change.
"""

from __future__ import annotations

from repro.poly.polynomial import Polynomial


def sylvester_matrix(f: Polynomial, g: Polynomial, var: str) -> list[list[Polynomial]]:
    """The Sylvester matrix of ``f`` and ``g`` with respect to ``var``."""
    fc = f.coefficients_in(var)
    gc = g.coefficients_in(var)
    m = len(fc) - 1
    n = len(gc) - 1
    if m < 0 or n < 0:
        raise ValueError("resultant of the zero polynomial is undefined")
    size = m + n
    zero = Polynomial.zero()
    matrix = [[zero] * size for _ in range(size)]
    # n rows of f's coefficients (highest degree first), shifted
    rev_f = list(reversed(fc))
    rev_g = list(reversed(gc))
    for row in range(n):
        for k, coeff in enumerate(rev_f):
            matrix[row][row + k] = coeff
    for row in range(m):
        for k, coeff in enumerate(rev_g):
            matrix[n + row][row + k] = coeff
    return matrix


def _bareiss_determinant(matrix: list[list[Polynomial]]) -> Polynomial:
    """Exact determinant by fraction-free elimination with row pivoting."""
    size = len(matrix)
    if size == 0:
        return Polynomial.one()
    m = [row[:] for row in matrix]
    sign = 1
    previous_pivot = Polynomial.one()
    for k in range(size - 1):
        if m[k][k].is_zero():
            pivot_row = next(
                (i for i in range(k + 1, size) if not m[i][k].is_zero()), None
            )
            if pivot_row is None:
                return Polynomial.zero()
            m[k], m[pivot_row] = m[pivot_row], m[k]
            sign = -sign
        pivot = m[k][k]
        for i in range(k + 1, size):
            for j in range(k + 1, size):
                numerator = pivot * m[i][j] - m[i][k] * m[k][j]
                m[i][j] = numerator.exact_div(previous_pivot)
            m[i][k] = Polynomial.zero()
        previous_pivot = pivot
    result = m[size - 1][size - 1]
    return -result if sign < 0 else result


def resultant(f: Polynomial, g: Polynomial, var: str) -> Polynomial:
    """``Res_var(f, g)``: a polynomial in the remaining variables.

    Degenerate degrees follow the usual conventions: if either polynomial is
    zero the resultant is zero; if ``f`` is constant in ``var`` the resultant
    is ``f ** deg_var(g)`` (and symmetrically).
    """
    if f.is_zero() or g.is_zero():
        return Polynomial.zero()
    deg_f = f.degree_in(var)
    deg_g = g.degree_in(var)
    if deg_f == 0 and deg_g == 0:
        return Polynomial.one()
    if deg_f == 0:
        return f**deg_g
    if deg_g == 0:
        return g**deg_f
    return _bareiss_determinant(sylvester_matrix(f, g, var))


def discriminant(f: Polynomial, var: str) -> Polynomial:
    """``Disc_var(f) = (-1)^(d(d-1)/2) Res_var(f, df/dvar) / lc_var(f)``."""
    degree = f.degree_in(var)
    if degree < 1:
        raise ValueError("discriminant needs degree >= 1 in the main variable")
    res = resultant(f, f.derivative(var), var)
    lead = f.leading_coefficient_in(var)
    quotient = res.exact_div(lead)
    if (degree * (degree - 1) // 2) % 2:
        return -quotient
    return quotient
