"""Exact real algebraic numbers.

A real algebraic number is represented by a squarefree rational polynomial
together with an isolating interval (Definition: the interval contains
exactly one real root of the polynomial, and that root is the number).
Rational numbers use point intervals.  All comparisons and sign
determinations are exact:

* zero tests against other polynomials go through GCDs (a polynomial
  vanishes at alpha iff the GCD with alpha's defining polynomial still has
  alpha as a root, which is decidable by Sturm counting in the isolating
  interval);
* once a value is known to be nonzero, interval refinement terminates with a
  definite sign.

Only the operations needed by the CAD lifting are provided: comparison,
sign-of-polynomial-at-point, and affine rational shifts.  General algebraic
arithmetic (sums/products of two algebraic numbers) is not needed by the
paper's algorithms and is intentionally out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.poly.intervals import RatInterval, eval_upoly_on_interval
from repro.poly.univariate import RootInterval, SturmContext, UPoly


@dataclass
class RealAlgebraic:
    """A real algebraic number: squarefree defining polynomial + isolating interval."""

    poly: UPoly
    interval: RootInterval
    _context: SturmContext | None = field(default=None, repr=False, compare=False)

    @staticmethod
    def from_rational(value: Fraction | int) -> "RealAlgebraic":
        value = Fraction(value)
        poly = UPoly.from_fractions([-value, 1])
        return RealAlgebraic(poly, RootInterval(value, value))

    @staticmethod
    def roots_of(poly: UPoly) -> list["RealAlgebraic"]:
        """All real roots of a rational polynomial, in increasing order."""
        context = SturmContext(poly)
        return [
            RealAlgebraic(context.poly, interval, context)
            for interval in context.isolate_roots()
        ]

    # ---------------------------------------------------------------- basics
    @property
    def context(self) -> SturmContext:
        if self._context is None:
            self._context = SturmContext(self.poly)
        return self._context

    @property
    def is_rational(self) -> bool:
        return self.interval.is_exact

    def rational_value(self) -> Fraction:
        """Exact value when rational (raises otherwise)."""
        if not self.is_rational:
            raise ValueError("not a rational point")
        return self.interval.low

    def refine(self) -> None:
        """Halve the isolating interval in place."""
        self.interval = self.context.refine(self.interval)

    def refine_below(self, width: Fraction) -> None:
        while not self.interval.is_exact and self.interval.high - self.interval.low > width:
            self.refine()

    def box(self) -> RatInterval:
        return RatInterval(self.interval.low, self.interval.high)

    def approximate(self) -> Fraction:
        return self.interval.midpoint()

    # ------------------------------------------------------- sign machinery
    def sign_of(self, poly: UPoly) -> int:
        """Exact sign of ``poly`` (rational coefficients) at this number."""
        if poly.is_zero():
            return 0
        if self.is_rational:
            return poly.sign_at(self.interval.low)
        square_free = poly.squarefree()
        common = square_free.gcd(self.poly)
        if common.degree() >= 1:
            context = SturmContext(common)
            if context.count_roots_open(self.interval.low, self.interval.high) == 1:
                # the unique common root inside our isolating interval must
                # be this number, so poly vanishes here
                return 0
        # nonzero: refine until the interval evaluation is sign-definite
        while True:
            box = eval_upoly_on_interval(poly.coeffs, self.box())
            sign = box.sign()
            if sign is not None and box.excludes_zero():
                return sign
            if self.interval.is_exact:  # pragma: no cover - guarded above
                return poly.sign_at(self.interval.low)
            self.refine()

    def sign(self) -> int:
        """Sign of the number itself."""
        return self.compare_rational(Fraction(0))

    def compare_rational(self, value: Fraction | int) -> int:
        """-1/0/+1 comparison against a rational."""
        value = Fraction(value)
        if self.is_rational:
            mine = self.interval.low
            return (mine > value) - (mine < value)
        if self.poly.sign_at(value) == 0 and self.interval.low < value < self.interval.high:
            return 0
        while self.interval.low < value < self.interval.high:
            self.refine()
            if self.interval.is_exact:
                mine = self.interval.low
                return (mine > value) - (mine < value)
        if self.interval.high <= value:
            return -1
        return 1

    def equals(self, other: "RealAlgebraic") -> bool:
        if self.is_rational:
            return other.compare_rational(self.interval.low) == 0
        if other.is_rational:
            return self.compare_rational(other.interval.low) == 0
        common = self.poly.gcd(other.poly)
        if common.degree() < 1:
            return False
        context = SturmContext(common)
        mine = context.count_roots_open(self.interval.low, self.interval.high) == 1
        theirs = context.count_roots_open(other.interval.low, other.interval.high) == 1
        if not (mine and theirs):
            return False
        overlap_low = max(self.interval.low, other.interval.low)
        overlap_high = min(self.interval.high, other.interval.high)
        if overlap_low >= overlap_high:
            return False
        return context.count_roots_open(overlap_low, overlap_high) == 1

    def compare(self, other: "RealAlgebraic") -> int:
        """-1/0/+1 total-order comparison."""
        if other.is_rational:
            return self.compare_rational(other.interval.low)
        if self.is_rational:
            return -other.compare_rational(self.interval.low)
        if self.equals(other):
            return 0
        while True:
            if self.interval.high <= other.interval.low:
                return -1
            if other.interval.high <= self.interval.low:
                return 1
            my_width = self.interval.high - self.interval.low
            other_width = other.interval.high - other.interval.low
            if my_width >= other_width:
                self.refine()
            else:
                other.refine()

    def __lt__(self, other: "RealAlgebraic") -> bool:
        return self.compare(other) < 0

    def __str__(self) -> str:
        if self.is_rational:
            return str(self.interval.low)
        approx = float(self.approximate())
        return f"alg({approx:.6g})"


def sorted_roots_with_rationals(
    roots: list[RealAlgebraic], extra: list[Fraction]
) -> list[RealAlgebraic]:
    """Merge algebraic roots and rational points into one sorted, deduplicated list."""
    merged = list(roots) + [RealAlgebraic.from_rational(q) for q in extra]
    merged.sort(key=_SortAdapter)
    deduplicated: list[RealAlgebraic] = []
    for item in merged:
        if deduplicated and deduplicated[-1].equals(item):
            continue
        deduplicated.append(item)
    return deduplicated


class _SortAdapter:
    """Adapter making exact comparisons usable with list.sort."""

    def __init__(self, value: RealAlgebraic) -> None:
        self.value = value

    def __lt__(self, other: "_SortAdapter") -> bool:
        return self.value.compare(other.value) < 0
