"""Dynamic-evaluation arithmetic in Q(alpha) ("the D5 principle").

The CAD lifting phase needs field arithmetic with coefficients of the form
``c(alpha)`` where alpha is a real algebraic number with squarefree defining
polynomial ``q``.  ``Q[x]/(q)`` is a field only when ``q`` is irreducible;
instead of factoring ``q`` (expensive), we follow Della Dora-Dicrescenzo-
Duval dynamic evaluation: compute in ``Q[x]/(q)`` and, whenever an inversion
or zero test meets a zero divisor ``c`` (i.e. ``gcd(c, q)`` is a proper
factor), *split* the defining polynomial, keeping the factor that still has
alpha as a root (decidable by Sturm counting inside alpha's isolating
interval).  All elements sharing the context remain valid residues, because
reduction modulo a divisor of ``q`` refines reduction modulo ``q``.

The context implements the coefficient-field protocol expected by
:class:`repro.poly.univariate.UPoly`, so Sturm chains and root isolation work
verbatim over Q(alpha).  Elements are tuples of Fractions (residue
coefficients, low to high degree).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.poly.algebraic import RealAlgebraic
from repro.poly.intervals import RatInterval, eval_upoly_on_interval
from repro.poly.univariate import QQ, SturmContext, UPoly

NFElem = tuple[Fraction, ...]


class NumberField:
    """Field arithmetic in Q(alpha), with D5 splitting.

    The ``alpha`` argument is adopted (its isolating interval is refined in
    place during sign determinations).
    """

    def __init__(self, alpha: RealAlgebraic) -> None:
        self.alpha = alpha
        self.defining = alpha.poly.monic()
        self.name = f"QQ(alpha~{float(alpha.approximate()):.4g})"

    # ------------------------------------------------------- context plumbing
    def _reduce(self, coeffs: Sequence[Fraction]) -> NFElem:
        poly = UPoly(list(coeffs), QQ)
        remainder = poly.rem(self.defining)
        return tuple(remainder.coeffs)

    def _as_upoly(self, elem: NFElem) -> UPoly:
        return UPoly(list(elem), QQ)

    def _split_to_factor_containing_alpha(self, factor: UPoly) -> bool:
        """If alpha is a root of ``factor``, adopt it as the new defining
        polynomial and return True; otherwise return False.

        ``factor`` must divide the current defining polynomial, so exactly
        one of factor / cofactor has alpha as a root.
        """
        context = SturmContext(factor)
        low, high = self.alpha.interval.low, self.alpha.interval.high
        if self.alpha.interval.is_exact:
            is_root = factor.sign_at(low) == 0
        else:
            is_root = context.count_roots_open(low, high) == 1
        if is_root:
            self.defining = factor.monic()
            # keep the algebraic number's own defining polynomial in sync so
            # its sign machinery benefits from the smaller degree
            self.alpha = RealAlgebraic(self.defining, self.alpha.interval)
            return True
        return False

    # ------------------------------------------------------- field protocol
    def from_fraction(self, value: Fraction | int) -> NFElem:
        value = Fraction(value)
        return (value,) if value else ()

    def zero(self) -> NFElem:
        return ()

    def one(self) -> NFElem:
        return (Fraction(1),)

    def alpha_elem(self) -> NFElem:
        """The element alpha itself."""
        return self._reduce([Fraction(0), Fraction(1)])

    def from_upoly(self, poly: UPoly) -> NFElem:
        """The element poly(alpha) for rational ``poly``."""
        return self._reduce(list(poly.coeffs))

    def add(self, a: NFElem, b: NFElem) -> NFElem:
        n = max(len(a), len(b))
        out = []
        for i in range(n):
            x = a[i] if i < len(a) else Fraction(0)
            y = b[i] if i < len(b) else Fraction(0)
            out.append(x + y)
        return self._reduce(out)

    def sub(self, a: NFElem, b: NFElem) -> NFElem:
        return self.add(a, self.neg(b))

    def neg(self, a: NFElem) -> NFElem:
        return tuple(-c for c in a)

    def mul(self, a: NFElem, b: NFElem) -> NFElem:
        if not a or not b:
            return ()
        product = self._as_upoly(a) * self._as_upoly(b)
        return self._reduce(product.coeffs)

    def div(self, a: NFElem, b: NFElem) -> NFElem:
        return self.mul(a, self.inverse(b))

    def inverse(self, a: NFElem) -> NFElem:
        """Multiplicative inverse, splitting the context if needed."""
        while True:
            a = self._reduce(a)
            if not a:
                raise ZeroDivisionError("inverse of zero in number field")
            poly_a = self._as_upoly(a)
            gcd, s = _extended_gcd_first(poly_a, self.defining)
            if gcd.degree() == 0:
                inv = s.scale(Fraction(1) / gcd.coeffs[0])
                return self._reduce(inv.coeffs)
            # zero divisor: gcd is a proper factor of the defining polynomial
            if not self._split_to_factor_containing_alpha(gcd):
                cofactor, remainder = self.defining.divmod(gcd)
                if not remainder.is_zero():  # pragma: no cover
                    raise ArithmeticError("gcd does not divide defining polynomial")
                adopted = self._split_to_factor_containing_alpha(cofactor)
                if not adopted:  # pragma: no cover - one factor must contain alpha
                    raise ArithmeticError("alpha lost during dynamic-evaluation split")
            # retry with the refined context

    def is_zero(self, a: NFElem) -> bool:
        reduced = self._reduce(a)
        if not reduced:
            return True
        poly_a = self._as_upoly(reduced)
        gcd = poly_a.gcd(self.defining)
        if gcd.degree() >= 1 and self._split_to_factor_containing_alpha(gcd):
            # a(alpha) = 0; the context now uses the smaller factor
            return True
        return False

    def sign(self, a: NFElem) -> int:
        if self.is_zero(a):
            return 0
        coeffs = list(self._reduce(a))
        while True:
            box = eval_upoly_on_interval(coeffs, self._alpha_box())
            sign = box.sign()
            if sign is not None and box.excludes_zero():
                return sign
            if self.alpha.interval.is_exact:
                return QQ.sign(self._as_upoly(tuple(coeffs)).eval(self.alpha.interval.low))
            self.alpha.refine()

    def _alpha_box(self) -> RatInterval:
        return RatInterval(self.alpha.interval.low, self.alpha.interval.high)

    # -------------------------------------------------------- numeric bounds
    def abs_upper(self, a: NFElem) -> Fraction:
        """A rational upper bound for ``|a(alpha)|``."""
        box = eval_upoly_on_interval(list(self._reduce(a)), self._alpha_box())
        return max(abs(box.low), abs(box.high))

    def abs_lower_nonzero(self, a: NFElem) -> Fraction:
        """A positive rational lower bound for ``|a(alpha)|`` (a must be nonzero)."""
        coeffs = list(self._reduce(a))
        if not coeffs:
            raise ZeroDivisionError("element is zero")
        if self.sign(a) == 0:  # pragma: no cover - caller guarantees nonzero
            raise ZeroDivisionError("element is zero")
        while True:
            box = eval_upoly_on_interval(coeffs, self._alpha_box())
            if box.excludes_zero():
                return min(abs(box.low), abs(box.high))
            self.alpha.refine()

    def to_float(self, a: NFElem) -> float:
        """A floating approximation (diagnostics only)."""
        box = eval_upoly_on_interval(list(self._reduce(a)), self._alpha_box())
        return float((box.low + box.high) / 2)


def _extended_gcd_first(a: UPoly, b: UPoly) -> tuple[UPoly, UPoly]:
    """Return (g, s) with g = gcd(a, b) and s*a = g (mod b)."""
    old_r, r = a, b
    old_s, s = UPoly.constant(Fraction(1), QQ), UPoly.zero(QQ)
    while not r.is_zero():
        quotient, remainder = old_r.divmod(r)
        old_r, r = r, remainder
        old_s, s = s, old_s - quotient * s
    return old_r, old_s


def cauchy_bound_over_field(poly: UPoly, field: NumberField) -> Fraction:
    """A rational B bounding all real roots of a UPoly over Q(alpha)."""
    if poly.degree() <= 0:
        return Fraction(1)
    lead_lower = field.abs_lower_nonzero(poly.coeffs[-1])
    bound = Fraction(0)
    for coeff in poly.coeffs[:-1]:
        ratio = field.abs_upper(coeff) / lead_lower
        if ratio > bound:
            bound = ratio
    return bound + 1
