"""Exact rational interval arithmetic.

Used for sign determination of polynomials at real algebraic points: the
point is trapped in a shrinking rational interval, the polynomial is
evaluated over the interval, and the sign is read off once the result
interval excludes zero (exact zero detection is done algebraically first,
via GCD computations, so refinement always terminates).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence


@dataclass(frozen=True, slots=True)
class RatInterval:
    """A closed interval ``[low, high]`` with rational endpoints."""

    low: Fraction
    high: Fraction

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"empty interval [{self.low}, {self.high}]")

    @staticmethod
    def point(value: Fraction | int) -> "RatInterval":
        value = Fraction(value)
        return RatInterval(value, value)

    @property
    def is_point(self) -> bool:
        return self.low == self.high

    def width(self) -> Fraction:
        return self.high - self.low

    def contains(self, value: Fraction) -> bool:
        return self.low <= value <= self.high

    def __add__(self, other: "RatInterval") -> "RatInterval":
        return RatInterval(self.low + other.low, self.high + other.high)

    def __neg__(self) -> "RatInterval":
        return RatInterval(-self.high, -self.low)

    def __sub__(self, other: "RatInterval") -> "RatInterval":
        return self + (-other)

    def __mul__(self, other: "RatInterval") -> "RatInterval":
        products = (
            self.low * other.low,
            self.low * other.high,
            self.high * other.low,
            self.high * other.high,
        )
        return RatInterval(min(products), max(products))

    def scale(self, factor: Fraction) -> "RatInterval":
        if factor >= 0:
            return RatInterval(self.low * factor, self.high * factor)
        return RatInterval(self.high * factor, self.low * factor)

    def power(self, exponent: int) -> "RatInterval":
        result = RatInterval.point(1)
        for _ in range(exponent):
            result = result * self
        return result

    def sign(self) -> int | None:
        """The common sign of every element, or None if undetermined."""
        if self.low > 0:
            return 1
        if self.high < 0:
            return -1
        if self.low == self.high == 0:
            return 0
        return None

    def excludes_zero(self) -> bool:
        return self.low > 0 or self.high < 0

    def intersect(self, other: "RatInterval") -> "RatInterval | None":
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return RatInterval(low, high)

    def __str__(self) -> str:
        return f"[{self.low}, {self.high}]"


def eval_upoly_on_interval(coeffs: Sequence[Fraction], box: RatInterval) -> RatInterval:
    """Interval Horner evaluation of ``sum coeffs[i] * x^i`` over ``box``."""
    acc = RatInterval.point(0)
    for coeff in reversed(coeffs):
        acc = acc * box + RatInterval.point(coeff)
    return acc
