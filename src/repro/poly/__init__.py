"""Exact polynomial arithmetic over the rationals.

This package is the algebraic substrate for the real-polynomial constraint
theory of Section 2 of the paper: multivariate polynomials with exact
:class:`fractions.Fraction` coefficients, univariate machinery (GCD,
squarefree parts, Sturm sequences, real-root isolation), resultants and
discriminants via subresultant remainder sequences, exact real algebraic
numbers, and dynamic-evaluation arithmetic in Q[x]/(q) ("D5") used by the
bivariate cylindrical algebraic decomposition.

Everything is implemented from scratch; no computer-algebra dependency.
"""

from repro.poly.algebraic import RealAlgebraic
from repro.poly.polynomial import Polynomial, poly_const, poly_var
from repro.poly.resultant import discriminant, resultant
from repro.poly.univariate import UPoly

__all__ = [
    "Polynomial",
    "RealAlgebraic",
    "UPoly",
    "discriminant",
    "poly_const",
    "poly_var",
    "resultant",
]
