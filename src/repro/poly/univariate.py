"""Univariate polynomials over an ordered field, with real-root machinery.

The coefficient field is pluggable: exact rationals (:data:`QQ`) for the
base phase of the CAD, and dynamic-evaluation number fields
(:mod:`repro.poly.numberfield`) for the lifting phase.  A field object
provides arithmetic, an exact zero test, and an exact sign; everything here
-- Euclidean division, GCD, squarefree parts, Sturm sequences, root counting
and isolation -- is written against that protocol.

Root counting uses the classical Sturm chain with the half-open convention:
with zero signs skipped, ``V(a) - V(b)`` equals the number of distinct real
roots in ``(a, b]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Sequence


class RationalField:
    """Field operations for :class:`fractions.Fraction` coefficients."""

    name = "QQ"

    def from_fraction(self, value: Fraction | int) -> Fraction:
        return Fraction(value)

    def zero(self) -> Fraction:
        return Fraction(0)

    def one(self) -> Fraction:
        return Fraction(1)

    def add(self, a: Fraction, b: Fraction) -> Fraction:
        return a + b

    def sub(self, a: Fraction, b: Fraction) -> Fraction:
        return a - b

    def mul(self, a: Fraction, b: Fraction) -> Fraction:
        return a * b

    def div(self, a: Fraction, b: Fraction) -> Fraction:
        return a / b

    def neg(self, a: Fraction) -> Fraction:
        return -a

    def is_zero(self, a: Fraction) -> bool:
        return a == 0

    def sign(self, a: Fraction) -> int:
        if a > 0:
            return 1
        if a < 0:
            return -1
        return 0


QQ = RationalField()


class UPoly:
    """A univariate polynomial ``c0 + c1 x + ... + cd x^d`` over a field."""

    __slots__ = ("field", "coeffs")

    def __init__(self, coeffs: Sequence[Any], field: Any = QQ) -> None:
        self.field = field
        trimmed = list(coeffs)
        while trimmed and field.is_zero(trimmed[-1]):
            trimmed.pop()
        self.coeffs = trimmed

    # ------------------------------------------------------------ constructors
    @staticmethod
    def from_fractions(values: Iterable[Fraction | int], field: Any = QQ) -> "UPoly":
        return UPoly([field.from_fraction(Fraction(v)) for v in values], field)

    @staticmethod
    def zero(field: Any = QQ) -> "UPoly":
        return UPoly([], field)

    @staticmethod
    def constant(value: Any, field: Any = QQ) -> "UPoly":
        return UPoly([value], field)

    @staticmethod
    def x(field: Any = QQ) -> "UPoly":
        return UPoly([field.zero(), field.one()], field)

    # ------------------------------------------------------------- inspection
    def degree(self) -> int:
        """Degree; -1 for the zero polynomial."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    def leading(self) -> Any:
        if not self.coeffs:
            raise ValueError("zero polynomial has no leading coefficient")
        return self.coeffs[-1]

    # -------------------------------------------------------------- arithmetic
    def __add__(self, other: "UPoly") -> "UPoly":
        f = self.field
        n = max(len(self.coeffs), len(other.coeffs))
        out = []
        for i in range(n):
            a = self.coeffs[i] if i < len(self.coeffs) else f.zero()
            b = other.coeffs[i] if i < len(other.coeffs) else f.zero()
            out.append(f.add(a, b))
        return UPoly(out, f)

    def __sub__(self, other: "UPoly") -> "UPoly":
        f = self.field
        n = max(len(self.coeffs), len(other.coeffs))
        out = []
        for i in range(n):
            a = self.coeffs[i] if i < len(self.coeffs) else f.zero()
            b = other.coeffs[i] if i < len(other.coeffs) else f.zero()
            out.append(f.sub(a, b))
        return UPoly(out, f)

    def __neg__(self) -> "UPoly":
        f = self.field
        return UPoly([f.neg(c) for c in self.coeffs], f)

    def __mul__(self, other: "UPoly") -> "UPoly":
        f = self.field
        if self.is_zero() or other.is_zero():
            return UPoly.zero(f)
        out = [f.zero()] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if f.is_zero(a):
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = f.add(out[i + j], f.mul(a, b))
        return UPoly(out, f)

    def scale(self, factor: Any) -> "UPoly":
        f = self.field
        return UPoly([f.mul(c, factor) for c in self.coeffs], f)

    def divmod(self, divisor: "UPoly") -> tuple["UPoly", "UPoly"]:
        """Euclidean division over the field."""
        f = self.field
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        remainder = list(self.coeffs)
        d = divisor.degree()
        lead = divisor.leading()
        quotient = [f.zero()] * max(0, len(remainder) - d)
        while len(remainder) - 1 >= d and remainder:
            while remainder and f.is_zero(remainder[-1]):
                remainder.pop()
            if len(remainder) - 1 < d or not remainder:
                break
            shift = len(remainder) - 1 - d
            factor = f.div(remainder[-1], lead)
            quotient[shift] = f.add(quotient[shift], factor)
            for i, c in enumerate(divisor.coeffs):
                remainder[shift + i] = f.sub(remainder[shift + i], f.mul(factor, c))
        return UPoly(quotient, f), UPoly(remainder, f)

    def rem(self, divisor: "UPoly") -> "UPoly":
        return self.divmod(divisor)[1]

    def monic(self) -> "UPoly":
        if self.is_zero():
            return self
        f = self.field
        inv_lead = f.div(f.one(), self.leading())
        return self.scale(inv_lead)

    def gcd(self, other: "UPoly") -> "UPoly":
        """Monic greatest common divisor (Euclid)."""
        a, b = self, other
        while not b.is_zero():
            a, b = b, a.rem(b)
        return a.monic() if not a.is_zero() else a

    def derivative(self) -> "UPoly":
        f = self.field
        out = []
        for i, c in enumerate(self.coeffs[1:], start=1):
            out.append(f.mul(c, f.from_fraction(Fraction(i))))
        return UPoly(out, f)

    def squarefree(self) -> "UPoly":
        """The squarefree part ``self / gcd(self, self')`` (monic)."""
        if self.degree() <= 0:
            return self.monic()
        g = self.gcd(self.derivative())
        if g.degree() <= 0:
            return self.monic()
        quotient, remainder = self.divmod(g)
        if not remainder.is_zero():  # pragma: no cover - algebra guarantees exactness
            raise ArithmeticError("gcd does not divide the polynomial")
        return quotient.monic()

    # -------------------------------------------------------------- evaluation
    def eval(self, point: Any) -> Any:
        """Horner evaluation; ``point`` may be a Fraction or a field element."""
        f = self.field
        if isinstance(point, (int, Fraction)):
            point = f.from_fraction(Fraction(point))
        acc = f.zero()
        for c in reversed(self.coeffs):
            acc = f.add(f.mul(acc, point), c)
        return acc

    def sign_at(self, point: Fraction | int) -> int:
        """Exact sign of the value at a rational point."""
        return self.field.sign(self.eval(point))

    def sign_at_infinity(self, positive: bool) -> int:
        """Sign of the polynomial as x -> +inf (or -inf)."""
        if self.is_zero():
            return 0
        sign = self.field.sign(self.leading())
        if not positive and self.degree() % 2 == 1:
            sign = -sign
        return sign

    # ---------------------------------------------------------------- roots
    def sturm_chain(self) -> list["UPoly"]:
        """The canonical Sturm chain of the squarefree part of ``self``."""
        p = self.squarefree()
        chain = [p, p.derivative()]
        while not chain[-1].is_zero():
            chain.append(-(chain[-2].rem(chain[-1])))
        chain.pop()
        return chain

    def cauchy_root_bound(self) -> Fraction:
        """A rational B with all real roots in (-B, B).  Requires QQ coefficients."""
        if self.degree() <= 0:
            return Fraction(1)
        lead = self.coeffs[-1]
        bound = Fraction(0)
        for c in self.coeffs[:-1]:
            ratio = abs(Fraction(c) / Fraction(lead))
            if ratio > bound:
                bound = ratio
        return bound + 1


def rational_roots(poly: UPoly) -> list[Fraction]:
    """All rational roots of a QQ-coefficient polynomial (rational root theorem)."""
    if poly.field is not QQ:
        raise ValueError("rational_roots requires QQ coefficients")
    if poly.degree() < 1:
        return []
    # clear denominators to integer coefficients
    from math import gcd

    denominator_lcm = 1
    for c in poly.coeffs:
        denominator_lcm = denominator_lcm * c.denominator // gcd(
            denominator_lcm, c.denominator
        )
    ints = [int(c * denominator_lcm) for c in poly.coeffs]
    # strip trailing zero constant terms: x | poly
    roots: set[Fraction] = set()
    while ints and ints[0] == 0:
        roots.add(Fraction(0))
        ints = ints[1:]
    if len(ints) <= 1:
        return sorted(roots)
    lead = abs(ints[-1])
    constant = abs(ints[0])
    for p in _divisors(constant):
        for q in _divisors(lead):
            for candidate in (Fraction(p, q), Fraction(-p, q)):
                if poly.eval(candidate) == 0:
                    roots.add(candidate)
    return sorted(roots)


def _divisors(value: int) -> list[int]:
    result = []
    d = 1
    while d * d <= value:
        if value % d == 0:
            result.append(d)
            result.append(value // d)
        d += 1
    return sorted(set(result))


def sign_variations(signs: Sequence[int]) -> int:
    """Sign variations in a sequence, zeros skipped."""
    filtered = [s for s in signs if s]
    return sum(
        1 for a, b in zip(filtered, filtered[1:]) if a != b
    )


@dataclass(frozen=True, slots=True)
class RootInterval:
    """An isolated real root: either exact (`low == high`) or a bracketing
    open interval ``(low, high)`` containing exactly one simple root, with
    nonzero polynomial values at both endpoints."""

    low: Fraction
    high: Fraction

    @property
    def is_exact(self) -> bool:
        return self.low == self.high

    def midpoint(self) -> Fraction:
        return (self.low + self.high) / 2


class SturmContext:
    """Root counting and isolation driven by one Sturm chain.

    Works over any coefficient field whose ``sign`` is exact; interval
    endpoints are always rationals.
    """

    def __init__(self, poly: UPoly) -> None:
        self.poly = poly.squarefree()
        self.chain = self.poly.sturm_chain()

    def variations_at(self, point: Fraction) -> int:
        return sign_variations([p.sign_at(point) for p in self.chain])

    def variations_at_infinity(self, positive: bool) -> int:
        return sign_variations(
            [p.sign_at_infinity(positive) for p in self.chain]
        )

    def count_roots_half_open(self, low: Fraction, high: Fraction) -> int:
        """Number of distinct real roots in ``(low, high]``."""
        if low >= high:
            return 0
        return self.variations_at(low) - self.variations_at(high)

    def count_roots_open(self, low: Fraction, high: Fraction) -> int:
        """Number of distinct real roots in the open interval ``(low, high)``."""
        count = self.count_roots_half_open(low, high)
        if self.poly.sign_at(high) == 0:
            count -= 1
        return count

    def count_real_roots(self) -> int:
        return self.variations_at_infinity(False) - self.variations_at_infinity(True)

    def isolate_roots(self, bound: Fraction | None = None) -> list[RootInterval]:
        """Disjoint isolating intervals for every real root, sorted."""
        if self.poly.degree() <= 0:
            return []
        if bound is None:
            if self.poly.field is not QQ:
                raise ValueError("a root bound must be supplied for non-QQ fields")
            bound = self.poly.cauchy_root_bound()
        low, high = -bound, bound
        while self.poly.sign_at(low) == 0:
            low -= 1
        while self.poly.sign_at(high) == 0:
            high += 1
        roots: list[RootInterval] = []
        self._isolate(low, high, roots)
        roots.sort(key=lambda r: (r.low, r.high))
        return roots

    def _isolate(self, low: Fraction, high: Fraction, out: list[RootInterval]) -> None:
        """Isolate roots in (low, high); requires nonzero values at endpoints."""
        count = self.count_roots_open(low, high)
        if count == 0:
            return
        if count == 1:
            out.append(RootInterval(low, high))
            return
        mid = (low + high) / 2
        if self.poly.sign_at(mid) == 0:
            out.append(RootInterval(mid, mid))
            epsilon = (high - low) / 4
            while (
                self.poly.sign_at(mid - epsilon) == 0
                or self.poly.sign_at(mid + epsilon) == 0
                or self.count_roots_open(mid - epsilon, mid + epsilon) != 1
            ):
                epsilon /= 2
            self._isolate(low, mid - epsilon, out)
            self._isolate(mid + epsilon, high, out)
        else:
            self._isolate(low, mid, out)
            self._isolate(mid, high, out)

    def refine(self, interval: RootInterval) -> RootInterval:
        """Halve an isolating interval (no-op for exact roots)."""
        if interval.is_exact:
            return interval
        mid = interval.midpoint()
        sign_mid = self.poly.sign_at(mid)
        if sign_mid == 0:
            return RootInterval(mid, mid)
        if sign_mid == self.poly.sign_at(interval.low):
            return RootInterval(mid, interval.high)
        return RootInterval(interval.low, mid)
