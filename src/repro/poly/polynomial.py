"""Multivariate polynomials over the rationals.

A polynomial is a mapping from monomials to nonzero rational coefficients.
Monomials are canonical tuples ``((var, exponent), ...)`` sorted by variable
name; the empty tuple is the constant monomial.  Instances are immutable and
hashable, so they can serve as atoms' payloads and dictionary keys.

The class supports the ring operations, evaluation, substitution, formal
differentiation, coefficient extraction with respect to a main variable
(used by the resultant and CAD code), exact division (used by the
subresultant remainder sequences), and linear-form extraction (used by the
Fourier-Motzkin engine).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Union

Monomial = tuple[tuple[str, int], ...]
Scalar = Union[int, Fraction]


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    merged: dict[str, int] = dict(a)
    for var, exp in b:
        merged[var] = merged.get(var, 0) + exp
    return tuple(sorted((v, e) for v, e in merged.items() if e))


def _mono_divides(a: Monomial, b: Monomial) -> bool:
    """Whether monomial ``a`` divides monomial ``b``."""
    exps = dict(b)
    return all(exps.get(var, 0) >= exp for var, exp in a)


def _mono_div(a: Monomial, b: Monomial) -> Monomial:
    """``a / b`` assuming divisibility."""
    exps = dict(a)
    for var, exp in b:
        exps[var] = exps.get(var, 0) - exp
    return tuple(sorted((v, e) for v, e in exps.items() if e))


def _mono_key(mono: Monomial) -> tuple:
    """Display-order key (total degree first); NOT used for division."""
    total = sum(exp for _, exp in mono)
    return (total, mono)


def _grlex_tiebreak(mono: Monomial) -> tuple:
    """Lexicographic tie-break for equal total degrees.

    Emulates the comparison of zero-filled exponent vectors (variables in
    ascending name order, earlier names higher priority): the monomial whose
    ``(var, -exp)`` pair sequence is *smaller* is the *larger* monomial.
    For equal total degrees this sparse encoding agrees with the zero-filled
    comparison, making graded-lex a genuine admissible order -- which is what
    :meth:`Polynomial.exact_div` relies on (lead(fg) = lead(f) lead(g)).
    """
    return tuple(sorted((var, -exp) for var, exp in mono))


class Polynomial:
    """An immutable multivariate polynomial with Fraction coefficients."""

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, Scalar] | None = None) -> None:
        clean: dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                value = Fraction(coeff)
                if value:
                    clean[mono] = value
        self._terms: dict[Monomial, Fraction] = clean
        self._hash: int | None = None

    # ------------------------------------------------------------ constructors
    @staticmethod
    def constant(value: Scalar) -> "Polynomial":
        value = Fraction(value)
        return Polynomial({(): value} if value else {})

    @staticmethod
    def variable(name: str) -> "Polynomial":
        return Polynomial({((name, 1),): Fraction(1)})

    @staticmethod
    def zero() -> "Polynomial":
        return Polynomial()

    @staticmethod
    def one() -> "Polynomial":
        return Polynomial.constant(1)

    # ------------------------------------------------------------- inspection
    @property
    def terms(self) -> dict[Monomial, Fraction]:
        return dict(self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    def is_constant(self) -> bool:
        return all(not mono for mono in self._terms)

    def constant_value(self) -> Fraction:
        """Value of a constant polynomial (raises if not constant)."""
        if not self.is_constant():
            raise ValueError(f"{self} is not constant")
        return self._terms.get((), Fraction(0))

    def variables(self) -> frozenset[str]:
        names = set()
        for mono in self._terms:
            for var, _ in mono:
                names.add(var)
        return frozenset(names)

    def total_degree(self) -> int:
        """Total degree; -1 for the zero polynomial (by convention)."""
        if not self._terms:
            return -1
        return max(sum(exp for _, exp in mono) for mono in self._terms)

    def degree_in(self, var: str) -> int:
        """Degree in ``var``; -1 for the zero polynomial, 0 if absent."""
        if not self._terms:
            return -1
        best = 0
        for mono in self._terms:
            for name, exp in mono:
                if name == var and exp > best:
                    best = exp
        return best

    def coefficients_in(self, var: str) -> list["Polynomial"]:
        """Coefficients of ``self`` as a polynomial in ``var``.

        Returns ``[c0, c1, ..., cd]`` with ``self = sum ci * var**i`` and each
        ``ci`` a polynomial not involving ``var``.  The zero polynomial gives
        ``[]``.
        """
        if not self._terms:
            return []
        degree = self.degree_in(var)
        buckets: list[dict[Monomial, Fraction]] = [{} for _ in range(degree + 1)]
        for mono, coeff in self._terms.items():
            exp = 0
            rest = []
            for name, power in mono:
                if name == var:
                    exp = power
                else:
                    rest.append((name, power))
            buckets[exp][tuple(rest)] = buckets[exp].get(tuple(rest), Fraction(0)) + coeff
        return [Polynomial(bucket) for bucket in buckets]

    @staticmethod
    def from_coefficients(coeffs: Iterable["Polynomial"], var: str) -> "Polynomial":
        """Inverse of :meth:`coefficients_in`."""
        result = Polynomial.zero()
        x = Polynomial.variable(var)
        power = Polynomial.one()
        for coeff in coeffs:
            result = result + coeff * power
            power = power * x
        return result

    def leading_coefficient_in(self, var: str) -> "Polynomial":
        coeffs = self.coefficients_in(var)
        return coeffs[-1] if coeffs else Polynomial.zero()

    def as_linear(self) -> tuple[dict[str, Fraction], Fraction] | None:
        """Decompose as ``sum a_i x_i + b`` or return None if nonlinear."""
        coeffs: dict[str, Fraction] = {}
        constant = Fraction(0)
        for mono, coeff in self._terms.items():
            if not mono:
                constant = coeff
            elif len(mono) == 1 and mono[0][1] == 1:
                coeffs[mono[0][0]] = coeff
            else:
                return None
        return coeffs, constant

    @staticmethod
    def from_linear(coeffs: Mapping[str, Scalar], constant: Scalar = 0) -> "Polynomial":
        terms: dict[Monomial, Fraction] = {}
        for var, coeff in coeffs.items():
            value = Fraction(coeff)
            if value:
                terms[((var, 1),)] = value
        const_value = Fraction(constant)
        if const_value:
            terms[()] = const_value
        return Polynomial(terms)

    # -------------------------------------------------------------- arithmetic
    def __add__(self, other: object) -> "Polynomial":
        other_poly = _coerce(other)
        if other_poly is None:
            return NotImplemented
        terms = dict(self._terms)
        for mono, coeff in other_poly._terms.items():
            terms[mono] = terms.get(mono, Fraction(0)) + coeff
        return Polynomial(terms)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self._terms.items()})

    def __sub__(self, other: object) -> "Polynomial":
        other_poly = _coerce(other)
        if other_poly is None:
            return NotImplemented
        return self + (-other_poly)

    def __rsub__(self, other: object) -> "Polynomial":
        other_poly = _coerce(other)
        if other_poly is None:
            return NotImplemented
        return other_poly + (-self)

    def __mul__(self, other: object) -> "Polynomial":
        other_poly = _coerce(other)
        if other_poly is None:
            return NotImplemented
        terms: dict[Monomial, Fraction] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other_poly._terms.items():
                mono = _mono_mul(m1, m2)
                terms[mono] = terms.get(mono, Fraction(0)) + c1 * c2
        return Polynomial(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise ValueError("negative powers are not polynomials")
        result = Polynomial.one()
        base = self
        n = exponent
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    def __truediv__(self, other: object) -> "Polynomial":
        """Division by a nonzero rational scalar only."""
        if isinstance(other, (int, Fraction)):
            if other == 0:
                raise ZeroDivisionError("division of polynomial by zero")
            return Polynomial({m: c / other for m, c in self._terms.items()})
        return NotImplemented

    def scale(self, factor: Scalar) -> "Polynomial":
        value = Fraction(factor)
        return Polynomial({m: c * value for m, c in self._terms.items()})

    # --------------------------------------------------------- exact division
    def leading_term(self) -> tuple[Monomial, Fraction]:
        """Leading term under graded-lex order (raises on zero)."""
        if not self._terms:
            raise ValueError("zero polynomial has no leading term")
        best_degree = max(sum(e for _, e in mono) for mono in self._terms)
        candidates = [
            mono
            for mono in self._terms
            if sum(e for _, e in mono) == best_degree
        ]
        mono = min(candidates, key=_grlex_tiebreak)
        return mono, self._terms[mono]

    def exact_div(self, divisor: "Polynomial") -> "Polynomial":
        """Exact division ``self / divisor``; raises if not divisible.

        Uses leading-term cancellation under graded-lex order, which succeeds
        exactly when the division is exact over a field (multiplicativity of
        the monomial order).  This is the operation the subresultant PRS
        needs.
        """
        if divisor.is_zero():
            raise ZeroDivisionError("division of polynomial by zero polynomial")
        if divisor.is_constant():
            return self / divisor.constant_value()
        remainder = self
        quotient_terms: dict[Monomial, Fraction] = {}
        div_mono, div_coeff = divisor.leading_term()
        while not remainder.is_zero():
            rem_mono, rem_coeff = remainder.leading_term()
            if not _mono_divides(div_mono, rem_mono):
                raise ValueError(f"{self} is not divisible by {divisor}")
            q_mono = _mono_div(rem_mono, div_mono)
            q_coeff = rem_coeff / div_coeff
            quotient_terms[q_mono] = quotient_terms.get(q_mono, Fraction(0)) + q_coeff
            remainder = remainder - Polynomial({q_mono: q_coeff}) * divisor
        return Polynomial(quotient_terms)

    # ------------------------------------------------- evaluation/substitution
    def evaluate(self, assignment: Mapping[str, Scalar]) -> Fraction:
        """Exact value at a rational point (all variables must be assigned)."""
        total = Fraction(0)
        for mono, coeff in self._terms.items():
            value = coeff
            for var, exp in mono:
                value *= Fraction(assignment[var]) ** exp
            total += value
        return total

    def substitute(self, mapping: Mapping[str, "Polynomial"]) -> "Polynomial":
        """Substitute polynomials for variables."""
        result = Polynomial.zero()
        for mono, coeff in self._terms.items():
            term = Polynomial.constant(coeff)
            for var, exp in mono:
                replacement = mapping.get(var)
                if replacement is None:
                    replacement = Polynomial.variable(var)
                term = term * replacement**exp
            result = result + term
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Rename variables."""
        terms: dict[Monomial, Fraction] = {}
        for mono, coeff in self._terms.items():
            renamed = tuple(
                sorted((mapping.get(var, var), exp) for var, exp in mono)
            )
            merged: dict[str, int] = {}
            for var, exp in renamed:
                merged[var] = merged.get(var, 0) + exp
            key = tuple(sorted(merged.items()))
            terms[key] = terms.get(key, Fraction(0)) + coeff
        return Polynomial(terms)

    def derivative(self, var: str) -> "Polynomial":
        """Formal partial derivative."""
        terms: dict[Monomial, Fraction] = {}
        for mono, coeff in self._terms.items():
            exps = dict(mono)
            exp = exps.get(var, 0)
            if not exp:
                continue
            exps[var] = exp - 1
            key = tuple(sorted((v, e) for v, e in exps.items() if e))
            terms[key] = terms.get(key, Fraction(0)) + coeff * exp
        return Polynomial(terms)

    def primitive(self) -> "Polynomial":
        """Divide by the (positive) content: gcd of coefficient numerators etc.

        Normalizes so the leading graded-lex coefficient is positive; used to
        keep projection sets small in the CAD.
        """
        if self.is_zero():
            return self
        from math import gcd

        numerators = [abs(c.numerator) for c in self._terms.values()]
        denominators = [c.denominator for c in self._terms.values()]
        num_gcd = 0
        for n in numerators:
            num_gcd = gcd(num_gcd, n)
        den_lcm = 1
        for d in denominators:
            den_lcm = den_lcm * d // gcd(den_lcm, d)
        factor = Fraction(den_lcm, num_gcd or 1)
        scaled = self.scale(factor)
        _, lead = scaled.leading_term()
        if lead < 0:
            scaled = -scaled
        return scaled

    # ------------------------------------------------------------- comparison
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono in sorted(self._terms, key=_mono_key, reverse=True):
            coeff = self._terms[mono]
            factors = [
                var if exp == 1 else f"{var}^{exp}" for var, exp in mono
            ]
            body = "*".join(factors)
            if not body:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(body)
            elif coeff == -1:
                parts.append(f"-{body}")
            else:
                parts.append(f"{coeff}*{body}")
        rendered = " + ".join(parts)
        return rendered.replace("+ -", "- ")

    def __repr__(self) -> str:
        return f"Polynomial({self})"


def _coerce(value: object) -> Polynomial | None:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, Fraction)):
        return Polynomial.constant(value)
    return None


def poly_var(name: str) -> Polynomial:
    """Shorthand for :meth:`Polynomial.variable`."""
    return Polynomial.variable(name)


def poly_const(value: Scalar) -> Polynomial:
    """Shorthand for :meth:`Polynomial.constant`."""
    return Polynomial.constant(value)
