"""GCDs and squarefree parts of multivariate polynomials in a main variable.

Viewing ``f`` in ``Q[x1..xn][y]``, this module computes contents, primitive
parts, GCDs (primitive polynomial remainder sequences with pseudo-division),
squarefree parts, and gcd-free bases.  The CAD projection needs these to
guarantee that no discriminant or pairwise resultant vanishes identically:
squarefree-in-y polynomials have nonzero discriminants, and pairwise-coprime
ones have nonzero resultants, so the degenerate locus is a finite point set
in the base line.
"""

from __future__ import annotations

from repro.poly.polynomial import Polynomial
from repro.poly.univariate import UPoly


def poly_to_upoly(poly: Polynomial, var: str) -> UPoly:
    """A univariate view of a polynomial in ``var`` only (raises otherwise)."""
    extra = poly.variables() - {var}
    if extra:
        raise ValueError(f"{poly} involves {sorted(extra)} besides {var}")
    coeffs = []
    for coeff_poly in poly.coefficients_in(var):
        coeffs.append(coeff_poly.constant_value())
    return UPoly.from_fractions(coeffs)


def upoly_to_poly(upoly: UPoly, var: str) -> Polynomial:
    """Inverse of :func:`poly_to_upoly`."""
    return Polynomial.from_coefficients(
        [Polynomial.constant(c) for c in upoly.coeffs], var
    )


def _gcd_in_ring(left: Polynomial, right: Polynomial) -> Polynomial:
    """GCD of two polynomials that share at most one variable.

    Supports the content computations: coefficients of a bivariate
    polynomial in y live in Q[x].  Constants have gcd 1 (field).
    """
    if left.is_zero():
        return right.primitive() if not right.is_zero() else Polynomial.zero()
    if right.is_zero():
        return left.primitive()
    variables = left.variables() | right.variables()
    if not variables:
        return Polynomial.one()
    if len(variables) > 1:
        raise ValueError("ring gcd supports at most one shared variable")
    (var,) = variables
    gcd_upoly = poly_to_upoly(left, var).gcd(poly_to_upoly(right, var))
    return upoly_to_poly(gcd_upoly, var).primitive()


def content_in(poly: Polynomial, var: str) -> Polynomial:
    """The content of ``poly`` in ``Q[others]``: gcd of its ``var``-coefficients."""
    coeffs = poly.coefficients_in(var)
    if not coeffs:
        return Polynomial.zero()
    result = Polynomial.zero()
    for coeff in coeffs:
        result = _gcd_in_ring(result, coeff)
        if result.is_constant() and not result.is_zero():
            return Polynomial.one()
    return result


def primitive_part_in(poly: Polynomial, var: str) -> Polynomial:
    """``poly`` divided by its content (zero stays zero)."""
    if poly.is_zero():
        return poly
    content = content_in(poly, var)
    if content.is_constant():
        return poly.primitive()
    return poly.exact_div(content).primitive()


def pseudo_remainder(f: Polynomial, g: Polynomial, var: str) -> Polynomial:
    """A pseudo-remainder of ``f`` by ``g`` in ``var``.

    Synthetic division: repeat ``r := lc(g) r - lc(r) y^(dr-dg) g`` until the
    degree drops below ``deg g``.  The result differs from the classical
    ``prem`` by a power of ``lc(g)``, which is immaterial here because the
    primitive PRS takes primitive parts after every step (an extra
    polynomial factor scales the content, not the primitive part).
    """
    deg_g = g.degree_in(var)
    if g.is_zero():
        raise ZeroDivisionError("pseudo-division by zero")
    remainder = f
    if f.degree_in(var) < deg_g:
        return f
    lead_g = g.leading_coefficient_in(var)
    y = Polynomial.variable(var)
    while not remainder.is_zero() and remainder.degree_in(var) >= deg_g:
        deg_r = remainder.degree_in(var)
        lead_r = remainder.leading_coefficient_in(var)
        remainder = remainder * lead_g - lead_r * y ** (deg_r - deg_g) * g
    return remainder


def gcd_in(f: Polynomial, g: Polynomial, var: str) -> Polynomial:
    """GCD of ``f`` and ``g`` as polynomials in ``var`` over Q[other vars].

    Primitive PRS: gcd = gcd(contents) * primitive part of the last nonzero
    pseudo-remainder.  Result is primitive with positive leading coefficient.
    """
    if f.is_zero():
        return g.primitive()
    if g.is_zero():
        return f.primitive()
    content = _gcd_in_ring(content_in(f, var), content_in(g, var))
    a = primitive_part_in(f, var)
    b = primitive_part_in(g, var)
    if a.degree_in(var) < b.degree_in(var):
        a, b = b, a
    while not b.is_zero():
        remainder = pseudo_remainder(a, b, var)
        a = b
        b = primitive_part_in(remainder, var) if not remainder.is_zero() else remainder
    result = (content * a).primitive()
    return result


def squarefree_in(f: Polynomial, var: str) -> Polynomial:
    """The squarefree part of ``f`` with respect to ``var`` (content dropped)."""
    if f.degree_in(var) < 1:
        return f.primitive()
    primitive = primitive_part_in(f, var)
    derivative = primitive.derivative(var)
    common = gcd_in(primitive, derivative, var)
    if common.degree_in(var) < 1:
        return primitive
    return primitive.exact_div(common).primitive()


def gcd_free_basis(polys: list[Polynomial], var: str) -> list[Polynomial]:
    """A pairwise-coprime (in ``var``), squarefree set with the same roots.

    Every input polynomial's ``var``-roots (for each base point) are covered
    by the union of the basis polynomials' roots; basis elements are
    primitive, squarefree in ``var``, and pairwise coprime, so their
    discriminants and pairwise resultants are not identically zero.
    """
    basis: list[Polynomial] = []
    queue = [
        squarefree_in(p, var)
        for p in polys
        if p.degree_in(var) >= 1
    ]
    while queue:
        candidate = queue.pop()
        if candidate.degree_in(var) < 1:
            continue
        for index, existing in enumerate(basis):
            common = gcd_in(candidate, existing, var)
            if common.degree_in(var) >= 1:
                # split: existing -> {common, existing/common}, candidate -> candidate/common
                basis.pop(index)
                cofactor = existing.exact_div(common).primitive()
                queue.append(common)
                if cofactor.degree_in(var) >= 1:
                    queue.append(cofactor)
                reduced = candidate.exact_div(common).primitive()
                if reduced.degree_in(var) >= 1:
                    queue.append(reduced)
                break
        else:
            basis.append(candidate)
    return basis
