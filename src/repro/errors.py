"""Exception hierarchy for the ``repro`` constraint-query-language library.

Every error raised deliberately by the library derives from :class:`ReproError`
so that callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(ReproError):
    """A textual query or constraint could not be parsed.

    Carries the offending position so callers can report useful diagnostics.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class ArityError(ReproError):
    """A relation was used with the wrong number of arguments."""


class UnknownRelationError(ReproError):
    """A query referenced a relation that is not in the database."""


class TheoryError(ReproError):
    """A constraint atom does not belong to the active constraint theory."""


class UnsupportedEliminationError(ReproError):
    """Quantifier elimination is not available for the given input.

    Raised by the real-polynomial engine when the eliminated variable occurs
    with degree > 2 and the formula has more than two variables (outside the
    fragment covered by Fourier-Motzkin, virtual substitution, and the
    bivariate CAD -- see DESIGN.md section 4).
    """


class NotClosedError(ReproError):
    """A language/recursion combination that is not closed was requested.

    The paper shows (Example 1.12) that Datalog with real polynomial
    constraints is not closed: least fixpoints need not be finitely
    representable.  The Datalog engine refuses such programs up front unless
    the caller explicitly opts in to bounded iteration.
    """


class FixpointDivergenceError(ReproError):
    """Bounded fixpoint iteration exhausted its budget without converging."""

    def __init__(self, iterations: int, message: str | None = None) -> None:
        self.iterations = iterations
        super().__init__(
            message or f"fixpoint did not converge within {iterations} iterations"
        )


class EvaluationError(ReproError):
    """A query could not be evaluated against the given database."""


class StaticAnalysisError(ReproError):
    """The opt-in engine pre-flight found error-severity diagnostics.

    Raised by :class:`repro.core.datalog.DatalogProgram` when constructed
    with ``EngineOptions(analyze=True)`` and :mod:`repro.analysis` reports
    unsuppressed errors.  ``diagnostics`` holds the offending
    :class:`repro.analysis.Diagnostic` records.
    """

    def __init__(self, diagnostics) -> None:
        self.diagnostics = list(diagnostics)
        rendered = "; ".join(d.render() for d in self.diagnostics[:3])
        if len(self.diagnostics) > 3:
            rendered += f"; ... ({len(self.diagnostics) - 3} more)"
        super().__init__(
            f"static analysis found {len(self.diagnostics)} error(s): {rendered}"
        )
