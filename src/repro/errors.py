"""Exception hierarchy for the ``repro`` constraint-query-language library.

Every error raised deliberately by the library derives from :class:`ReproError`
so that callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(ReproError):
    """A textual query or constraint could not be parsed.

    Carries the offending position so callers can report useful diagnostics.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class ArityError(ReproError):
    """A relation was used with the wrong number of arguments."""


class UnknownRelationError(ReproError):
    """A query referenced a relation that is not in the database."""


class TheoryError(ReproError):
    """A constraint atom does not belong to the active constraint theory."""


class UnsupportedEliminationError(ReproError):
    """Quantifier elimination is not available for the given input.

    Raised by the real-polynomial engine when the eliminated variable occurs
    with degree > 2 and the formula has more than two variables (outside the
    fragment covered by Fourier-Motzkin, virtual substitution, and the
    bivariate CAD -- see DESIGN.md section 4).
    """


class NotClosedError(ReproError):
    """A language/recursion combination that is not closed was requested.

    The paper shows (Example 1.12) that Datalog with real polynomial
    constraints is not closed: least fixpoints need not be finitely
    representable.  The Datalog engine refuses such programs up front unless
    the caller explicitly opts in to bounded iteration.
    """


class FixpointDivergenceError(ReproError):
    """Bounded fixpoint iteration exhausted its budget without converging.

    Carries the iteration count and, when the evaluator can provide it, the
    relation sizes of the last completed stage (``relation_sizes``: relation
    name -> number of generalized tuples), so callers can see *how far* the
    runaway fixpoint got before the bound tripped.
    """

    def __init__(
        self,
        iterations: int,
        message: str | None = None,
        relation_sizes: dict[str, int] | None = None,
    ) -> None:
        self.iterations = iterations
        self.relation_sizes = dict(relation_sizes or {})
        if message is None:
            message = f"fixpoint did not converge within {iterations} iterations"
            if self.relation_sizes:
                rendered = ", ".join(
                    f"{name}={size}"
                    for name, size in sorted(self.relation_sizes.items())
                )
                message += f" (last stage sizes: {rendered})"
        super().__init__(message)


class BudgetExceededError(ReproError):
    """A supervised evaluation ran past one of its resource budgets.

    Raised by the cooperative tick points (:mod:`repro.runtime.budget`) inside
    the fixpoint, QE, and algebra loops.  ``report`` is a structured
    :class:`repro.runtime.budget.ResourceReport` describing which budget
    tripped, by how much, and the partial progress observed at that moment.
    """

    def __init__(self, message: str, report=None) -> None:
        self.report = report
        super().__init__(message)


class TransientTheoryError(TheoryError):
    """A theory operation failed for a (presumed) transient reason.

    The chaos layer (:mod:`repro.runtime.chaos`) injects these to model
    recoverable faults -- the retry wrapper backs off and re-invokes the
    solver, and the conformance runner counts exhausted retries as degraded
    runs rather than differential mismatches.
    """


class SpuriousUnsatError(TransientTheoryError):
    """A solver returned UNSAT without a certificate (chaos injection).

    Modeled as a protocol violation of the transient class: a well-behaved
    theory must be able to justify unsatisfiability, so a certificate-less
    UNSAT is surfaced as a retryable error instead of being allowed to
    silently drop tuples (which would corrupt answers).
    """


class EvaluationError(ReproError):
    """A query could not be evaluated against the given database."""


class StaleViewError(EvaluationError):
    """A materialized view was used while tagged stale.

    A maintenance pass that trips its budget in ``partial_results="fringe"``
    mode (or dies mid-flight on a fault) leaves the view's relations in an
    intermediate state that is neither the old nor the new fixpoint, so the
    view is *tagged stale* instead of hanging or corrupting silently.  Stale
    views still answer reads (callers see the tag via ``view.stale``), but
    refuse further deltas until :meth:`repro.core.ivm.MaterializedView.refresh`
    rebuilds them from scratch.
    """


class ClusterError(ReproError):
    """The multi-process sharded executor could not provide service.

    Raised internally by :mod:`repro.runtime.cluster` when the pool cannot be
    brought up (spawn failure) or has been torn down.  The Datalog engine
    catches it and degrades to the in-process parallel path -- callers only
    ever see the degradation tag in ``EvaluationStats``, never this error.
    """


class WorkerCrashError(ClusterError):
    """A shard worker died and exhausted its bounded restart budget.

    Carries the worker id and the restart count so supervisors can log the
    lifecycle (spawn -> live -> suspect -> restarted -> exhausted).  Like its
    base class this never escapes ``DatalogProgram.evaluate``: worker
    exhaustion degrades the whole pool to the in-process path.
    """

    def __init__(
        self, message: str, worker_id: int | None = None, restarts: int = 0
    ) -> None:
        self.worker_id = worker_id
        self.restarts = restarts
        super().__init__(message)


class StaticAnalysisError(ReproError):
    """The opt-in engine pre-flight found error-severity diagnostics.

    Raised by :class:`repro.core.datalog.DatalogProgram` when constructed
    with ``EngineOptions(analyze=True)`` and :mod:`repro.analysis` reports
    unsuppressed errors.  ``diagnostics`` holds the offending
    :class:`repro.analysis.Diagnostic` records.
    """

    def __init__(self, diagnostics) -> None:
        self.diagnostics = list(diagnostics)
        rendered = "; ".join(d.render() for d in self.diagnostics[:3])
        if len(self.diagnostics) > 3:
            rendered += f"; ... ({len(self.diagnostics) - 3} more)"
        super().__init__(
            f"static analysis found {len(self.diagnostics)} error(s): {rendered}"
        )
