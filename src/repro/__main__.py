"""``python -m repro`` launches the interactive constraint-database shell."""

from repro.cli import main

main()
