"""``python -m repro`` -- subcommand dispatch.

* no arguments: the interactive constraint-database shell;
* ``conformance ...``: the differential conformance harness
  (``python -m repro conformance --theory dense --cases 500 --seed 0``);
* ``lint ...``: the cqlint static analyzer
  (``python -m repro lint examples/programs --json --stats``);
* ``bench ...``: the engine benchmark suite
  (``python -m repro bench --profile smoke --check 25``);
* ``query ...``: demand-driven (magic-set) evaluation of one bound query
  (``python -m repro query program.cql 'T(0, y)' --fact 'E(0, 1)' --json``).
"""

import sys


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args and args[0] == "conformance":
        from repro.conformance.runner import main as conformance_main

        return conformance_main(args[1:])
    if args and args[0] == "lint":
        from repro.analysis.lint import main as lint_main

        return lint_main(args[1:])
    if args and args[0] == "bench":
        from repro.harness.bench import main as bench_main

        return bench_main(args[1:])
    if args and args[0] == "query":
        from repro.core.query import main as query_main

        return query_main(args[1:])
    from repro.cli import main as shell_main

    shell_main()
    return 0


if __name__ == "__main__":
    sys.exit(main())
