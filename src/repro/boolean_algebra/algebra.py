"""The free boolean algebra B_m and interpretations (Section 5.1).

By Stone's theorem every finite boolean algebra is the power set of a finite
set; the free algebra on ``m`` generators is the algebra of boolean functions
``{0,1}^m -> {0,1}``, i.e. the power set of the 2^m *minterms*.  An element
is represented as a ``frozenset`` of minterm indices (integers whose bit i
records the value of generator i) -- the set of generator assignments on
which the element's DNF is true.  This representation is the disjunctive
normal form of Section 5.1 in executable clothing: equality of elements is
equality of DNFs, which is what the Theorem 5.6 termination argument counts.

``B_0`` is the two-element algebra {0, 1}.

Interpretations (the paper's (B, sigma) pairs) are evaluation homomorphisms:
:meth:`FreeBooleanAlgebra.interpret` maps an element of ``B_m`` into any
other free algebra, given images for the m generators, exercising Remark G
(parametric evaluation commutes with interpretation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

Element = frozenset[int]


@dataclass(frozen=True)
class FreeBooleanAlgebra:
    """The free boolean algebra on ``generator_names`` (possibly zero) generators."""

    generator_names: tuple[str, ...] = ()

    @staticmethod
    def with_generators(count: int, prefix: str = "c") -> "FreeBooleanAlgebra":
        return FreeBooleanAlgebra(tuple(f"{prefix}{i}" for i in range(count)))

    @property
    def m(self) -> int:
        return len(self.generator_names)

    @property
    def size(self) -> int:
        """Number of elements: 2^(2^m)."""
        return 2 ** (2**self.m)

    # ------------------------------------------------------------- elements
    def zero(self) -> Element:
        return frozenset()

    def one(self) -> Element:
        return frozenset(range(2**self.m))

    def generator(self, index: int) -> Element:
        """The index-th free generator."""
        if not 0 <= index < self.m:
            raise IndexError(f"no generator {index} in B_{self.m}")
        return frozenset(a for a in range(2**self.m) if a & (1 << index))

    def generator_by_name(self, name: str) -> Element:
        return self.generator(self.generator_names.index(name))

    def from_bool(self, value: bool) -> Element:
        return self.one() if value else self.zero()

    def element_from_minterms(self, minterms: Iterable[int]) -> Element:
        universe = 2**self.m
        result = frozenset(minterms)
        if any(a < 0 or a >= universe for a in result):
            raise ValueError("minterm index out of range")
        return result

    def all_elements(self) -> Iterable[Element]:
        """Every element (2^(2^m) of them -- only sensible for tiny m)."""
        universe = list(range(2**self.m))
        for mask in range(2 ** len(universe)):
            yield frozenset(a for i, a in enumerate(universe) if mask & (1 << i))

    # ------------------------------------------------------------ operations
    def meet(self, a: Element, b: Element) -> Element:
        return a & b

    def join(self, a: Element, b: Element) -> Element:
        return a | b

    def complement(self, a: Element) -> Element:
        return self.one() - a

    def xor(self, a: Element, b: Element) -> Element:
        """Exclusive-or: ``(a and not b) or (not a and b)`` (Section 5.1)."""
        return a ^ b

    def is_zero(self, a: Element) -> bool:
        return not a

    def leq(self, a: Element, b: Element) -> bool:
        """The natural partial order ``a <= b`` iff ``a and b = a``."""
        return a <= b

    # -------------------------------------------------------- interpretation
    def interpret(
        self,
        element: Element,
        images: Sequence[Element],
        target: "FreeBooleanAlgebra",
    ) -> Element:
        """Apply the homomorphism sending generator i to ``images[i]``.

        The element is a join of minterms; each minterm maps to the meet of
        the (possibly complemented) generator images.
        """
        if len(images) != self.m:
            raise ValueError(f"need {self.m} generator images, got {len(images)}")
        result = target.zero()
        for minterm in element:
            factor = target.one()
            for i in range(self.m):
                image = images[i]
                if not (minterm & (1 << i)):
                    image = target.complement(image)
                factor = target.meet(factor, image)
            result = target.join(result, factor)
        return result

    # ------------------------------------------------------------ rendering
    def dnf_string(self, element: Element) -> str:
        """Human-readable DNF over the generator names."""
        if not element:
            return "0"
        if element == self.one():
            return "1"
        clauses = []
        for minterm in sorted(element):
            literals = []
            for i, name in enumerate(self.generator_names):
                if minterm & (1 << i):
                    literals.append(name)
                else:
                    literals.append(f"{name}'")
            clauses.append(" & ".join(literals) if literals else "1")
        return " | ".join(f"({c})" for c in clauses)
