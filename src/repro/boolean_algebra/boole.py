"""Boole's lemma: quantifier elimination and equation solving (Lemma 5.3).

For a constraint ``t(x, y1..yk) = 0`` over a boolean algebra:

    exists x . t(x, ys) = 0    iff    t(0, ys) and t(1, ys) = 0,

and when the right side holds, ``x = t(0, ys)`` is a witness (the solution
set for x is the interval ``[t(0, ys), t(1, ys)']``).  On DNF tables the
elimination is a pointwise meet of the two half-tables; repeated application
decides solvability of a fully quantified constraint and back-substitution
produces explicit (parametric) solutions -- the mechanism behind the
bottom-up evaluation of Theorem 5.6 and the adder example 5.4.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.boolean_algebra.algebra import Element, FreeBooleanAlgebra
from repro.boolean_algebra.terms import (
    BoolTerm,
    Table,
    table_evaluate,
    term_table,
)


def boole_eliminate_table(
    table: Table, variables: Sequence[str], drop: str
) -> tuple[Table, tuple[str, ...]]:
    """Eliminate ``exists drop`` from the constraint ``table = 0``.

    Returns the new table and its (reduced) variable tuple.  The entry for an
    assignment ``a`` of the remaining variables is ``t(a, 0) and t(a, 1)``.
    """
    if drop not in variables:
        return table, tuple(variables)
    position = variables.index(drop)
    remaining = tuple(v for v in variables if v != drop)
    entries = []
    for mask in range(2 ** len(remaining)):
        low = _insert_bit(mask, position, 0)
        high = _insert_bit(mask, position, 1)
        entries.append(table[low] & table[high])
    return tuple(entries), remaining


def _insert_bit(mask: int, position: int, bit: int) -> int:
    low = mask & ((1 << position) - 1)
    high = (mask >> position) << (position + 1)
    return high | (bit << position) | low


def constraint_has_solution(
    term: BoolTerm,
    algebra: FreeBooleanAlgebra,
    constants: Mapping[str, Element] | None = None,
) -> bool:
    """Whether ``term = 0`` has a solution for its variables in ``algebra``.

    By iterated Boole elimination this is ``AND over b in {0,1}^n of t(b) = 0``
    (Lemma 5.3) -- note the conjunction can be nonzero even when no single
    conjunct is, in algebras other than B_0 (Remark F).
    """
    variables = sorted(term.variables())
    table = term_table(term, variables, algebra, constants)
    current: Table = table
    names: tuple[str, ...] = tuple(variables)
    for name in list(names):
        current, names = boole_eliminate_table(current, names, name)
    return algebra.is_zero(current[0])


def solve_constraint(
    term: BoolTerm,
    algebra: FreeBooleanAlgebra,
    constants: Mapping[str, Element] | None = None,
) -> dict[str, Element] | None:
    """An explicit solution of ``term = 0`` in ``algebra``, or None.

    Eliminates variables one by one, then back-substitutes choosing the
    canonical witness ``x = t(0, solved)`` at each step.
    """
    variables = sorted(term.variables())
    if constants is None:
        from repro.boolean_algebra.terms import standard_constants

        constants = standard_constants(algebra)
    table = term_table(term, variables, algebra, constants)
    stack: list[tuple[Table, tuple[str, ...], str]] = []
    names: tuple[str, ...] = tuple(variables)
    current = table
    for name in list(names):
        stack.append((current, names, name))
        current, names = boole_eliminate_table(current, names, name)
    if not algebra.is_zero(current[0]):
        return None
    solution: dict[str, Element] = {}
    for table_before, names_before, name in reversed(stack):
        # witness: x = t(0, other values); evaluate the table with x -> 0
        assignment = dict(solution)
        assignment[name] = algebra.zero()
        for other in names_before:
            assignment.setdefault(other, algebra.zero())
        solution[name] = table_evaluate(table_before, names_before, algebra, assignment)
    return solution
