"""Boolean equality constraints over free boolean algebras (Section 5).

* :mod:`repro.boolean_algebra.algebra` -- the free boolean algebra ``B_m`` on
  m generators (minterm-set representation; Stone's theorem makes this exact),
  plus interpretation homomorphisms into other boolean algebras;
* :mod:`repro.boolean_algebra.terms` -- boolean term syntax, evaluation, and
  the disjunctive-normal-form *tables* used as canonical forms (the paper's
  termination argument for Theorem 5.6 counts exactly these);
* :mod:`repro.boolean_algebra.boole` -- Boole's quantifier elimination lemma
  (Lemma 5.3) and equation solving (the parametric solution construction);
* :mod:`repro.boolean_algebra.datalog_bool` -- bottom-up evaluation of
  Datalog with boolean equality constraints (Theorem 5.6), parametric in the
  interpreting algebra (Remark G);
* :mod:`repro.boolean_algebra.qbf` -- the Pi-2-p machinery: the Lemma 5.9
  correspondence between AE-quantified boolean formulas and constraint
  solvability in ``B_m``, a brute-force QBF checker for cross-validation, and
  the Theorem 5.11 Datalog reduction.
"""

from repro.boolean_algebra.algebra import FreeBooleanAlgebra
from repro.boolean_algebra.boole import (
    boole_eliminate_table,
    constraint_has_solution,
    solve_constraint,
)
from repro.boolean_algebra.datalog_bool import BooleanDatalogProgram, BooleanFact, BooleanRule
from repro.boolean_algebra.terms import (
    BAnd,
    BConst,
    BNot,
    BOne,
    BOr,
    BVar,
    BXor,
    BoolTerm,
    BZero,
)

__all__ = [
    "BAnd",
    "BConst",
    "BNot",
    "BOne",
    "BOr",
    "BVar",
    "BXor",
    "BZero",
    "BoolTerm",
    "BooleanDatalogProgram",
    "BooleanFact",
    "BooleanRule",
    "FreeBooleanAlgebra",
    "boole_eliminate_table",
    "constraint_has_solution",
    "solve_constraint",
]
