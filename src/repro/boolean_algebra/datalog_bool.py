"""Datalog with boolean equality constraints (Section 5.2, Theorem 5.6).

Syntax (mirroring the paper):

* facts:  ``R0(xs) :- psi0(xs) = 0``
* rules:  ``R0(xs) :- R1(xs, ys), ..., Rk(xs, ys), psi(xs, ys) = 0``

where every head variable appears in the body and the ``ys`` are body-only.
Several constraints per body are allowed; they are merged into one
(``a = 0 and b = 0  iff  a | b = 0``).

Bottom-up evaluation fires rules by substituting the facts' constraints for
the body atoms, merging constraints by join, eliminating the body-only
variables with Boole's lemma, and normalizing to the DNF table -- the
canonical form whose finiteness (at most ``2^(2^m)`` coefficients per entry,
``2^arity`` entries) guarantees termination, exactly as in the proof of
Theorem 5.6.

The evaluation is *parametric* (Remark G): run over the free algebra ``B_m``
with constants mapped to generators, the derived facts are syntactically the
same for every interpretation ``(B, sigma)``; :meth:`BooleanDatalogProgram.
interpret_fact` pushes a derived fact through a concrete interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.boolean_algebra.algebra import Element, FreeBooleanAlgebra
from repro.boolean_algebra.boole import boole_eliminate_table
from repro.boolean_algebra.terms import (
    BoolTerm,
    BOne,
    BZero,
    Table,
    standard_constants,
    table_or,
    term_table,
)
from repro.errors import (
    ArityError,
    FixpointDivergenceError,
    UnknownRelationError,
)


@dataclass(frozen=True)
class BooleanFact:
    """``predicate(variables) :- constraint = 0`` in canonical table form."""

    predicate: str
    arity: int
    table: Table  # over the canonical variable tuple ("_0", ..., "_arity-1")

    def variable_names(self) -> tuple[str, ...]:
        return canonical_variables(self.arity)


def canonical_variables(arity: int) -> tuple[str, ...]:
    return tuple(f"_{i}" for i in range(arity))


@dataclass(frozen=True)
class BodyAtom:
    """An occurrence ``predicate(arguments)`` in a rule body."""

    predicate: str
    arguments: tuple[str, ...]


@dataclass(frozen=True)
class BooleanRule:
    """``head_predicate(head_arguments) :- body..., constraint = 0``."""

    head_predicate: str
    head_arguments: tuple[str, ...]
    body: tuple[BodyAtom, ...]
    constraint: BoolTerm = field(default_factory=BZero)

    def __post_init__(self) -> None:
        if len(set(self.head_arguments)) != len(self.head_arguments):
            raise ValueError("head arguments must be distinct variables")
        body_vars = {v for atom in self.body for v in atom.arguments}
        body_vars |= self.constraint.variables()
        missing = set(self.head_arguments) - body_vars
        if missing:
            raise ValueError(
                f"head variables {sorted(missing)} do not appear in the body"
            )

    def all_variables(self) -> tuple[str, ...]:
        seen: list[str] = []
        for atom in self.body:
            for name in atom.arguments:
                if name not in seen:
                    seen.append(name)
        for name in sorted(self.constraint.variables()):
            if name not in seen:
                seen.append(name)
        for name in self.head_arguments:
            if name not in seen:
                seen.append(name)
        return tuple(seen)


class BooleanDatalogProgram:
    """A Datalog + boolean-equality-constraints program over ``B_m``."""

    def __init__(
        self,
        algebra: FreeBooleanAlgebra,
        rules: Iterable[BooleanRule] = (),
        constants: Mapping[str, Element] | None = None,
    ) -> None:
        self.algebra = algebra
        self.constants = dict(
            constants if constants is not None else standard_constants(algebra)
        )
        self.rules: list[BooleanRule] = list(rules)
        self._facts: dict[str, set[BooleanFact]] = {}
        self._arities: dict[str, int] = {}

    # ----------------------------------------------------------------- input
    def add_rule(self, rule: BooleanRule) -> None:
        self.rules.append(rule)

    def add_fact(
        self, predicate: str, variables: Sequence[str], constraint: BoolTerm
    ) -> BooleanFact:
        """Add ``predicate(variables) :- constraint = 0`` (an EDB fact)."""
        arity = len(variables)
        self._check_arity(predicate, arity)
        renaming = {
            name: canonical for name, canonical in zip(variables, canonical_variables(arity))
        }
        from repro.boolean_algebra.terms import BVar

        canonical_term = constraint.substitute(
            {name: BVar(renaming[name]) for name in renaming}
        )
        table = term_table(
            canonical_term, canonical_variables(arity), self.algebra, self.constants
        )
        fact = BooleanFact(predicate, arity, table)
        self._facts.setdefault(predicate, set()).add(fact)
        return fact

    def add_ground_fact(self, predicate: str, values: Sequence[Element]) -> BooleanFact:
        """Add a classical tuple by encoding each value as an equality constraint.

        ``R(v1, ..., vk)`` becomes ``R(xs) :- (x1 ^ v1) | ... | (xk ^ vk) = 0``.
        """
        arity = len(values)
        names = canonical_variables(arity)
        term: BoolTerm = BZero()
        from repro.boolean_algebra.terms import BVar

        elements = list(values)
        assignment_term = None
        for name, value in zip(names, elements):
            clause = _xor_with_element(BVar(name), value, self.algebra)
            assignment_term = (
                clause if assignment_term is None else assignment_term | clause
            )
        term = assignment_term if assignment_term is not None else BZero()
        self._check_arity(predicate, arity)
        table = term_table(term, names, self.algebra, self.constants)
        fact = BooleanFact(predicate, arity, table)
        self._facts.setdefault(predicate, set()).add(fact)
        return fact

    def _check_arity(self, predicate: str, arity: int) -> None:
        known = self._arities.get(predicate)
        if known is not None and known != arity:
            raise ArityError(
                f"{predicate} used with arity {arity}, previously {known}"
            )
        self._arities[predicate] = arity

    # ------------------------------------------------------------ evaluation
    def facts(self, predicate: str) -> set[BooleanFact]:
        return set(self._facts.get(predicate, set()))

    def evaluate(self, max_iterations: int = 10_000) -> dict[str, set[BooleanFact]]:
        """Naive bottom-up evaluation to the least fixpoint (Theorem 5.6)."""
        iterations = 0
        while True:
            iterations += 1
            if iterations > max_iterations:
                raise FixpointDivergenceError(
                    max_iterations,
                    relation_sizes={
                        name: len(facts)
                        for name, facts in sorted(self._facts.items())
                    },
                )
            new_facts: list[BooleanFact] = []
            for rule in self.rules:
                new_facts.extend(self._fire_rule(rule))
            changed = False
            for fact in new_facts:
                bucket = self._facts.setdefault(fact.predicate, set())
                if fact not in bucket:
                    bucket.add(fact)
                    changed = True
            if not changed:
                return {name: set(facts) for name, facts in self._facts.items()}

    def _fire_rule(self, rule: BooleanRule) -> list[BooleanFact]:
        """All facts derivable by one firing of ``rule`` from current facts."""
        scope = rule.all_variables()
        base_constraint = term_table(
            rule.constraint, scope, self.algebra, self.constants
        )
        choices: list[list[Table]] = []
        for atom in self.body_atoms_with_facts(rule):
            atom_tables = []
            for fact in atom[1]:
                if fact.arity != len(atom[0].arguments):
                    raise ArityError(
                        f"{atom[0].predicate} arity mismatch in rule body"
                    )
                renamed = _rename_table(
                    fact.table, fact.variable_names(), atom[0].arguments, scope
                )
                atom_tables.append(renamed)
            choices.append(atom_tables)
        derived: list[BooleanFact] = []
        for combination in _product(choices):
            merged = base_constraint
            for table in combination:
                merged = table_or(merged, table, self.algebra)
            table, names = merged, scope
            for name in scope:
                if name not in rule.head_arguments:
                    table, names = boole_eliminate_table(table, names, name)
            missing = [w for w in rule.head_arguments if w not in names]
            if missing:
                raise UnknownRelationError(
                    f"head variables {missing} were eliminated from the body"
                )
            canonical = canonical_variables(len(rule.head_arguments))
            targets = tuple(
                canonical[rule.head_arguments.index(name)] for name in names
            )
            head_table = _rename_table(table, names, targets, canonical)
            derived.append(
                BooleanFact(
                    rule.head_predicate, len(rule.head_arguments), head_table
                )
            )
        return derived

    def body_atoms_with_facts(
        self, rule: BooleanRule
    ) -> list[tuple[BodyAtom, list[BooleanFact]]]:
        result = []
        for atom in rule.body:
            facts = sorted(
                self._facts.get(atom.predicate, set()), key=lambda f: hash(f)
            )
            result.append((atom, facts))
        return result

    # -------------------------------------------------------- interpretation
    def interpret_fact(
        self,
        fact: BooleanFact,
        images: Sequence[Element],
        target: FreeBooleanAlgebra,
    ) -> BooleanFact:
        """Push a parametric fact through an interpretation (Remark G)."""
        table = tuple(
            self.algebra.interpret(entry, images, target) for entry in fact.table
        )
        return BooleanFact(fact.predicate, fact.arity, table)


def _xor_with_element(
    variable_term: BoolTerm, value: Element, algebra: FreeBooleanAlgebra
) -> BoolTerm:
    """The term ``variable ^ value`` with the element rendered as a term."""
    from repro.boolean_algebra.terms import BXor

    return BXor(variable_term, element_as_term(value, algebra))


def element_as_term(value: Element, algebra: FreeBooleanAlgebra) -> BoolTerm:
    """Render an element of ``B_m`` as a ground term over the constant symbols."""
    from repro.boolean_algebra.terms import BAnd, BConst, BNot, BOne, BOr, BZero

    if algebra.is_zero(value):
        return BZero()
    if value == algebra.one():
        return BOne()
    clauses: list[BoolTerm] = []
    for minterm in sorted(value):
        factors: list[BoolTerm] = []
        for i, name in enumerate(algebra.generator_names):
            literal: BoolTerm = BConst(name)
            if not (minterm & (1 << i)):
                literal = BNot(literal)
            factors.append(literal)
        clause: BoolTerm = factors[0]
        for factor in factors[1:]:
            clause = BAnd(clause, factor)
        clauses.append(clause)
    result: BoolTerm = clauses[0]
    for clause in clauses[1:]:
        result = BOr(result, clause)
    return result


def table_as_term(
    table: Table, names: Sequence[str], algebra: FreeBooleanAlgebra
) -> BoolTerm:
    """The DNF term of a table (the Section 5.1 disjunctive normal form).

    Inverse of :func:`~repro.boolean_algebra.terms.term_table` up to table
    equality; shared by :class:`~repro.constraints.boolean.BooleanTheory`
    and the conformance harness's Boole's-lemma strategy adapter.
    """
    from repro.boolean_algebra.terms import BAnd, BNot, BOr, BVar

    clauses: list[BoolTerm] = []
    for mask, coefficient in enumerate(table):
        if algebra.is_zero(coefficient):
            continue
        clause: BoolTerm = element_as_term(coefficient, algebra)
        for i, name in enumerate(names):
            literal: BoolTerm = BVar(name)
            if not (mask & (1 << i)):
                literal = BNot(literal)
            clause = BAnd(clause, literal)
        clauses.append(clause)
    if not clauses:
        return BZero()
    result = clauses[0]
    for clause in clauses[1:]:
        result = BOr(result, clause)
    return result


def _rename_table(
    table: Table,
    from_names: Sequence[str],
    to_names: Sequence[str],
    scope: Sequence[str],
) -> Table:
    """Reinterpret ``table`` (over from_names) as a table over ``scope``,
    with from_names[i] read as scope-variable to_names[i]."""
    if len(from_names) != len(to_names):
        raise ArityError("renaming length mismatch")
    positions = [scope.index(name) for name in to_names]
    entries = []
    for mask in range(2 ** len(scope)):
        source_mask = 0
        for i, position in enumerate(positions):
            if mask & (1 << position):
                source_mask |= 1 << i
        entries.append(table[source_mask])
    return tuple(entries)


def _product(choices: list[list[Table]]):
    if not choices:
        yield ()
        return
    import itertools

    yield from itertools.product(*choices)
