"""Incremental view maintenance: live fixpoints under insert/retract deltas.

The paper's evaluation machinery (Sections 1-3) recomputes every fixpoint
from scratch.  A :class:`MaterializedView` instead registers a program's
derived relations once and then *maintains* them under ``insert``/``retract``
deltas of generalized tuples on the EDB relations, in time proportional to
the change rather than the database:

* **counting maintenance** for non-recursive strata: every derived canonical
  tuple carries a support count (the number of distinct rule derivations
  producing it).  Deltas fire *delta-expansion rules* -- for each rule and
  each non-empty subset ``T`` of its positive body positions, a rewritten
  rule draws the positions in ``T`` from the delta relation and the rest
  from the pre-change content, so a derivation using delta tuples at exactly
  the positions ``T`` is counted exactly once across the expansion.  Counts
  decrement on retraction (a tuple leaves when its support hits zero) and
  increment on insertion -- exact, no over-deletion;
* **DRed (delete-rederive)** for recursive strata, where counting does not
  terminate: over-delete everything with at least one derivation touching a
  deleted tuple (iterated through the same expansion rules), then re-derive
  survivors with alternative derivations and propagate semi-naive, then
  apply insertions as a standard semi-naive continuation;
* **stratum recomputation** for strata with negation (a complement's delta
  has no useful relationship to the relation's delta) and for rule bodies
  too wide for the expansion (> ``_EXPANSION_CAP`` positive atoms);
* **full recomputation** for inflationary/non-stratifiable programs, whose
  semantics is not monotone in the EDB -- the view keeps its API but each
  batch re-evaluates (and says so in ``ivm_recomputed_strata``).

Everything fires through :meth:`repro.core.datalog.DatalogProgram.
_execute_round` -- the same planner, index pool, budget ticks, parallel
round executor and PR 6 compiled closures as from-scratch evaluation; the
maintenance programs are ordinary :class:`DatalogProgram` instances cached
in the process-wide plan cache, and the per-view ``_EvalCaches`` persist
across maintenance steps so :class:`repro.indexing.pool.JoinIndexPool`
probes stay warm (retraction triggers the pool's versioned rebuild).

**Canonical-form equality.**  Both the maintained and the from-scratch path
admit tuples through ``theory.canonicalize``, a deterministic function of
the atom *set*, so "maintained == scratch" is decidable as equality of the
relations' canonical key sets -- the invariant the differential conformance
strategy (``incremental``) asserts after every replayed update.

**Staleness.**  A maintenance pass that trips its budget (or dies on a
fault) mid-flight leaves relations between two fixpoints; the view is then
*tagged stale* (:attr:`MaterializedView.stale`) instead of hanging or lying.
Stale views still answer reads, refuse further deltas with
:class:`repro.errors.StaleViewError`, and recover via :meth:`refresh`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro.constraints.base import ConstraintTheory
from repro.core.datalog import (
    DatalogProgram,
    EvaluationStats,
    Rule,
    _EvalCaches,
)
from repro.core.generalized import (
    GeneralizedDatabase,
    GeneralizedRelation,
    GeneralizedTuple,
)
from repro.errors import (
    BudgetExceededError,
    EvaluationError,
    FixpointDivergenceError,
    StaleViewError,
)
from repro.logic.syntax import Atom, RelationAtom
from repro.runtime.budget import active_meter, metered, tick

#: suffixes of the maintenance-only predicates (delta / pre-change / head)
_DELTA_SUFFIX = "__ivm_d"
_MID_SUFFIX = "__ivm_m"
_OUT_SUFFIX = "__ivm_out"
#: widest rule body the subset expansion will take on (2^n - 1 rules per
#: rule); wider strata fall back to recomputation
_EXPANSION_CAP = 6

Key = frozenset[Atom]
#: (relation name, tuple) pairs -- the public delta format
DeltaItem = tuple[str, "GeneralizedTuple | Iterable[Atom]"]


@dataclass
class _Stratum:
    """One SCC of the IDB dependency graph, in dependencies-first order."""

    preds: frozenset[str]
    rules: list[Rule]
    recursive: bool
    #: maintained by re-evaluating the stratum (negation, or too-wide bodies)
    recompute: bool
    #: every relation name in rule bodies (positive and negated)
    body_preds: frozenset[str]
    #: positive body relation names only (what the expansion rewrites)
    pos_body_preds: frozenset[str]
    expansion: DatalogProgram | None = None
    caches: _EvalCaches | None = field(default=None, repr=False)

    @property
    def counting(self) -> bool:
        return not self.recursive and not self.recompute


def _expansion_rules(rules: Sequence[Rule]) -> list[Rule]:
    """The delta-expansion program of a stratum's rules.

    For each rule and each non-empty subset ``T`` of its positive body
    positions: positions in ``T`` read the ``__ivm_d`` delta relation,
    positions outside read the ``__ivm_m`` pre-change relation, constraint
    atoms stay put (literal order is preserved so the head-variable
    elimination order matches the original rule exactly).  A derivation
    over (pre-change + delta) content that uses delta tuples at exactly the
    positions ``T`` fires exactly the ``T``-rule and no other, so summing
    head multiplicities over the expansion counts each changed derivation
    exactly once -- the exactness counting maintenance needs.
    """
    out: list[Rule] = []
    for rule in rules:
        n = len(rule.positive_atoms)
        head = RelationAtom(rule.head.name + _OUT_SUFFIX, rule.head.args)
        for mask in range(1, 2**n):
            body: list[object] = []
            position = 0
            for literal in rule.body:
                if isinstance(literal, RelationAtom):
                    suffix = (
                        _DELTA_SUFFIX if (mask >> position) & 1 else _MID_SUFFIX
                    )
                    body.append(RelationAtom(literal.name + suffix, literal.args))
                    position += 1
                else:
                    body.append(literal)
            out.append(Rule(head, tuple(body)))
    return out


class MaterializedView:
    """A program's derived relations, maintained live under EDB deltas.

    ``semantics``/``semi_naive`` mirror :meth:`DatalogProgram.evaluate` and
    select the from-scratch semantics the view stays equal to.  For positive
    and stratifiable programs maintenance is incremental (counting + DRed);
    inflationary/non-stratifiable programs fall back to per-batch
    recomputation behind the same API.

    The view owns its world (the registration evaluation copies the input
    database); reads go through :meth:`relation`.  Deltas target EDB
    relations only -- derived relations change exclusively through
    maintenance.  Close the view (or use it as a context manager) to shut
    down its persistent executor/caches.
    """

    def __init__(
        self,
        program: DatalogProgram,
        database: GeneralizedDatabase,
        *,
        semantics: str = "auto",
        semi_naive: bool = True,
        max_iterations: int = 100_000,
    ) -> None:
        self.program = program
        self.theory: ConstraintTheory = program.theory
        self.semantics = semantics
        self.semi_naive = semi_naive
        self.max_iterations = max_iterations
        self.stale = False
        self.stale_reason: str | None = None
        self.total_stats = EvaluationStats()
        self.last_stats = EvaluationStats()
        self._idbs = program.idb_predicates()
        for name in sorted(self._idbs):
            if name in database and len(database.relation(name)):
                raise EvaluationError(
                    f"cannot materialize {name!r}: it is derived by rules but "
                    "the database already holds facts for it"
                )
        for rule in program.rules:
            for atom in [rule.head] + rule.positive_atoms + rule.negative_atoms:
                if _DELTA_SUFFIX in atom.name or _MID_SUFFIX in atom.name:
                    raise EvaluationError(
                        f"predicate {atom.name!r} collides with the "
                        "maintenance namespace"
                    )
        #: maintenance options: analysis ran (or not) at program construction,
        #: and the ambient meter installed by ``apply`` covers the budget, so
        #: sub-programs must not restart their own.  The semantic optimizer
        #: is forced off for the internal delta/expansion programs: counting
        #: maintenance depends on *derivation counts*, which subsumption
        #: removal would change, and delta rules carry non-standard
        #: semantics the containment argument does not cover.
        #: ``sharded`` is pinned off too: maintenance deltas are small and
        #: latency-bound, so shipping them to a process pool would cost
        #: more than the work it parallelizes
        self._opts = replace(
            program.options,
            analyze=False,
            budget=None,
            optimize_semantic=False,
            sharded=False,
            cluster=None,
        )
        self._mode = self._resolve_mode()
        self._strata: list[_Stratum] = (
            self._compute_strata() if self._mode == "incremental" else []
        )
        self._sub_programs: dict[int, DatalogProgram] = {}
        self._mworld: GeneralizedDatabase | None = None
        self._mid_rel: dict[str, GeneralizedRelation] = {}
        self._delta_rel: dict[str, GeneralizedRelation] = {}
        self._caches: _EvalCaches | None = None
        self._counts: dict[str, dict[Key, int]] = {}
        self.world: GeneralizedDatabase
        self._materialize(database)

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "MaterializedView":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the view's persistent executors and caches."""
        if self._caches is not None:
            self._caches.close()
            self._caches = None
        for stratum in self._strata:
            if stratum.caches is not None:
                stratum.caches.close()
                stratum.caches = None

    def _resolve_mode(self) -> str:
        if not self.program.has_negation():
            return "incremental"
        if self.semantics == "inflationary":
            return "recompute"
        if self.program.stratify() is None:
            if self.semantics == "stratified":
                raise EvaluationError(
                    "program is not stratifiable (negation through recursion)"
                )
            return "recompute"
        return "incremental"

    def _mark_stale(self, reason: str) -> None:
        self.stale = True
        self.stale_reason = reason

    # ----------------------------------------------------------------- reads
    def relation(self, name: str) -> GeneralizedRelation:
        """The current (possibly stale-tagged) content of a relation."""
        return self.world.relation(name)

    def fingerprint(self) -> dict[str, frozenset[Key]]:
        """Canonical key sets per relation -- the view's identity as sets.

        Canonicalization is a deterministic function of each tuple's atom
        set, so two worlds are canonically equal iff their fingerprints are
        equal; the differential tests compare these.
        """
        return {
            name: frozenset(self.world.relation(name).keys())
            for name in self.world.names()
        }

    @property
    def mode(self) -> str:
        """``"incremental"`` (counting/DRed) or ``"recompute"`` (fallback)."""
        return self._mode

    def support_count(self, name: str, item: GeneralizedTuple) -> int | None:
        """The counting stratum's support for a derived tuple (tests/shell)."""
        counts = self._counts.get(name)
        if counts is None:
            return None
        key = self._key_of(self.world.relation(name), item)
        return 0 if key is None else counts.get(key, 0)

    # ---------------------------------------------------------------- deltas
    def insert(self, name: str, item: GeneralizedTuple | Iterable[Atom]) -> EvaluationStats:
        """Insert one generalized tuple into an EDB relation and maintain."""
        return self.apply(inserts=[(name, item)])

    def retract(self, name: str, item: GeneralizedTuple | Iterable[Atom]) -> EvaluationStats:
        """Retract one generalized tuple from an EDB relation and maintain."""
        return self.apply(retracts=[(name, item)])

    def apply(
        self,
        inserts: Iterable[DeltaItem] = (),
        retracts: Iterable[DeltaItem] = (),
    ) -> EvaluationStats:
        """Apply a batch of EDB deltas and maintain every derived relation.

        Batch semantics: retracts land before inserts, so retract+insert of
        the same tuple in one batch is a net no-op.  No-op deltas (retract
        of an absent tuple, insert of a present one) cost nothing.  Raises
        :class:`StaleViewError` if the view is stale; a budget trip inside
        maintenance tags the view stale and degrades per the budget's
        ``partial_results`` mode (fringe: return tagged stats; raise:
        propagate after tagging).
        """
        if self.stale:
            raise StaleViewError(
                f"view is stale ({self.stale_reason}); call refresh() first"
            )
        stats = EvaluationStats()
        stats.ivm_steps = 1
        started = time.perf_counter()
        budget = self.program.options.budget
        meter = budget.start() if budget is not None else active_meter()
        enabled = self._enable_theory_caches()
        try:
            with metered(meter):
                self._apply_inner(list(inserts), list(retracts), stats)
        except BudgetExceededError as error:
            self._mark_stale(f"budget exceeded mid-maintenance: {error}")
            stats.incomplete = True
            report = getattr(error, "report", None)
            stats.budget = report.as_dict() if report is not None else {}
            stats.ivm_maintain_seconds = time.perf_counter() - started
            self._finish(stats)
            mode = meter.budget.partial_results if meter is not None else "raise"
            if mode != "fringe":
                raise
            return stats
        except Exception as error:
            self._mark_stale(f"fault mid-maintenance: {error}")
            raise
        finally:
            self._restore_theory_caches(enabled)
        stats.ivm_maintain_seconds = time.perf_counter() - started
        self._finish(stats)
        return stats

    def refresh(self) -> EvaluationStats:
        """Rebuild the view from the current EDB content, clearing staleness."""
        base = self._edb_database()
        try:
            return self._materialize(base)
        except BudgetExceededError:
            self._mark_stale("budget exceeded during refresh")
            raise

    def edb_database(self) -> GeneralizedDatabase:
        """A database *sharing* the view's live EDB relation objects.

        The demand-driven query path (:mod:`repro.core.query`) evaluates
        bound queries against this database: because the relation objects
        are shared, every maintained delta bumps their monotone ``version``
        counters in place, which is exactly the invalidation signal the
        query-result reuse cache snapshots (:attr:`delta_version`).  Note a
        :meth:`refresh` rebuilds ``self.world`` with *new* relation objects;
        callers should re-request this database per query rather than hold
        one across maintenance generations.
        """
        return self._edb_database()

    @property
    def delta_version(self) -> int:
        """Monotone counter over every live EDB relation's mutation version.

        Strictly increases whenever any maintained delta (insert *or*
        retract) lands, so equality of two snapshots certifies the EDB --
        and hence every cached query answer over it -- is unchanged.
        """
        return sum(
            self.world.relation(name).version
            for name in self.world.names()
            if name not in self._idbs
        )

    # ------------------------------------------------------------- internals
    def _enable_theory_caches(self) -> list[tuple[object, bool]]:
        """Mirror ``evaluate``'s theory-cache bracketing for maintenance."""
        saved: list[tuple[object, bool]] = []
        cache = self.theory.cache
        if cache is not None:
            saved.append((cache, cache.enabled))
            cache.enabled = self.program.options.theory_cache
        return saved

    @staticmethod
    def _restore_theory_caches(saved: list[tuple[object, bool]]) -> None:
        for cache, enabled in saved:
            cache.enabled = enabled  # type: ignore[attr-defined]

    def _accumulate(self, stats: EvaluationStats) -> None:
        self.total_stats.merge(stats)
        self.total_stats.iterations += stats.iterations
        self.total_stats.tuples_added += stats.tuples_added
        self.total_stats.incomplete = self.total_stats.incomplete or stats.incomplete

    def _finish(self, stats: EvaluationStats) -> None:
        self.last_stats = stats
        self._accumulate(stats)

    def _edb_database(self) -> GeneralizedDatabase:
        base = GeneralizedDatabase(self.theory)
        for name in self.world.names():
            if name not in self._idbs:
                base.add_relation(self.world.relation(name))
        return base

    def _materialize(self, database: GeneralizedDatabase) -> EvaluationStats:
        self.close()
        world, stats = self.program.evaluate(
            database,
            max_iterations=self.max_iterations,
            semi_naive=self.semi_naive,
            semantics=self.semantics,
        )
        self.world = world
        self._finish(stats)
        if stats.incomplete:
            self._mark_stale("budget exceeded during (re)materialization")
            return stats
        self.stale = False
        self.stale_reason = None
        if self._mode == "incremental":
            self._init_runtime()
        return stats

    def _init_runtime(self) -> None:
        """(Re)build the per-view maintenance state against ``self.world``.

        The maintenance programs and strata are static (they depend only on
        the rules), but the caches/pools/counts reference relation content,
        so a rematerialization rebuilds them.
        """
        if self._mworld is None:
            self._mworld = GeneralizedDatabase(self.theory)
            names: set[str] = set()
            for stratum in self._strata:
                if not stratum.recompute:
                    names |= stratum.pos_body_preds
            for name in sorted(names):
                live = self.world.relation(name)
                mid = GeneralizedRelation(
                    name + _MID_SUFFIX, live.variables, self.theory
                )
                delta = GeneralizedRelation(
                    name + _DELTA_SUFFIX, live.variables, self.theory
                )
                self._mworld.add_relation(mid)
                self._mworld.add_relation(delta)
                self._mid_rel[name] = mid
                self._delta_rel[name] = delta
        self._caches = _EvalCaches(
            self._opts, self.theory, program=self.program, stats=self.total_stats
        )
        for stratum in self._strata:
            if stratum.expansion is not None:
                stratum.caches = _EvalCaches(
                    self._opts,
                    self.theory,
                    program=stratum.expansion,
                    stats=self.total_stats,
                )
        self._counts = {}
        scratch = EvaluationStats()
        for stratum in self._strata:
            if not stratum.counting:
                continue
            for pred in stratum.preds:
                self._counts[pred] = {}
            tasks: list[tuple[Rule, dict | None, int | None]] = [
                (rule, None, None) for rule in stratum.rules
            ]
            derived = self.program._execute_round(
                tasks, self.world, scratch, self._require(self._caches)
            )
            for pred, item in derived:
                key = self._key_of(self.world.relation(pred), item)
                if key is not None:
                    counts = self._counts[pred]
                    counts[key] = counts.get(key, 0) + 1
        self._warm_pool(scratch)

    def _warm_pool(self, scratch: EvaluationStats) -> None:
        """Pre-build the join indexes the maintenance loops will probe.

        ``_semi_naive`` (DRed insertion/re-derivation) fires delta-at-
        position tasks against the *live* relations; the pool builds each
        (relation, projection) index lazily on first probe, which would
        charge an O(|relation|) construction to the first delta.  Replaying
        the same task shapes once here -- full live content standing in for
        the delta, derivations discarded -- moves that cost into
        registration, keeping ``apply`` delta-proportional from the first
        call.  Suffix catch-up (and the retraction-versioned rebuild) keeps
        the warmed indexes current afterwards.
        """
        for stratum in self._strata:
            if stratum.recompute or not stratum.recursive:
                continue
            content = {
                name: list(self.world.relation(name))
                for name in sorted(stratum.pos_body_preds)
            }
            tasks: list[tuple[Rule, dict | None, int | None]] = []
            for rule in stratum.rules:
                for position, atom in enumerate(rule.positive_atoms):
                    if content.get(atom.name):
                        tasks.append((rule, content, position))
            if tasks:
                self.program._execute_round(
                    tasks, self.world, scratch, self._require(self._caches)
                )

    @staticmethod
    def _require(caches: _EvalCaches | None) -> _EvalCaches:
        if caches is None:  # pragma: no cover - guarded by _materialize
            raise EvaluationError("view runtime is not initialized")
        return caches

    def _key_of(
        self, relation: GeneralizedRelation, item: GeneralizedTuple
    ) -> Key | None:
        """The canonical key ``add_canonical`` would store ``item`` under."""
        renamed = (
            item.rename(relation.variables)
            if item.variables != relation.variables
            else item
        )
        canonical = self.theory.canonicalize(renamed.atoms)
        return None if canonical is None else frozenset(canonical)

    def _to_tuple(
        self,
        relation: GeneralizedRelation,
        item: GeneralizedTuple | Iterable[Atom],
    ) -> GeneralizedTuple:
        if isinstance(item, GeneralizedTuple):
            return item
        return GeneralizedTuple(relation.variables, tuple(item))

    # ------------------------------------------------------- the maintenance
    def _apply_inner(
        self,
        inserts: list[DeltaItem],
        retracts: list[DeltaItem],
        stats: EvaluationStats,
    ) -> None:
        dels: dict[str, list[GeneralizedTuple]] = {}
        adds: dict[str, list[GeneralizedTuple]] = {}
        removal_keys: dict[str, set[Key]] = {}
        insert_items: dict[str, dict[Key, GeneralizedTuple]] = {}
        for name, spec in retracts:
            relation = self._edb_target(name)
            key = self._key_of(relation, self._to_tuple(relation, spec))
            if key is not None and relation.lookup(key) is not None:
                removal_keys.setdefault(name, set()).add(key)
        for name, spec in inserts:
            relation = self._edb_target(name)
            gt = self._to_tuple(relation, spec)
            key = self._key_of(relation, gt)
            if key is None:
                continue  # unsatisfiable tuples denote the empty set
            removed = removal_keys.get(name)
            if removed is not None and key in removed:
                removed.discard(key)  # retract + reinsert: net no-op
                continue
            if relation.lookup(key) is None:
                insert_items.setdefault(name, {})[key] = gt
        for name, keys in removal_keys.items():
            relation = self.world.relation(name)
            for key in keys:
                removed_item = relation.discard_key(key)
                if removed_item is not None:
                    dels.setdefault(name, []).append(removed_item)
        for name, items in insert_items.items():
            relation = self.world.relation(name)
            for gt in items.values():
                stored = relation.add_canonical(gt)
                if stored is not None:
                    adds.setdefault(name, []).append(stored)
        stats.ivm_retracts += sum(len(v) for v in dels.values())
        stats.ivm_inserts += sum(len(v) for v in adds.values())
        if not dels and not adds:
            return
        if self._mode == "recompute":
            self._recompute_all(stats)
            return
        for index, stratum in enumerate(self._strata):
            if not any(
                dels.get(p) or adds.get(p) for p in stratum.body_preds
            ):
                continue
            if stratum.recompute:
                self._recompute_stratum(index, stratum, dels, adds, stats)
            elif stratum.recursive:
                self._dred(stratum, dels, adds, stats)
            else:
                self._counting(stratum, dels, adds, stats)

    def _edb_target(self, name: str) -> GeneralizedRelation:
        if name in self._idbs:
            raise EvaluationError(
                f"{name!r} is derived by rules; deltas apply to EDB relations"
            )
        return self.world.relation(name)

    # ---------------------------------------------------- expansion plumbing
    def _fill_mids(
        self, refs: Iterable[str], adds: Mapping[str, list[GeneralizedTuple]]
    ) -> None:
        """Bind each ``X__ivm_m`` to the pre-change content ``live(X) - A_X``.

        Lower strata have already applied this batch's additions by the time
        a stratum fires its expansion, and the exact-count classification
        needs the *other* positions drawn from content without them (both
        sub-steps: old = pre + D, new = pre + A).  Pointer-copy only; no
        canonicalization, no budget ticks.
        """
        for name in refs:
            live = self.world.relation(name)
            mid = self._mid_rel[name]
            mid.clear()
            added = adds.get(name)
            skip = (
                {frozenset(item.atoms) for item in added} if added else frozenset()
            )
            for key, item in live.entries():
                if key not in skip:
                    mid.adopt_canonical(item)

    def _fire_expansion(
        self,
        stratum: _Stratum,
        delta_map: Mapping[str, list[GeneralizedTuple]],
        stats: EvaluationStats,
    ) -> list[tuple[str, GeneralizedTuple]]:
        """One pass of a stratum's expansion rules against (mid, delta)."""
        if not any(delta_map.get(name) for name in stratum.pos_body_preds):
            return []
        expansion = stratum.expansion
        if expansion is None:  # pragma: no cover - counting/dred imply it
            raise EvaluationError("stratum has no expansion program")
        for name in stratum.pos_body_preds:
            delta = self._delta_rel[name]
            delta.clear()
            for item in delta_map.get(name) or ():
                delta.adopt_canonical(item)
        tick("round")
        stats.iterations += 1
        tasks: list[tuple[Rule, dict | None, int | None]] = [
            (rule, None, None) for rule in expansion.rules
        ]
        derived = expansion._execute_round(
            tasks, self._require(self._mworld), stats, self._require(stratum.caches)
        )
        strip = len(_OUT_SUFFIX)
        return [(name[:-strip], item) for name, item in derived]

    # ----------------------------------------------------- counting strata
    def _counting(
        self,
        stratum: _Stratum,
        dels: dict[str, list[GeneralizedTuple]],
        adds: dict[str, list[GeneralizedTuple]],
        stats: EvaluationStats,
    ) -> None:
        refs = sorted(stratum.pos_body_preds)
        self._fill_mids(refs, adds)
        del_map = {name: dels.get(name) or [] for name in refs}
        add_map = {name: adds.get(name) or [] for name in refs}
        # --- lost derivations: decrement supports, drop zero-support tuples
        for pred, item in self._fire_expansion(stratum, del_map, stats):
            live = self.world.relation(pred)
            counts = self._counts[pred]
            key = self._key_of(live, item)
            if key is None:
                continue
            remaining = counts.get(key, 0) - 1
            if remaining > 0:
                counts[key] = remaining
                continue
            if remaining < 0:
                stats.ivm_count_clamps += 1
            counts.pop(key, None)
            removed = live.discard_key(key)
            if removed is not None:
                dels.setdefault(pred, []).append(removed)
                stats.ivm_derived_removed += 1
        # --- new derivations: increment supports, admit first arrivals
        for pred, item in self._fire_expansion(stratum, add_map, stats):
            live = self.world.relation(pred)
            counts = self._counts[pred]
            key = self._key_of(live, item)
            if key is None:
                continue
            counts[key] = counts.get(key, 0) + 1
            if live.lookup(key) is None:
                stored = live.add_canonical(item)
                if stored is not None:
                    adds.setdefault(pred, []).append(stored)
                    stats.ivm_derived_added += 1

    # --------------------------------------------------------- DRed strata
    def _dred(
        self,
        stratum: _Stratum,
        dels: dict[str, list[GeneralizedTuple]],
        adds: dict[str, list[GeneralizedTuple]],
        stats: EvaluationStats,
    ) -> None:
        refs = sorted(stratum.pos_body_preds)
        self._fill_mids(refs, adds)
        live_rels = {p: self.world.relation(p) for p in stratum.preds}
        marked: dict[str, dict[Key, GeneralizedTuple]] = {
            p: {} for p in stratum.preds
        }
        added: dict[str, dict[Key, GeneralizedTuple]] = {
            p: {} for p in stratum.preds
        }
        lower_del = {
            name: dels.get(name) or []
            for name in refs
            if name not in stratum.preds
        }
        # --- over-deletion: everything with a derivation through a deleted
        # tuple, iterated to a fixpoint over the expansion (own relations
        # still hold their old content, so non-delta positions see old)
        if any(lower_del.values()):
            rounds = 0
            while True:
                rounds += 1
                if rounds > self.max_iterations:
                    raise FixpointDivergenceError(self.max_iterations)
                delta_map: dict[str, list[GeneralizedTuple]] = dict(lower_del)
                for pred in stratum.preds:
                    if marked[pred]:
                        delta_map[pred] = list(marked[pred].values())
                fresh = 0
                for pred, item in self._fire_expansion(stratum, delta_map, stats):
                    live = live_rels[pred]
                    key = self._key_of(live, item)
                    if key is None or key in marked[pred]:
                        continue
                    stored = live.lookup(key)
                    if stored is not None:
                        marked[pred][key] = stored
                        fresh += 1
                if fresh == 0:
                    break
            total_marked = sum(len(m) for m in marked.values())
            if total_marked:
                for pred, items in marked.items():
                    live = live_rels[pred]
                    for key in items:
                        live.discard_key(key)
                stats.ivm_overdeleted += total_marked
                # --- re-derivation: one full round over the surviving
                # content re-admits marked tuples with alternative
                # derivations, then semi-naive propagation completes the
                # stratum's fixpoint over its current inputs
                tick("round")
                stats.iterations += 1
                tasks: list[tuple[Rule, dict | None, int | None]] = [
                    (rule, None, None) for rule in stratum.rules
                ]
                derived = self.program._execute_round(
                    tasks, self.world, stats, self._require(self._caches)
                )
                seeds: dict[str, list[GeneralizedTuple]] = {
                    p: [] for p in stratum.preds
                }
                for pred, item in derived:
                    stored = live_rels[pred].add_canonical(item)
                    if stored is not None:
                        seeds[pred].append(stored)
                        added[pred][frozenset(stored.atoms)] = stored
                for pred, items in self._semi_naive(stratum, seeds, stats).items():
                    for stored in items:
                        added[pred][frozenset(stored.atoms)] = stored
        # --- insertion: standard semi-naive continuation seeded with the
        # lower strata's (and EDB) additions
        lower_add = {
            name: adds.get(name) or []
            for name in refs
            if name not in stratum.preds
        }
        if any(lower_add.values()):
            for pred, items in self._semi_naive(stratum, lower_add, stats).items():
                for stored in items:
                    added[pred][frozenset(stored.atoms)] = stored
        # --- net deltas for the strata above
        rederived = 0
        for pred in stratum.preds:
            live = live_rels[pred]
            for key, stored in marked[pred].items():
                if live.lookup(key) is None:
                    dels.setdefault(pred, []).append(stored)
                    stats.ivm_derived_removed += 1
                else:
                    rederived += 1
            for key, stored in added[pred].items():
                if key not in marked[pred]:
                    adds.setdefault(pred, []).append(stored)
                    stats.ivm_derived_added += 1
        stats.ivm_rederived += rederived

    def _semi_naive(
        self,
        stratum: _Stratum,
        seeds: Mapping[str, list[GeneralizedTuple]],
        stats: EvaluationStats,
    ) -> dict[str, list[GeneralizedTuple]]:
        """Semi-naive continuation of a stratum from already-applied seeds.

        Seed tuples (lower-stratum additions and/or re-derived survivors)
        are already in the live relations; each round fires every rule once
        per delta-restricted position and feeds admissions back as the next
        delta, exactly like the engine's own semi-naive loop.
        """
        admitted: dict[str, list[GeneralizedTuple]] = {p: [] for p in stratum.preds}
        delta = {name: list(items) for name, items in seeds.items() if items}
        rounds = 0
        while delta:
            rounds += 1
            if rounds > self.max_iterations:
                raise FixpointDivergenceError(self.max_iterations)
            tick("round")
            stats.iterations += 1
            tasks: list[tuple[Rule, dict | None, int | None]] = []
            for rule in stratum.rules:
                for position, atom in enumerate(rule.positive_atoms):
                    if delta.get(atom.name):
                        tasks.append((rule, delta, position))
            if not tasks:
                break
            derived = self.program._execute_round(
                tasks, self.world, stats, self._require(self._caches)
            )
            new_delta: dict[str, list[GeneralizedTuple]] = {}
            for pred, item in derived:
                stored = self.world.relation(pred).add_canonical(item)
                if stored is not None:
                    admitted[pred].append(stored)
                    new_delta.setdefault(pred, []).append(stored)
            delta = new_delta
        return admitted

    # ---------------------------------------------------- recompute fallbacks
    def _recompute_stratum(
        self,
        index: int,
        stratum: _Stratum,
        dels: dict[str, list[GeneralizedTuple]],
        adds: dict[str, list[GeneralizedTuple]],
        stats: EvaluationStats,
    ) -> None:
        """Re-evaluate one stratum against its (fully maintained) inputs.

        Negation makes deltas useless (the complement of a changed relation
        is not a function of the change), so the stratum recomputes; lower
        strata are final by the time it runs, which is exactly the
        stratified semantics' contract.  Deltas for the strata above come
        from diffing the old and new canonical key sets.
        """
        sub = self._sub_programs.get(index)
        if sub is None:
            sub = DatalogProgram(
                stratum.rules,
                self.theory,
                allow_unsafe_recursion=self.program.allow_unsafe_recursion,
                options=self._opts,
            )
            self._sub_programs[index] = sub
        old: dict[str, dict[Key, GeneralizedTuple]] = {}
        for pred in stratum.preds:
            live = self.world.relation(pred)
            old[pred] = dict(live.entries())
            live.clear()
        world2, estats = sub.evaluate(
            self.world,
            max_iterations=self.max_iterations,
            semi_naive=self.semi_naive,
            semantics="auto",
        )
        stats.merge(estats)
        stats.iterations += estats.iterations
        if estats.incomplete:
            raise BudgetExceededError(
                "budget exceeded while recomputing a stratum"
            )
        for pred in stratum.preds:
            live = self.world.relation(pred)
            for key, item in world2.relation(pred).entries():
                live.adopt_canonical(item)
            for key, item in old[pred].items():
                if live.lookup(key) is None:
                    dels.setdefault(pred, []).append(item)
                    stats.ivm_derived_removed += 1
            for key, item in live.entries():
                if key not in old[pred]:
                    adds.setdefault(pred, []).append(item)
                    stats.ivm_derived_added += 1
        stats.ivm_recomputed_strata += 1

    def _recompute_all(self, stats: EvaluationStats) -> None:
        """Inflationary/non-stratifiable fallback: re-evaluate the program."""
        world, estats = self.program.evaluate(
            self._edb_database(),
            max_iterations=self.max_iterations,
            semi_naive=self.semi_naive,
            semantics=self.semantics,
        )
        stats.merge(estats)
        stats.iterations += estats.iterations
        stats.ivm_recomputed_strata += 1
        self.world = world
        if estats.incomplete:
            raise BudgetExceededError("budget exceeded while recomputing view")

    # ------------------------------------------------------- stratum analysis
    def _compute_strata(self) -> list[_Stratum]:
        """SCC condensation of the IDB dependency graph, dependencies first.

        Tarjan's algorithm emits SCCs in topological order of the
        condensation with successors (body predicates) first -- exactly the
        bottom-up maintenance order.  Iteration is over sorted names, so
        the order is deterministic.
        """
        idbs = self._idbs
        graph: dict[str, set[str]] = {p: set() for p in idbs}
        for rule in self.program.rules:
            for atom in rule.positive_atoms + rule.negative_atoms:
                if atom.name in idbs:
                    graph[rule.head.name].add(atom.name)
        order: list[list[str]] = []
        index_of: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]

        def strongconnect(node: str) -> None:
            index_of[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(graph[node]):
                if succ not in index_of:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                order.append(sorted(component))

        for node in sorted(idbs):
            if node not in index_of:
                strongconnect(node)

        strata: list[_Stratum] = []
        for component in order:
            preds = frozenset(component)
            rules = [r for r in self.program.rules if r.head.name in preds]
            recursive = len(component) > 1 or any(
                atom.name in preds
                for rule in rules
                for atom in rule.positive_atoms + rule.negative_atoms
            )
            negated = any(rule.has_negation() for rule in rules)
            too_wide = any(len(rule.positive_atoms) > _EXPANSION_CAP for rule in rules)
            body_preds = frozenset(
                atom.name
                for rule in rules
                for atom in rule.positive_atoms + rule.negative_atoms
            )
            pos_body_preds = frozenset(
                atom.name for rule in rules for atom in rule.positive_atoms
            )
            stratum = _Stratum(
                preds=preds,
                rules=rules,
                recursive=recursive,
                recompute=negated or too_wide,
                body_preds=body_preds,
                pos_body_preds=pos_body_preds,
            )
            if not stratum.recompute:
                stratum.expansion = DatalogProgram(
                    _expansion_rules(rules),
                    self.theory,
                    allow_unsafe_recursion=True,
                    options=self._opts,
                )
            strata.append(stratum)
        return strata


# ----------------------------------------------------------------- registry
class ViewRegistry:
    """Registered materialized views the semantic optimizer may answer from.

    A view is registered under the *exported relation name* its
    materialization will carry in evaluation databases.  The registry turns
    live views into :class:`repro.analysis.semantic.ViewDefinition` records
    (the optimizer's input) and exports their current fixpoints into a
    database, so a program constructed with ``DatalogProgram(rules, theory,
    views=registry.definitions())`` can read the already-maintained answer
    instead of re-deriving it.

    Only *fresh* views participate: a stale view (budget-degraded) no longer
    equals its program's fixpoint, so answering from it would be unsound --
    ``definitions()``/``export_to`` silently skip it until refreshed.  Views
    deriving more than one IDB predicate are skipped too (the rewrite
    replaces exactly one predicate's rules with a copy rule).
    """

    def __init__(self) -> None:
        self._views: dict[str, MaterializedView] = {}

    def register(self, name: str, view: MaterializedView) -> None:
        if name in self._views:
            raise EvaluationError(f"view name {name!r} already registered")
        self._views[name] = view

    def unregister(self, name: str) -> None:
        self._views.pop(name, None)

    def clear(self) -> None:
        self._views.clear()

    def names(self) -> list[str]:
        return sorted(self._views)

    def get(self, name: str) -> "MaterializedView | None":
        return self._views.get(name)

    def _eligible(self) -> dict[str, tuple[MaterializedView, str]]:
        eligible: dict[str, tuple[MaterializedView, str]] = {}
        for name, view in self._views.items():
            if view.stale or len(view._idbs) != 1:
                continue
            (predicate,) = view._idbs
            eligible[name] = (view, predicate)
        return eligible

    def definitions(self) -> "dict[str, object]":
        """Exported name -> ``ViewDefinition`` for every fresh view."""
        from repro.analysis.semantic import ViewDefinition

        return {
            name: ViewDefinition(
                relation=name,
                predicate=predicate,
                rules=tuple(view.program.rules),
            )
            for name, (view, predicate) in self._eligible().items()
        }

    def export_to(self, database: GeneralizedDatabase) -> "dict[str, object]":
        """Copy fresh views' fixpoints into ``database``; return definitions.

        Each eligible view's derived relation lands under its exported name
        (existing relations of that name are left alone and the view is
        skipped -- the caller owns the collision).  The returned mapping is
        exactly :meth:`definitions` restricted to the exported views, ready
        to pass as ``DatalogProgram(views=...)``.
        """
        from repro.analysis.semantic import ViewDefinition

        exported: dict[str, object] = {}
        for name, (view, predicate) in self._eligible().items():
            if name in database:
                continue
            database.add_relation(view.relation(predicate).copy(name))
            exported[name] = ViewDefinition(
                relation=name,
                predicate=predicate,
                rules=tuple(view.program.rules),
            )
        return exported


#: process-wide registry (PR 8); the shell and tests share it
VIEW_REGISTRY = ViewRegistry()
