"""Rule compilation: planned rules lowered to specialized closures.

The PR 5 engine *interprets* each planned rule: every join level re-decides,
per candidate tuple, which access path to use, whether the pin filter
applies, and which generic :class:`~repro.constraints.base.ConstraintTheory`
entry points to call.  That per-tuple dispatch is pure overhead for the
workloads the paper's closed-form results describe (Section 1.3: fixed
programs evaluate in PTIME data complexity, so the per-tuple work should be
a constant decided once per rule, not re-derived per tuple).

This module lowers each (rule, delta slot, join order) triple into a chain
of specialized Python closures -- one step per positive body atom plus a
leaf -- with the decisions baked in at lowering time:

* the join order (the PR 5 greedy planner's, verbatim -- see
  :func:`plan_order`, shared with the interpreter so both paths enumerate
  candidates identically);
* the access path per step (index probe against the
  :class:`~repro.indexing.pool.JoinIndexPool` vs. renamed scan list), with
  probe results memoized per relation content version;
* the pinned-constant filter, when :class:`EngineOptions` enables it;
* the delta-restriction slot of the semi-naive rounds;
* theory-specific satisfiability/canonicalization fast paths: a candidate
  tuple whose constraint is a conjunction of ``var = const`` pins (the
  overwhelmingly common shape for the dense-order and equality theories --
  every ``add_point`` tuple) extends the join by a dictionary merge instead
  of a solver call, and a completed all-pins match emits the head tuple
  directly instead of running quantifier elimination.

**Equivalence contract.**  The compiled path must produce fixpoints
element-for-element identical to the interpreter, and must consume the
execution supervisor's budget at identical tick counts.  Both follow from
one invariant: the compiled chain enumerates exactly the same candidate
entries in the same order as the interpreted join (same plan, same probe
decisions, same scan lists) and derives the same conjunctions -- the fast
paths only replace *how* a decision is computed, never *which* candidates
are visited:

* a conjunction of consistent ``var = const`` pins over the dense-order or
  equality theory is satisfiable iff no variable is pinned to two distinct
  constants -- exactly the dictionary-merge check (both theories are
  pointwise: a ground pin set denotes the single point it spells);
* eliminating the dropped variables from such a conjunction yields exactly
  one conjunction, equivalent to the head variables' pins; the engine's
  dedup (:meth:`GeneralizedRelation.add_canonical`) canonicalizes both
  spellings to the same stored form, because both theories' canonical forms
  are determined by the solution set alone.

Compiled programs are cached in the module-level :data:`PLAN_CACHE`, keyed
by ``(program fingerprint, schema, EngineOptions, theory identity)`` --
repeated ``evaluate()`` calls (the prepared-query pattern) skip planning
and lowering entirely.  A fingerprint re-fetched under *different* options
invalidates the stale entry: closures specialized for one flag set must
never serve another (the stale-closure hazard).
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.equality import EqualityTheory
from repro.core.calculus import relation_complement_dnf
from repro.core.generalized import GeneralizedTuple
from repro.logic.syntax import Atom, RelationAtom
from repro.runtime.budget import tick
from repro.runtime.chaos import unwrap_theory

if TYPE_CHECKING:  # imported for annotations only: datalog imports us
    from repro.constraints.base import ConstraintTheory
    from repro.core.datalog import EngineOptions, EvaluationStats, Rule
    from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation

#: entry kinds decided once per (tuple, body atom) pair at lowering time
POINT = 0  #: every atom is a ``var = const`` pin (pointwise theories only)
GENERAL = 1  #: anything else -- the generic solver path handles it

#: a classified join candidate: (renamed atoms, pin map, kind)
EntryRecord = tuple[tuple[Atom, ...], dict[str, Any], int]

#: sentinel distinguishing "handle not yet resolved" from "pool declined"
#: (a declined resolution is cached as None so it is not retried per entry)
_UNRESOLVED = object()


# --------------------------------------------------------------------- planner
def plan_order(
    arg_lists: Sequence[Sequence[str]],
    sizes: Sequence[int],
    pinned: set[str],
) -> list[int]:
    """The PR 5 greedy selectivity order, shared by both evaluation paths.

    Descending connectivity with the already-bound variable set, ties broken
    toward the smaller source and then the original position.  The compiled
    path re-plans per (rule, round) exactly like the interpreter -- sizes
    change between rounds -- so both paths enumerate identical candidate
    sequences (the equivalence contract of this module).
    """
    n = len(arg_lists)
    bound = set(pinned)
    remaining = list(range(n))
    order: list[int] = []
    while remaining:
        best = min(
            remaining,
            key=lambda i: (
                -sum(1 for v in set(arg_lists[i]) if v in bound),
                sizes[i],
                i,
            ),
        )
        remaining.remove(best)
        order.append(best)
        bound.update(arg_lists[best])
    return order


# ------------------------------------------------------------------------- IR
@dataclass(frozen=True)
class StepIR:
    """One lowered join step (a positive body atom in plan order)."""

    slot: int  #: position in the lowered chain
    position: int  #: original index among the rule's positive atoms
    atom: str  #: the body atom, e.g. ``T(x, z)``
    source: str  #: ``"delta"`` or ``"relation"``
    access: str  #: ``"probe-or-scan"`` or ``"scan"``
    bound_before: tuple[str, ...]  #: variables bound when this step runs


@dataclass(frozen=True)
class RuleIR:
    """The lowered form of one (rule, delta slot, join order) variant."""

    rule: str
    order: tuple[int, ...]
    delta_position: int | None
    root: str  #: ``"point pins={...}"`` or ``"general (k constraints)"``
    steps: tuple[StepIR, ...]
    leaf: str  #: ``"point-emit (...)"`` or ``"eliminate drop=(...)"``
    negated: tuple[str, ...]

    def render(self) -> str:
        """Deterministic multi-line pretty print (the shell's ``.plan``)."""
        lines = [f"rule: {self.rule}"]
        delta = (
            "none (full sources)"
            if self.delta_position is None
            else f"positive atom #{self.delta_position}"
        )
        lines.append(f"delta slot: {delta}")
        lines.append(f"order: {list(self.order)}")
        lines.append(f"root: {self.root}")
        for step in self.steps:
            bound = ", ".join(step.bound_before) or "-"
            lines.append(
                f"  step {step.slot}: {step.atom}  "
                f"[{step.source}, {step.access}; bound: {bound}]"
            )
        for name in self.negated:
            lines.append(f"  negation: complement({name}) expanded at the leaf")
        lines.append(f"leaf: {self.leaf}")
        return "\n".join(lines)


# ------------------------------------------------------------- classification
def _pointwise(theory: "ConstraintTheory") -> bool:
    """Whether ground pin conjunctions denote single points exactly.

    Only the dense-order and equality theories qualify: their canonical
    forms are determined by the solution set, and a consistent set of
    ``var = const`` pins is satisfiable by the point it spells.  The
    boolean and real-polynomial theories always take the generic path.
    """
    return isinstance(unwrap_theory(theory), (DenseOrderTheory, EqualityTheory))


def _classify(
    renamed: tuple[Atom, ...], pins: dict[str, Any], pointwise: bool
) -> int:
    """POINT iff every atom contributed a distinct ``var = const`` pin.

    ``pinned_constants`` only collects from pin-shaped atoms, so a pin
    count matching the atom count proves every atom is a pin of its own
    variable; anything else (intervals, var-var links, duplicate pins)
    conservatively stays GENERAL.
    """
    if pointwise and len(pins) == len(renamed):
        return POINT
    return GENERAL


# ----------------------------------------------------------- shared utilities
def _expand_negations(
    negated_dnfs: list[list[tuple[Atom, ...]]]
) -> Iterator[tuple[Atom, ...]]:
    """Cartesian expansion of the negated atoms' complement DNFs.

    Verbatim the interpreter's expansion so compiled and interpreted leaf
    firings see identical branch sequences (and identical counters).
    """
    if not negated_dnfs:
        yield ()
        return
    for combo in itertools.product(*negated_dnfs):
        merged: tuple[Atom, ...] = ()
        for part in combo:
            merged = merged + part
        yield merged


def _complement_dnf(
    atom: RelationAtom,
    relation: "GeneralizedRelation",
    caches: Any,
    stats: "EvaluationStats",
    theory: "ConstraintTheory",
) -> list[tuple[Atom, ...]]:
    """Complement DNF of a negated atom via the shared per-version cache.

    Same cache dict and same keys as ``DatalogProgram._complement``, so the
    parallel driver's pre-warm pass covers the compiled workers too.
    """
    if caches.complement is None:
        return relation_complement_dnf(relation, atom.args, theory)
    key = (atom.name, atom.args, relation.version)
    cached = caches.complement.get(key)
    if cached is None:
        cached = relation_complement_dnf(relation, atom.args, theory)
        caches.complement[key] = cached
        stats.complement_cache_misses += 1
    else:
        stats.complement_cache_hits += 1
    return cached


# ------------------------------------------------------------- firing state
class _FiringState:
    """Mutable per-firing context threaded through a variant's closures."""

    __slots__ = (
        "stats",
        "caches",
        "pool",
        "results",
        "relations",
        "delta_lists",
        "scan_lists",
        "negated_dnfs",
        "probe_handles",
    )

    def __init__(
        self,
        stats: "EvaluationStats",
        caches: Any,
        relations: list,
        delta_lists: list,
        negated_dnfs: list,
    ) -> None:
        self.stats = stats
        self.caches = caches
        self.pool = caches.pool
        self.results: list[tuple[str, GeneralizedTuple]] = []
        self.relations = relations  # per slot: GeneralizedRelation | None
        self.delta_lists = delta_lists  # per slot: list of delta tuples | None
        self.scan_lists: list[list[EntryRecord] | None] = [None] * len(relations)
        self.negated_dnfs = negated_dnfs
        #: (slot, attribute position) -> resolved IndexProbeHandle | None,
        #: so a join step pays the pool's dict lookup once per firing
        #: instead of once per candidate entry
        self.probe_handles: dict[tuple[int, int], Any] = {}


# ------------------------------------------------------------- compiled rule
class CompiledRule:
    """One rule's lowered variants, keyed by (delta slot, join order).

    Lowering happens lazily on the first firing that needs a variant (the
    planner's order depends on the round's relation sizes, so the variant
    set is discovered during evaluation) and is cached for the lifetime of
    the compiled program -- across rounds *and* across ``evaluate()`` calls
    when the :data:`PLAN_CACHE` serves the program again.
    """

    def __init__(
        self,
        rule: "Rule",
        theory: "ConstraintTheory",
        options: "EngineOptions",
    ) -> None:
        self.rule = rule
        self.theory = theory
        self.options = options
        self.positives: tuple[RelationAtom, ...] = tuple(rule.positive_atoms)
        self.negated: tuple[RelationAtom, ...] = tuple(rule.negative_atoms)
        self.constraints: tuple[Atom, ...] = tuple(rule.constraint_atoms)
        self.head_name: str = rule.head.name
        self.head_vars: tuple[str, ...] = tuple(rule.head.args)
        body_vars = rule.variables()
        self.drop: tuple[str, ...] = tuple(
            v for v in body_vars if v not in self.head_vars
        )
        self.pointwise = _pointwise(theory)
        self.root_pin_map: dict[str, Any] = dict(
            theory.pinned_constants(self.constraints)
        )
        self.root_kind = _classify(
            self.constraints, self.root_pin_map, self.pointwise
        )
        #: shared, never-mutated root dicts (children merge into fresh dicts)
        self._root_fpins: dict[str, Any] | None = (
            self.root_pin_map if options.pin_filter else None
        )
        self._root_ppins: dict[str, Any] | None = (
            self.root_pin_map if self.root_kind == POINT else None
        )
        self._variants: dict[tuple[int | None, tuple[int, ...]], Any] = {}
        self._irs: dict[tuple[int | None, tuple[int, ...]], RuleIR] = {}
        self._lock = threading.Lock()
        #: memoized root satisfiability (generic roots re-check per firing
        #: in the interpreter; the answer is a pure function of the rule)
        self._root_ctx: Any = None
        self._root_sat: bool | None = None

    def __reduce__(self) -> tuple[Any, ...]:
        raise TypeError(
            "CompiledRule is process-local (it holds locks and lowered "
            "closures); ship the program fingerprint and re-lower in the "
            "worker instead (see repro.runtime.cluster)"
        )

    # ------------------------------------------------------------ entry cache
    def _record(
        self, item: GeneralizedTuple, args: tuple[str, ...]
    ) -> EntryRecord:
        renamed = tuple(item.rename(args).atoms)
        pins = dict(self.theory.pinned_constants(renamed))
        return (renamed, pins, _classify(renamed, pins, self.pointwise))

    def _records_for(
        self,
        atom: RelationAtom,
        source: Iterable[GeneralizedTuple],
        caches: Any,
        stats: "EvaluationStats",
    ) -> list[EntryRecord]:
        """Classified entry records for a tuple source, cached per tuple.

        Mirrors the interpreter's rename cache (same ablation flag, same
        hit/miss counters): the cached entry keeps the tuple reference so
        ``id`` stays a valid key, and records are pure functions of the
        (tuple, target args) pair.
        """
        if caches.centries is None:
            return [self._record(t, atom.args) for t in source]
        per_atom = caches.centries.setdefault((atom.name, atom.args), {})
        records: list[EntryRecord] = []
        for t in source:
            entry = per_atom.get(id(t))
            if entry is None:
                record = self._record(t, atom.args)
                per_atom[id(t)] = (t, record)
                stats.rename_cache_misses += 1
            else:
                record = entry[1]
                stats.rename_cache_hits += 1
            records.append(record)
        return records

    # ---------------------------------------------------------------- firing
    def fire(
        self,
        world: "GeneralizedDatabase",
        stats: "EvaluationStats",
        caches: Any,
        delta: dict[str, list[GeneralizedTuple]] | None,
        delta_position: int | None,
    ) -> list[tuple[str, GeneralizedTuple]]:
        positives = self.positives
        relations: list[Any] = []
        sizes: list[int] = []
        delta_source: list[GeneralizedTuple] = []
        for index, atom in enumerate(positives):
            relation = world.relation(atom.name)
            if delta is not None and index == delta_position:
                delta_source = delta.get(atom.name, [])
                relations.append(None)
                sizes.append(len(delta_source))
            else:
                relations.append(relation)
                sizes.append(len(relation))
        n = len(positives)
        if self.options.join_planner and n > 1:
            stats.plans_built += 1
            order = plan_order(
                [a.args for a in positives], sizes, set(self.root_pin_map)
            )
            if order != sorted(order):
                stats.plan_reorders += 1
        else:
            order = list(range(n))
        variant = self._variant(
            delta_position if delta is not None else None, tuple(order), stats
        )
        negated_dnfs = [
            _complement_dnf(atom, world.relation(atom.name), caches, stats, self.theory)
            for atom in self.negated
        ]
        state = _FiringState(
            stats,
            caches,
            [relations[i] for i in order],
            [
                delta_source if relations[i] is None and delta is not None else None
                for i in order
            ],
            negated_dnfs,
        )
        stats.compiled_firings += 1
        variant(state)
        return state.results

    def _variant(
        self,
        delta_position: int | None,
        order: tuple[int, ...],
        stats: "EvaluationStats",
    ) -> Callable[[_FiringState], None]:
        key = (delta_position, order)
        variant = self._variants.get(key)
        if variant is not None:
            return variant
        with self._lock:
            variant = self._variants.get(key)
            if variant is None:
                started = perf_counter()
                variant, ir = self._lower(delta_position, order)
                self._variants[key] = variant
                self._irs[key] = ir
                stats.compiled_rules += 1
                stats.compile_seconds += perf_counter() - started
        return variant

    def ir(
        self, delta_position: int | None, order: tuple[int, ...]
    ) -> RuleIR:
        """The lowered IR for a variant (lowering it on demand)."""
        key = (delta_position, order)
        if key not in self._irs:
            with self._lock:
                if key not in self._irs:
                    variant, ir = self._lower(delta_position, order)
                    self._variants[key] = variant
                    self._irs[key] = ir
        return self._irs[key]

    # -------------------------------------------------------------- lowering
    def _lower(
        self, delta_position: int | None, order: tuple[int, ...]
    ) -> tuple[Callable[[_FiringState], None], RuleIR]:
        """Emit the closure chain for one (delta slot, join order) variant.

        One closure per positive atom plus a leaf, composed back-to-front;
        every per-candidate decision that depends only on (rule, options,
        plan) is resolved here, once.
        """
        theory = self.theory
        options = self.options
        incremental = options.incremental_join
        plan_atoms = [self.positives[i] for i in order]
        constraints = self.constraints
        head_name = self.head_name
        head_vars = self.head_vars
        drop = self.drop
        make_equality = theory.equality
        make_constant = theory.constant

        # ------------------------------------------------------------- leaf
        point_leaf = (
            self.pointwise and not self.negated
        )  # negation needs the generic complement expansion

        if self.negated:

            def leaf(
                state: _FiringState,
                atoms: tuple[Atom, ...],
                ppins: dict[str, Any] | None,
                solver: Any,
                fpins: dict[str, Any] | None,
            ) -> None:
                stats = state.stats
                results = state.results
                for negated in _expand_negations(state.negated_dnfs):
                    stats.rule_firings += 1
                    conjunction = atoms + negated
                    if negated:
                        stats.sat_checks += 1
                        if not theory.is_satisfiable(conjunction):
                            stats.join_prunes += 1
                            continue
                    for eliminated in theory.eliminate(conjunction, drop):
                        stats.tuples_derived += 1
                        results.append(
                            (head_name, GeneralizedTuple(head_vars, eliminated))
                        )

        else:

            def leaf(
                state: _FiringState,
                atoms: tuple[Atom, ...],
                ppins: dict[str, Any] | None,
                solver: Any,
                fpins: dict[str, Any] | None,
            ) -> None:
                stats = state.stats
                stats.rule_firings += 1
                if ppins is not None and point_leaf:
                    # all-pins match: elimination of the dropped variables
                    # from a consistent ground pin set is exactly the head
                    # variables' pins (one conjunction -- see module doc);
                    # add_canonical folds both spellings to the same form
                    stats.fastpath_leaves += 1
                    stats.tuples_derived += 1
                    emitted = tuple(
                        make_equality(v, make_constant(ppins[v]))
                        for v in head_vars
                        if v in ppins
                    )
                    state.results.append(
                        (head_name, GeneralizedTuple(head_vars, emitted))
                    )
                    return
                for eliminated in theory.eliminate(atoms, drop):
                    stats.tuples_derived += 1
                    state.results.append(
                        (head_name, GeneralizedTuple(head_vars, eliminated))
                    )

        # ------------------------------------------------------------- steps
        def make_step(
            slot: int, next_call: Callable[..., None]
        ) -> Callable[..., None]:
            atom = plan_atoms[slot]
            args = atom.args
            nargs = tuple(enumerate(args))
            scan_key = (atom.name, args)
            compiled_rule = self

            def probe_records(
                state: _FiringState,
                ppins: dict[str, Any] | None,
                solver: Any,
                fpins: dict[str, Any] | None,
            ) -> list[EntryRecord] | None:
                """Index-backed candidates, or None to scan.

                Decision-for-decision the interpreter's ``probe_entries``:
                an exact pin wins, else the incremental context's interval
                bounds; in point mode the context's bounds *are* the pins
                (a ground closure bounds a pinned variable to its constant
                and nothing else), so the dict lookup replaces the solver
                query without changing the outcome.
                """
                relation = state.relations[slot]
                if relation is None or not relation:
                    return None
                stats = state.stats
                best = None
                if fpins is not None:
                    for position, var in nargs:
                        value = fpins.get(var)
                        if isinstance(value, Fraction):
                            best = (position, value, value)
                            break
                if best is None and incremental:
                    if ppins is not None:
                        if fpins is None:
                            for position, var in nargs:
                                value = ppins.get(var)
                                if isinstance(value, Fraction):
                                    best = (position, value, value)
                                    break
                        # fpins already covered the same pins: nothing new
                    elif solver is not None:
                        for position, var in nargs:
                            bounds = theory.conjunction_bounds(solver, var)
                            if bounds is not None:
                                best = (position, bounds[0], bounds[1])
                                break
                if best is None:
                    return None
                position, low, high = best
                cprobe = state.caches.cprobe
                pkey = (atom.name, args, position, relation.version, low, high)
                hit = cprobe.get(pkey) if cprobe is not None else None
                if hit is not None:
                    records, n_candidates, n_relation = hit
                    if records is None:
                        return None
                    stats.index_probes += 1
                    stats.index_candidates += n_candidates
                    stats.index_scan_avoided += n_relation - n_candidates
                    return records
                hkey = (slot, position)
                handle = state.probe_handles.get(hkey, _UNRESOLVED)
                if handle is _UNRESOLVED:
                    handle = state.pool.handle(
                        relation, relation.variables[position]
                    )
                    state.probe_handles[hkey] = handle
                candidates = None if handle is None else handle.probe(low, high)
                if candidates is None:
                    if cprobe is not None:
                        cprobe[pkey] = (None, 0, 0)
                    return None
                records = compiled_rule._records_for(
                    atom, candidates, state.caches, stats
                )
                if cprobe is not None:
                    cprobe[pkey] = (records, len(candidates), len(relation))
                stats.index_probes += 1
                stats.index_candidates += len(candidates)
                stats.index_scan_avoided += len(relation) - len(candidates)
                return records

            def scan_records(state: _FiringState) -> list[EntryRecord]:
                records = state.scan_lists[slot]
                if records is not None:
                    return records
                delta_list = state.delta_lists[slot]
                if delta_list is not None:
                    records = compiled_rule._records_for(
                        atom, delta_list, state.caches, state.stats
                    )
                else:
                    relation = state.relations[slot]
                    cscan = state.caches.cscan
                    cached = (
                        cscan.get(scan_key) if cscan is not None else None
                    )
                    if cached is not None and cached[0] == relation.version:
                        records = cached[1]
                    else:
                        records = compiled_rule._records_for(
                            atom, relation, state.caches, state.stats
                        )
                        if cscan is not None:
                            cscan[scan_key] = (relation.version, records)
                state.scan_lists[slot] = records
                return records

            def step(
                state: _FiringState,
                atoms: tuple[Atom, ...],
                ppins: dict[str, Any] | None,
                solver: Any,
                fpins: dict[str, Any] | None,
            ) -> None:
                stats = state.stats
                entries = None
                if state.pool is not None:
                    entries = probe_records(state, ppins, solver, fpins)
                if entries is None:
                    entries = scan_records(state)
                for renamed, cpins, kind in entries:
                    stats.join_steps += 1
                    tick("join")
                    if fpins is not None and cpins:
                        conflict = False
                        for var, value in cpins.items():
                            if fpins.get(var, value) != value:
                                conflict = True
                                break
                        if conflict:
                            stats.pin_prunes += 1
                            stats.join_prunes += 1
                            continue
                        child_fpins = {**fpins, **cpins}
                    else:
                        child_fpins = fpins
                    if ppins is not None and kind == POINT:
                        # pointwise extension: satisfiability of a ground
                        # pin set is pin consistency, so the solver is
                        # skipped outright -- same accept/reject outcome,
                        # same candidate enumeration, cheaper decision
                        if child_fpins is not None:
                            child_ppins = child_fpins
                        else:
                            consistent = True
                            for var, value in cpins.items():
                                if ppins.get(var, value) != value:
                                    consistent = False
                                    break
                            if not consistent:
                                stats.join_prunes += 1
                                continue
                            child_ppins = {**ppins, **cpins} if cpins else ppins
                        next_call(
                            state, atoms + renamed, child_ppins, None, child_fpins
                        )
                        continue
                    if incremental:
                        if solver is None:
                            # leaving point mode: build the context for the
                            # concatenation directly (equivalent to extending
                            # a context over ``atoms`` -- the incremental
                            # closure matches the from-scratch one)
                            child = theory.begin_conjunction(atoms + renamed)
                        else:
                            child = theory.extend_conjunction(solver, renamed)
                        stats.closure_extensions += 1
                        if not child.satisfiable:
                            stats.join_prunes += 1
                            continue
                        next_call(state, child.atoms, None, child, child_fpins)
                    else:
                        candidate = atoms + renamed
                        stats.sat_checks += 1
                        if not theory.is_satisfiable(candidate):
                            stats.join_prunes += 1
                            continue
                        next_call(state, candidate, None, None, child_fpins)

            return step

        chain: Callable[..., None] = leaf
        for slot in range(len(plan_atoms) - 1, -1, -1):
            chain = make_step(slot, chain)

        # -------------------------------------------------------------- root
        root_fpins = self._root_fpins
        root_ppins = self._root_ppins
        root_point = self.root_kind == POINT

        def run(state: _FiringState) -> None:
            state.stats.sat_checks += 1
            if root_point:
                chain(state, constraints, root_ppins, None, root_fpins)
                return
            if incremental:
                ctx = self._root_ctx
                if ctx is None:
                    ctx = theory.begin_conjunction(constraints)
                    self._root_ctx = ctx
                if ctx.satisfiable:
                    chain(state, constraints, None, ctx, root_fpins)
            else:
                sat = self._root_sat
                if sat is None:
                    sat = theory.is_satisfiable(constraints)
                    self._root_sat = sat
                if sat:
                    chain(state, constraints, None, None, root_fpins)

        # ----------------------------------------------------------------- IR
        bound: set[str] = set(self.root_pin_map)
        steps = []
        for slot, atom in enumerate(plan_atoms):
            position = order[slot]
            is_delta = delta_position is not None and position == delta_position
            probeable = (
                not is_delta
                and options.index_probes
                and isinstance(unwrap_theory(theory), DenseOrderTheory)
            )
            steps.append(
                StepIR(
                    slot=slot,
                    position=position,
                    atom=str(atom),
                    source="delta" if is_delta else "relation",
                    access="probe-or-scan" if probeable else "scan",
                    bound_before=tuple(sorted(bound)),
                )
            )
            bound.update(atom.args)
        if root_point:
            pins = ", ".join(
                f"{k}={v}" for k, v in sorted(self.root_pin_map.items())
            )
            root_desc = f"point pins={{{pins}}}"
        else:
            root_desc = f"general ({len(constraints)} constraint atoms)"
        if point_leaf:
            leaf_desc = (
                f"point-emit {tuple(head_vars)} when all pins ground, "
                f"else eliminate drop={tuple(drop)}"
            )
        else:
            leaf_desc = f"eliminate drop={tuple(drop)}"
        ir = RuleIR(
            rule=str(self.rule),
            order=order,
            delta_position=delta_position,
            root=root_desc,
            steps=tuple(steps),
            leaf=leaf_desc,
            negated=tuple(a.name for a in self.negated),
        )
        return run, ir


# ---------------------------------------------------------- compiled program
class CompiledProgram:
    """All of a program's compiled rules, plus the lookup the engine uses.

    Rules are keyed by their string form (the same spelling the cache
    fingerprint uses): a *different* ``DatalogProgram`` object with the
    same rules -- the prepared-query pattern of re-parsing and re-running
    -- still resolves to the already-lowered closures.  An ``id``-keyed
    side table makes the per-firing lookup a dict hit.
    """

    def __init__(self, program: Any) -> None:
        self.theory = program.theory
        self.options = program.options
        self.rules = list(program.rules)
        self.arities = dict(program.arities)
        self._by_str: dict[str, CompiledRule] = {}
        for rule in self.rules:
            text = str(rule)
            if text not in self._by_str:
                self._by_str[text] = CompiledRule(rule, self.theory, self.options)
        self._by_id: dict[int, CompiledRule] = {
            id(rule): self._by_str[str(rule)] for rule in self.rules
        }

        #: foreign rule objects registered in _by_id, kept alive so their
        #: ids stay valid keys
        self._pinned: list[Any] = []

    def __reduce__(self) -> tuple[Any, ...]:
        raise TypeError(
            "CompiledProgram is process-local (its rules hold locks and "
            "lowered closures); shard tasks carry the PlanCache program "
            "fingerprint and workers re-lower locally "
            "(see repro.runtime.cluster)"
        )

    def compiled_for(self, rule: Any) -> CompiledRule | None:
        compiled = self._by_id.get(id(rule))
        if compiled is None:
            compiled = self._by_str.get(str(rule))
            if compiled is not None:
                self._pinned.append(rule)
                self._by_id[id(rule)] = compiled
        return compiled

    def fire(
        self,
        rule: Any,
        world: "GeneralizedDatabase",
        stats: "EvaluationStats",
        caches: Any,
        delta: dict[str, list[GeneralizedTuple]] | None,
        delta_position: int | None,
    ) -> list[tuple[str, GeneralizedTuple]] | None:
        """Compiled firing, or None when the rule is unknown (caller
        falls back to the interpreter -- defensive, not expected)."""
        compiled = self.compiled_for(rule)
        if compiled is None:
            return None
        return compiled.fire(world, stats, caches, delta, delta_position)

    def variants_lowered(self) -> int:
        return sum(len(r._variants) for r in self._by_str.values())


# ------------------------------------------------------------------ the cache
def program_fingerprint(rules: Sequence[Any]) -> tuple[str, ...]:
    """The cache's program identity: the rules' deterministic string forms."""
    return tuple(str(rule) for rule in rules)


class PlanCache:
    """Bounded LRU of :class:`CompiledProgram` keyed by program identity.

    The key is ``(fingerprint, schema, theory identity, options)``:

    * the *fingerprint* (rule strings) and *schema* (predicate arities) pin
      the logical program -- editing a rule changes its string, so a
      recompile is forced;
    * the *theory identity* (``id``) pins the solver instance -- compiled
      closures capture the theory object (its caches, its chaos wrapper),
      so a different instance must never share closures; every cached
      entry holds a strong reference to its theory, keeping the id valid;
    * the *options* signature pins the specialization -- closures bake in
      ``pin_filter``/``incremental_join``/``index_probes`` decisions, so a
      fingerprint re-fetched under different options *invalidates* the
      stale entry (counted, surfaced through ``EvaluationStats``).

    Adorned programs built by the magic-set query path fingerprint like
    any other program: the rewrite puts binding *values* in the seeded
    data rather than the rule text, so every query with the same
    (predicate, adornment, semantics) shape re-fetches one cached entry
    -- ``T(0, y)`` then ``T(3, y)`` is a warm hit, not a recompile
    (``repro.core.query.Engine`` additionally memoizes the constructed
    ``DatalogProgram`` per shape).
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CompiledProgram] = OrderedDict()
        self._options_seen: dict[tuple, tuple] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def fetch(self, program: Any) -> tuple[CompiledProgram, bool, bool]:
        """(compiled, was_hit, invalidated_stale_entry) for a program."""
        fingerprint = program_fingerprint(program.rules)
        schema = tuple(sorted(program.arities.items()))
        options_sig = tuple(sorted(program.options.as_dict().items()))
        base = (fingerprint, schema, id(program.theory))
        key = base + (options_sig,)
        with self._lock:
            seen = self._options_seen.get(base)
            invalidated = seen is not None and seen != options_sig
            if invalidated:
                self.invalidations += 1
                self._entries.pop(base + (seen,), None)
            self._options_seen[base] = options_sig
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry, True, invalidated
            self.misses += 1
        compiled = CompiledProgram(program)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing, False, invalidated
            self._entries[key] = compiled
            while len(self._entries) > self.maxsize:
                evicted, _ = self._entries.popitem(last=False)
                self._options_seen.pop(evicted[:3], None)
        return compiled, False, invalidated

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._options_seen.clear()
            self.hits = 0
            self.misses = 0
            self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }


#: the process-wide plan cache (the server's prepared-query store rides on
#: this); tests and the cold-path microbench reset it via ``clear()``
PLAN_CACHE = PlanCache()


# ------------------------------------------------------------ plan rendering
def render_plan(
    program: Any, rule: Any, world: "GeneralizedDatabase" | None = None
) -> str:
    """Pretty-print the lowered IR for ``rule`` under ``program``'s options.

    Uses the live database's relation sizes when given (the planner's
    deterministic tie-break order depends on them); unknown relations count
    as empty, matching a first evaluation round.
    """
    compiled = CompiledRule(rule, program.theory, program.options)
    positives = tuple(rule.positive_atoms)
    sizes = []
    for atom in positives:
        if world is not None and atom.name in world:
            sizes.append(len(world.relation(atom.name)))
        else:
            sizes.append(0)
    if program.options.join_planner and len(positives) > 1:
        order = tuple(
            plan_order(
                [a.args for a in positives], sizes, set(compiled.root_pin_map)
            )
        )
    else:
        order = tuple(range(len(positives)))
    ir = compiled.ir(None, order)
    lines = [ir.render()]
    lines.append(
        "sizes: "
        + (
            ", ".join(
                f"{atom.name}={size}" for atom, size in zip(positives, sizes)
            )
            or "-"
        )
    )
    return "\n".join(lines)
