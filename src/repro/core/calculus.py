"""Bottom-up, closed-form evaluation of relational calculus + constraints.

This is the Figure 1 pipeline: a query program phi with database atoms is
interpreted by treating each atom R(z1..zk) as a shorthand for the input
relation's DNF formula (Remark D), and the resulting constraint-theory
formula is evaluated to a *generalized relation* -- quantifiers are
eliminated by the theory, so the output is closed form (Definitions 1.6-1.8).

Evaluation is structural recursion producing DNFs of constraint atoms:

* a constraint atom is a one-conjunct DNF;
* a database atom contributes one conjunct per input generalized tuple
  (variables renamed to the atom's arguments);
* a negated database atom contributes the *complement* of the input
  relation, computed by De Morgan expansion with satisfiability pruning and
  canonical deduplication (polynomially many cells for a fixed arity);
* conjunction distributes (with satisfiability pruning), disjunction unions;
* ``exists`` calls the theory's quantifier elimination per conjunct;
* ``forall`` is rewritten as not-exists-not during the NNF pass, so general
  negation only ever applies to database atoms and theory atoms.

For a fixed query the whole computation is polynomial in the database size,
which is the data-complexity discipline of Definition 1.13 (the sharper
LOGSPACE bound of Theorem 3.14 is realized by the verbatim EVAL-phi
implementation in :mod:`repro.core.rconfig`).
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.base import Conjunction, ConstraintTheory
from repro.core.generalized import (
    GeneralizedDatabase,
    GeneralizedRelation,
)
from repro.errors import ArityError, EvaluationError
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    free_variables,
)
from repro.logic.transform import to_nnf

Dnf = list[Conjunction]


def evaluate_calculus(
    query: Formula,
    database: GeneralizedDatabase,
    output: Sequence[str] | None = None,
    name: str = "result",
) -> GeneralizedRelation:
    """Evaluate a relational calculus + constraints query program.

    ``output`` fixes the result relation's variable order; it must equal the
    query's free variables as a set (default: sorted free variables).
    Returns a generalized relation -- the closed-form requirement of the CQL
    design principles.
    """
    free = free_variables(query)
    if output is None:
        output = tuple(sorted(free))
    if set(output) != set(free):
        raise EvaluationError(
            f"output variables {tuple(output)} differ from the query's free "
            f"variables {tuple(sorted(free))}"
        )
    _validate_arities(query, database)
    theory = database.theory
    nnf = to_nnf(query, theory.negate_atom)
    dnf = _eval(nnf, database, theory)
    result = GeneralizedRelation(name, tuple(output), theory)
    for conjunction in dnf:
        result.add_tuple(conjunction)
    return result


def _validate_arities(query: Formula, database: GeneralizedDatabase) -> None:
    from repro.logic.syntax import all_relation_atoms

    for atom in all_relation_atoms(query):
        relation = database.relation(atom.name)
        if relation.arity != len(atom.args):
            raise ArityError(
                f"{atom.name} has arity {relation.arity}, used with "
                f"{len(atom.args)} arguments"
            )


def _eval(
    formula: Formula, database: GeneralizedDatabase, theory: ConstraintTheory
) -> Dnf:
    if isinstance(formula, RelationAtom):
        relation = database.relation(formula.name)
        return [
            tuple(t.rename(formula.args).atoms) for t in relation
        ]
    if isinstance(formula, Atom):
        canonical = theory.canonicalize((formula,))
        return [] if canonical is None else [canonical]
    if isinstance(formula, Not):
        child = formula.child
        if not isinstance(child, RelationAtom):
            raise EvaluationError(
                f"negation of {child} survived NNF; this is a bug"
            )
        return relation_complement_dnf(
            database.relation(child.name), child.args, theory
        )
    if isinstance(formula, And):
        result: Dnf = [()]
        for part in formula.children:
            part_dnf = _eval(part, database, theory)
            result = conjoin_dnf(result, part_dnf, theory)
            if not result:
                return []
        return result
    if isinstance(formula, Or):
        merged: Dnf = []
        seen: set[frozenset[Atom]] = set()
        for part in formula.children:
            for conjunction in _eval(part, database, theory):
                key = frozenset(conjunction)
                if key not in seen:
                    seen.add(key)
                    merged.append(conjunction)
        return merged
    if isinstance(formula, Exists):
        inner = _eval(formula.child, database, theory)
        result = []
        seen = set()
        for conjunction in inner:
            for eliminated in theory.eliminate(conjunction, formula.variables_bound):
                canonical = theory.canonicalize(eliminated)
                if canonical is None:
                    continue
                key = frozenset(canonical)
                if key not in seen:
                    seen.add(key)
                    result.append(canonical)
        return result
    if isinstance(formula, ForAll):
        # forall v . psi  ==  not exists v . not psi.  The inner complement
        # works on the evaluated DNF of psi.
        inner = _eval(formula.child, database, theory)
        complemented = complement_dnf(inner, theory)
        eliminated: Dnf = []
        seen = set()
        for conjunction in complemented:
            for reduced in theory.eliminate(conjunction, formula.variables_bound):
                canonical = theory.canonicalize(reduced)
                if canonical is None:
                    continue
                key = frozenset(canonical)
                if key not in seen:
                    seen.add(key)
                    eliminated.append(canonical)
        return complement_dnf(eliminated, theory)
    raise EvaluationError(f"cannot evaluate {formula!r}")


def conjoin_dnf(left: Dnf, right: Dnf, theory: ConstraintTheory) -> Dnf:
    """Distribute a conjunction of two DNFs, pruning unsatisfiable conjuncts."""
    result: Dnf = []
    seen: set[frozenset[Atom]] = set()
    for a in left:
        for b in right:
            merged = a + b
            canonical = theory.canonicalize(merged)
            if canonical is None:
                continue
            key = frozenset(canonical)
            if key not in seen:
                seen.add(key)
                result.append(canonical)
    return result


def relation_complement_dnf(
    relation: GeneralizedRelation,
    args: Sequence[str],
    theory: ConstraintTheory,
) -> Dnf:
    """The complement of a generalized relation, renamed onto ``args``.

    This is the De Morgan expansion a negated database atom denotes; the
    Datalog engine caches the result per (relation name, args, content
    version), so stratified/inflationary rounds stop recomplementing
    relations that did not change.
    """
    renamed = [tuple(t.rename(tuple(args)).atoms) for t in relation]
    return complement_dnf(renamed, theory)


def complement_dnf(dnf: Dnf, theory: ConstraintTheory) -> Dnf:
    """The complement of a DNF of constraint atoms, as a DNF.

    ``not (t1 or ... or tN) = and_i (not t_i)``; each ``not t_i`` is a
    disjunction of negated atoms (theory-level negation), and the big
    conjunction is expanded incrementally with satisfiability pruning and
    canonical deduplication.  For a fixed arity the distinct canonical cells
    are polynomial in the constraint count, so the expansion stays
    polynomial despite the naive 2^N bound.
    """
    from repro.logic.transform import to_dnf

    result: Dnf = [()]
    for conjunction in dnf:
        negated_branches: list[tuple[Atom, ...]] = []
        for atom in conjunction:
            negation = theory.negate_atom(atom)
            for branch in to_dnf(negation):
                negated_branches.append(tuple(branch))  # type: ignore[arg-type]
        if not conjunction:
            return []  # complement of "true" is "false"
        step: Dnf = []
        seen: set[frozenset[Atom]] = set()
        for existing in result:
            for branch in negated_branches:
                canonical = theory.canonicalize(existing + branch)
                if canonical is None:
                    continue
                key = frozenset(canonical)
                if key not in seen:
                    seen.add(key)
                    step.append(canonical)
        result = _prune_subsumed(step)
        if not result:
            return []
    return result


def _prune_subsumed(dnf: Dnf) -> Dnf:
    """Drop conjunctions whose atom set strictly contains another's.

    A superset conjunction denotes a subset of points, so removing it keeps
    the union unchanged; this keeps the complement expansion at the minimal
    covers instead of all 2^N branch combinations.
    """
    keyed = sorted(
        ((frozenset(conj), conj) for conj in dnf), key=lambda kv: len(kv[0])
    )
    kept: list[tuple[frozenset[Atom], tuple[Atom, ...]]] = []
    for key, conj in keyed:
        if any(other <= key for other, _ in kept):
            continue
        kept.append((key, conj))
    return [conj for _, conj in kept]


def evaluate_boolean_query(
    query: Formula, database: GeneralizedDatabase
) -> bool:
    """Evaluate a closed query program to true/false."""
    free = free_variables(query)
    if free:
        raise EvaluationError(
            f"boolean query must be closed; free variables {sorted(free)}"
        )
    result = evaluate_calculus(query, database, output=())
    return len(result) > 0
