"""Generalized derivation trees and parallel evaluation (Section 3.3).

A generalized derivation tree witnesses one way to derive a generalized
Herbrand atom; the paper's parallel evaluation fires every rule in every
round, so the number of rounds needed to derive an atom equals its
minimum-depth generalized derivation tree, and programs with the
*generalized polynomial fringe property* (every derivable atom has a tree
with polynomially many leaves) evaluate in NC (Theorem 3.21) by the
Ullman-van Gelder argument.

This module provides:

* :func:`is_piecewise_linear` -- the syntactic class that always has the
  polynomial fringe property: every rule body contains at most one
  occurrence of a predicate mutually recursive with the head;
* :class:`RoundSynchronousEvaluator` -- naive all-rules-per-round evaluation
  tracking, per derived tuple, the minimum derivation depth and minimum
  fringe (leaf count), i.e. the quantities the theorem bounds;
* :func:`squared_closure_rules` -- the classical recursive-doubling
  transformation of a linear transitive closure, turning O(N) rounds into
  O(log N) rounds, the executable content of the NC claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.constraints.base import ConstraintTheory
from repro.core.datalog import Rule
from repro.core.generalized import (
    GeneralizedDatabase,
    GeneralizedTuple,
)
from repro.errors import EvaluationError
from repro.logic.syntax import Atom, RelationAtom


def mutually_recursive_groups(rules: Sequence[Rule]) -> list[set[str]]:
    """Strongly connected components of the IDB dependency graph."""
    idbs = {rule.head.name for rule in rules}
    graph: dict[str, set[str]] = {name: set() for name in idbs}
    for rule in rules:
        for atom in rule.positive_atoms:
            if atom.name in idbs:
                graph[rule.head.name].add(atom.name)
    # Tarjan SCC
    index_counter = [0]
    stack: list[str] = []
    lowlink: dict[str, int] = {}
    index: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    components: list[set[str]] = []

    def strongconnect(node: str) -> None:
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack[node] = True
        for succ in graph[node]:
            if succ not in index:
                strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif on_stack.get(succ):
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component = set()
            while True:
                member = stack.pop()
                on_stack[member] = False
                component.add(member)
                if member == node:
                    break
            components.append(component)

    for node in graph:
        if node not in index:
            strongconnect(node)
    return components


def is_piecewise_linear(rules: Sequence[Rule]) -> bool:
    """Whether every rule has at most one body atom mutually recursive with
    its head (the Ullman-van Gelder piecewise linear class)."""
    groups = mutually_recursive_groups(rules)
    group_of: dict[str, set[str]] = {}
    for group in groups:
        for name in group:
            group_of[name] = group
    for rule in rules:
        head_group = group_of.get(rule.head.name, {rule.head.name})
        recursive_atoms = [
            atom for atom in rule.positive_atoms if atom.name in head_group
        ]
        # a self-loop-free singleton SCC is not recursive at all
        if rule.head.name not in {
            a.name for r in rules for a in r.positive_atoms
        } and len(head_group) == 1:
            continue
        if len(recursive_atoms) > 1:
            return False
    return True


@dataclass
class DerivationInfo:
    """Minimum derivation-tree statistics for one derived tuple."""

    depth: int
    fringe: int
    round_derived: int


class RoundSynchronousEvaluator:
    """Naive parallel-rounds evaluation with derivation-tree bookkeeping.

    Every round fires every rule against the full current state ("an obvious
    parallel evaluation method tries all possible ways of firing each rule in
    every iteration step").  For each derived generalized tuple we track the
    minimum depth and minimum fringe over its derivations so far; the number
    of rounds to fixpoint equals the maximum minimum-depth, the quantity
    bounded by Theorem 3.21.
    """

    def __init__(self, rules: Sequence[Rule], theory: ConstraintTheory) -> None:
        for rule in rules:
            if rule.has_negation():
                raise EvaluationError("round-synchronous evaluation is for positive programs")
        self.rules = list(rules)
        self.theory = theory

    def evaluate(
        self, database: GeneralizedDatabase, max_rounds: int = 10_000
    ) -> tuple[GeneralizedDatabase, dict[str, dict[frozenset[Atom], DerivationInfo]], int]:
        """Returns (world, per-predicate derivation info, rounds to fixpoint)."""
        world = database.copy()
        idbs = {rule.head.name for rule in self.rules}
        arities: dict[str, int] = {}
        for rule in self.rules:
            arities[rule.head.name] = len(rule.head.args)
        for name in sorted(idbs):
            if name not in world:
                world.create_relation(name, tuple(f"_{i}" for i in range(arities[name])))
        info: dict[str, dict[frozenset[Atom], DerivationInfo]] = {
            name: {} for name in idbs
        }
        rounds = 0
        while True:
            rounds += 1
            if rounds > max_rounds:
                raise EvaluationError("round limit exceeded")
            new_entries: list[tuple[str, GeneralizedTuple, int, int]] = []
            for rule in self.rules:
                new_entries.extend(self._fire(rule, world, info))
            changed = False
            for name, item, depth, fringe in new_entries:
                relation = world.relation(name)
                canonical = self.theory.canonicalize(
                    item.rename(relation.variables).atoms
                )
                if canonical is None:
                    continue
                key = frozenset(canonical)
                existing = info[name].get(key)
                if existing is None:
                    relation.add(item)
                    info[name][key] = DerivationInfo(depth, fringe, rounds)
                    changed = True
                else:
                    if depth < existing.depth:
                        existing.depth = depth
                        changed = True
                    if fringe < existing.fringe:
                        existing.fringe = fringe
                        changed = True
            if not changed:
                return world, info, rounds - 1

    def _fire(
        self,
        rule: Rule,
        world: GeneralizedDatabase,
        info: dict[str, dict[frozenset[Atom], DerivationInfo]],
    ) -> list[tuple[str, GeneralizedTuple, int, int]]:
        import itertools

        idbs = set(info.keys())
        choices = []
        for atom in rule.positive_atoms:
            relation = world.relation(atom.name)
            options = []
            for item in relation:
                key = frozenset(
                    self.theory.canonicalize(item.atoms) or ()
                )
                if atom.name in idbs:
                    meta = info[atom.name].get(key)
                    depth = meta.depth if meta else 1
                    fringe = meta.fringe if meta else 1
                else:
                    depth, fringe = 0, 1
                options.append((atom, item, depth, fringe))
            choices.append(options)
        head_vars = rule.head.args
        body_vars = rule.variables()
        drop = tuple(v for v in body_vars if v not in head_vars)
        results = []
        for combo in itertools.product(*choices):
            atoms: list[Atom] = list(rule.constraint_atoms)
            depth = 0
            fringe = 0
            for atom, item, item_depth, item_fringe in combo:
                atoms.extend(item.rename(atom.args).atoms)
                depth = max(depth, item_depth)
                fringe += item_fringe
            if not self.theory.is_satisfiable(tuple(atoms)):
                continue
            for eliminated in self.theory.eliminate(tuple(atoms), drop):
                results.append(
                    (
                        rule.head.name,
                        GeneralizedTuple(head_vars, eliminated),
                        depth + 1,
                        max(fringe, 1),
                    )
                )
        return results


def squared_closure_rules(
    edge_predicate: str, closure_predicate: str, theory: ConstraintTheory
) -> list[Rule]:
    """Recursive-doubling rules for transitive closure.

    ``T(x,y) :- E(x,y)`` and ``T(x,y) :- T(x,z), T(z,y)``: paths double per
    round, so an N-node chain closes in O(log N) rounds instead of the O(N)
    of the right-linear program -- the measurable content of the NC bound for
    polynomial-fringe programs (the squared program is *not* piecewise
    linear, but its derivation trees are balanced: depth O(log N)).
    """
    return [
        Rule(
            RelationAtom(closure_predicate, ("x", "y")),
            (RelationAtom(edge_predicate, ("x", "y")),),
        ),
        Rule(
            RelationAtom(closure_predicate, ("x", "y")),
            (
                RelationAtom(closure_predicate, ("x", "z")),
                RelationAtom(closure_predicate, ("z", "y")),
            ),
        ),
    ]


def linear_closure_rules(
    edge_predicate: str, closure_predicate: str, theory: ConstraintTheory
) -> list[Rule]:
    """The right-linear transitive closure (piecewise linear, O(N) rounds)."""
    return [
        Rule(
            RelationAtom(closure_predicate, ("x", "y")),
            (RelationAtom(edge_predicate, ("x", "y")),),
        ),
        Rule(
            RelationAtom(closure_predicate, ("x", "y")),
            (
                RelationAtom(closure_predicate, ("x", "z")),
                RelationAtom(edge_predicate, ("z", "y")),
            ),
        ),
    ]
