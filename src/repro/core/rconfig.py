"""r-configurations and the EVAL-phi algorithm (Section 3.1, Lemmas 3.6-3.13).

This is a *verbatim* implementation of the paper's LOGSPACE evaluation
procedure for relational calculus + dense linear order, kept separate from
the practical evaluator (:mod:`repro.core.calculus`) so the two can
cross-validate each other.

An r-configuration of size n (Definition 3.1) is ``(f, l, u)`` where ``f``
ranks the n variables (``f_i < f_j`` iff ``x_i < x_j``), and ``l_i``/``u_i``
are the tightest bounds on ``x_i`` among the constants of the formula
(with -inf/+inf allowed), such that no constant lies strictly between
``l_i`` and ``u_i``.  Each r-configuration denotes a class of mutually
indistinguishable points (Lemma 3.9); they partition D^n (Lemmas 3.7/3.8).

``EVAL-phi`` enumerates the r-configurations over the free variables and
keeps those whose ``F(xi) -> phi`` is valid, tested by the recursive
``Boolean-EVAL`` procedure whose cases are transcribed from the paper
(atoms ``x_i < x_j``, ``x_i < c``, ``c < x_i``; ``or``; ``not``; ``exists``
via extensions -- Definition 3.5).  The output, the disjunction of the
``F(xi)``, is a generalized relation: closed form, bottom-up, and of size
polynomial in the constants of the input database for a fixed query.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Sequence

from repro.constraints.dense_order import DenseOrderTheory, OrderAtom
from repro.constraints.terms import Const, Var
from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation
from repro.errors import EvaluationError, TheoryError
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    free_variables,
)

#: bound placeholders: None in ``l`` means -infinity, None in ``u`` +infinity
Bound = Fraction | None


@dataclass(frozen=True)
class RConfig:
    """An r-configuration ``(f, l, u)`` of Definition 3.1."""

    f: tuple[int, ...]
    l: tuple[Bound, ...]
    u: tuple[Bound, ...]

    @property
    def size(self) -> int:
        return len(self.f)

    def project(self, positions: Sequence[int]) -> "RConfig":
        """The r-configuration on a subset of positions (Section 3.2)."""
        ranks = sorted({self.f[p] for p in positions})
        rank_map = {rank: index + 1 for index, rank in enumerate(ranks)}
        return RConfig(
            tuple(rank_map[self.f[p]] for p in positions),
            tuple(self.l[p] for p in positions),
            tuple(self.u[p] for p in positions),
        )

    def atoms(self, variables: Sequence[str]) -> tuple[OrderAtom, ...]:
        """The conjunction ``F(xi)`` of Definition 3.3, as dense-order atoms."""
        if len(variables) != self.size:
            raise EvaluationError("variable count does not match configuration size")
        atoms: list[OrderAtom] = []
        for i in range(self.size):
            for j in range(self.size):
                if i < j and self.f[i] == self.f[j]:
                    atoms.append(
                        OrderAtom("=", Var(variables[i]), Var(variables[j]))
                    )
                if self.f[i] < self.f[j]:
                    atoms.append(
                        OrderAtom("<", Var(variables[i]), Var(variables[j]))
                    )
        for i in range(self.size):
            low, high = self.l[i], self.u[i]
            if low is not None and high is not None and low == high:
                atoms.append(OrderAtom("=", Var(variables[i]), Const(low)))
                continue
            if low is not None:
                atoms.append(OrderAtom("<", Const(low), Var(variables[i])))
            if high is not None:
                atoms.append(OrderAtom("<", Var(variables[i]), Const(high)))
        return tuple(atoms)

    def satisfied_by(self, point: Sequence[Fraction]) -> bool:
        """Definition 3.4: whether ``F(xi)(point)`` holds."""
        if len(point) != self.size:
            return False
        for i in range(self.size):
            for j in range(self.size):
                if self.f[i] < self.f[j] and not point[i] < point[j]:
                    return False
                if self.f[i] == self.f[j] and point[i] != point[j]:
                    return False
            low, high = self.l[i], self.u[i]
            if low is not None and high is not None and low == high:
                if point[i] != low:
                    return False
            else:
                if low is not None and not low < point[i]:
                    return False
                if high is not None and not point[i] < high:
                    return False
        return True

    def sample_point(self) -> tuple[Fraction, ...]:
        """A point satisfying ``F(xi)`` (Lemma 3.7, constructively)."""
        ranks = sorted(set(self.f))
        values: dict[int, Fraction] = {}
        previous: Fraction | None = None
        for rank in ranks:
            position = self.f.index(rank)
            low, high = self.l[position], self.u[position]
            if low is not None and high is not None and low == high:
                value = low
            else:
                effective_low = low
                if previous is not None and (
                    effective_low is None or previous > effective_low
                ):
                    effective_low = previous
                if effective_low is None and high is None:
                    value = Fraction(0)
                elif effective_low is None:
                    value = high - 1
                elif high is None:
                    value = effective_low + 1
                else:
                    value = (effective_low + high) / 2
            values[rank] = value
            previous = value
        return tuple(values[rank] for rank in self.f)


def is_valid_rconfig(f: Sequence[int], l: Sequence[Bound], u: Sequence[Bound]) -> bool:
    """The four conditions of Definition 3.1 (plus rank-shape wellformedness)."""
    n = len(f)
    if not (len(l) == len(u) == n):
        return False
    if n and set(f) != set(range(1, max(f) + 1)):
        return False
    for i in range(n):
        low, high = l[i], u[i]
        # condition 1: l_i <= u_i
        if low is not None and high is not None and low > high:
            return False
        # condition 2: no constant strictly inside is enforced by the caller,
        # which only ever supplies adjacent-constant slots
    for i in range(n):
        for j in range(n):
            if f[i] < f[j]:
                # condition 3: l_i < u_j
                if l[i] is not None and u[j] is not None and not l[i] < u[j]:
                    return False
            if f[i] == f[j]:
                # condition 4: identical bounds
                if l[i] != l[j] or u[i] != u[j]:
                    return False
    return True


def _slots(constants: Sequence[Fraction]) -> list[tuple[Bound, Bound]]:
    """The exact-constant and adjacent-gap slots over the constant set."""
    ordered = sorted(set(constants))
    slots: list[tuple[Bound, Bound]] = []
    slots.append((None, ordered[0] if ordered else None))
    for index, value in enumerate(ordered):
        slots.append((value, value))
        upper = ordered[index + 1] if index + 1 < len(ordered) else None
        slots.append((value, upper))
    if not ordered:
        return [(None, None)]
    return slots


def _ordered_partitions(n: int) -> Iterator[tuple[int, ...]]:
    """All rank sequences ``f`` on n positions: surjections onto {1..j}."""
    if n == 0:
        yield ()
        return
    for f in itertools.product(range(1, n + 1), repeat=n):
        top = max(f)
        if set(f) == set(range(1, top + 1)):
            yield f


def enumerate_rconfigs(
    n: int, constants: Sequence[Fraction]
) -> Iterator[RConfig]:
    """All r-configurations of size ``n`` over the given constant set."""
    slots = _slots(constants)
    for f in _ordered_partitions(n):
        ranks = max(f) if f else 0
        for slot_choice in itertools.product(range(len(slots)), repeat=ranks):
            # ranks must occupy weakly increasing slots, sharing only gaps
            valid = True
            for r in range(1, ranks):
                here, after = slot_choice[r - 1], slot_choice[r]
                if after < here:
                    valid = False
                    break
                if after == here:
                    low, high = slots[here]
                    if low is not None and high is not None and low == high:
                        valid = False  # two ranks cannot share an exact slot
                        break
            if not valid:
                continue
            lows = tuple(slots[slot_choice[f[i] - 1]][0] for i in range(n))
            highs = tuple(slots[slot_choice[f[i] - 1]][1] for i in range(n))
            if is_valid_rconfig(f, lows, highs):
                yield RConfig(f, lows, highs)


def rconfig_of_point(
    point: Sequence[Fraction], constants: Sequence[Fraction]
) -> RConfig:
    """The unique r-configuration satisfied by ``point`` (Lemma 3.8)."""
    ordered = sorted(set(constants))
    distinct = sorted(set(point))
    rank = {value: index + 1 for index, value in enumerate(distinct)}
    f = tuple(rank[value] for value in point)
    l: list[Bound] = []
    u: list[Bound] = []
    for value in point:
        if value in ordered:
            l.append(value)
            u.append(value)
            continue
        lower = None
        upper = None
        for c in ordered:
            if c < value:
                lower = c
            elif c > value:
                upper = c
                break
        l.append(lower)
        u.append(upper)
    return RConfig(f, tuple(l), tuple(u))


def extensions(config: RConfig, constants: Sequence[Fraction]) -> Iterator[RConfig]:
    """All size-(n+1) extensions of a configuration (Definition 3.5)."""
    n = config.size
    slots = _slots(constants)
    # new rank value: either equal to an existing rank, or inserted between
    for new_rank_double in range(1, 2 * (max(config.f) if n else 0) + 2):
        # odd values 2k-1 mean "a new rank strictly between old ranks k-1 and
        # k"; even values 2k mean "equal to old rank k"
        if new_rank_double % 2 == 0:
            target = new_rank_double // 2
            new_f = tuple(config.f) + (target,)
            shifted = new_f
        else:
            below = new_rank_double // 2  # ranks <= below stay, others shift
            shifted = tuple(
                rank if rank <= below else rank + 1 for rank in config.f
            ) + (below + 1,)
        for low, high in slots:
            if new_rank_double % 2 == 0:
                # must copy the bounds of the rank it joins (condition 4)
                position = config.f.index(new_rank_double // 2)
                low, high = config.l[position], config.u[position]
            candidate_f = shifted
            candidate_l = tuple(config.l) + (low,)
            candidate_u = tuple(config.u) + (high,)
            if is_valid_rconfig(candidate_f, candidate_l, candidate_u):
                yield RConfig(candidate_f, candidate_l, candidate_u)
            if new_rank_double % 2 == 0:
                break  # bounds are forced; only one candidate


# ------------------------------------------------------ formula preprocessing
def substitute_relations(
    formula: Formula, database: GeneralizedDatabase
) -> Formula:
    """Replace every database atom by its relation's DNF formula (Remark D)."""
    if isinstance(formula, RelationAtom):
        relation = database.relation(formula.name)
        if relation.arity != len(formula.args):
            raise EvaluationError(f"arity mismatch on {formula.name}")
        disjuncts = []
        for item in relation:
            renamed = item.rename(formula.args)
            disjuncts.append(
                And(tuple(renamed.atoms)) if renamed.atoms else And(())
            )
        return Or(tuple(disjuncts))
    if isinstance(formula, Atom):
        return formula
    if isinstance(formula, Not):
        return Not(substitute_relations(formula.child, database))
    if isinstance(formula, And):
        return And(
            tuple(substitute_relations(c, database) for c in formula.children)
        )
    if isinstance(formula, Or):
        return Or(
            tuple(substitute_relations(c, database) for c in formula.children)
        )
    if isinstance(formula, Exists):
        return Exists(
            formula.variables_bound,
            substitute_relations(formula.child, database),
        )
    if isinstance(formula, ForAll):
        return ForAll(
            formula.variables_bound,
            substitute_relations(formula.child, database),
        )
    raise EvaluationError(f"cannot substitute in {formula!r}")


def to_primitive(formula: Formula) -> Formula:
    """Rewrite to the paper's primitive syntax: atoms ``x<y``, ``x<c``,
    ``c<x`` and connectives ``or``, ``not``, ``exists`` only.

    ``x <= y`` becomes ``(x < y) or (x = y)`` and ``x = y`` becomes
    ``not((x < y) or (y < x))``, exactly as prescribed in Section 3.1.
    """
    if isinstance(formula, OrderAtom):
        left, right = formula.left, formula.right
        if isinstance(left, Const) and isinstance(right, Const):
            # ground atom: decide it now
            return And(()) if formula.holds({}) else Or(())
        strict = OrderAtom("<", left, right)
        strict_reverse = OrderAtom("<", right, left)
        equal = Not(Or((strict, strict_reverse)))
        if formula.op == "<":
            return strict
        if formula.op == "<=":
            return Or((strict, equal))
        if formula.op == "=":
            return equal
        return Or((strict, strict_reverse))  # !=
    if isinstance(formula, Atom):
        raise TheoryError(f"EVAL-phi handles dense-order atoms only, got {formula}")
    if isinstance(formula, RelationAtom):
        raise EvaluationError("substitute relations before to_primitive")
    if isinstance(formula, Not):
        return Not(to_primitive(formula.child))
    if isinstance(formula, And):
        # and is eliminated: not (not a or not b)
        return Not(
            Or(tuple(Not(to_primitive(c)) for c in formula.children))
        )
    if isinstance(formula, Or):
        return Or(tuple(to_primitive(c) for c in formula.children))
    if isinstance(formula, Exists):
        inner = to_primitive(formula.child)
        for name in reversed(formula.variables_bound):
            inner = Exists((name,), inner)
        return inner
    if isinstance(formula, ForAll):
        inner = Not(to_primitive(formula.child))
        for name in reversed(formula.variables_bound):
            inner = Exists((name,), inner)
        return Not(inner)
    raise EvaluationError(f"cannot normalize {formula!r}")


def formula_constants(formula: Formula) -> frozenset[Fraction]:
    """The constant set D_phi of a primitive formula."""
    if isinstance(formula, OrderAtom):
        values = set()
        for term in (formula.left, formula.right):
            if isinstance(term, Const):
                values.add(term.value)
        return frozenset(values)
    if isinstance(formula, Not):
        return formula_constants(formula.child)
    if isinstance(formula, (And, Or)):
        result: frozenset[Fraction] = frozenset()
        for child in formula.children:
            result |= formula_constants(child)
        return result
    if isinstance(formula, (Exists, ForAll)):
        return formula_constants(formula.child)
    return frozenset()


# --------------------------------------------------------------- Boolean-EVAL
def boolean_eval(
    formula: Formula,
    config: RConfig,
    variables: tuple[str, ...],
    constants: Sequence[Fraction],
) -> bool:
    """The recursive Boolean-EVAL-psi of Section 3.1.

    Returns 1 iff ``F(xi') -> psi`` is valid, following the paper's five
    cases.  ``variables`` names the configuration's positions.
    """
    index = {name: position for position, name in enumerate(variables)}
    if isinstance(formula, OrderAtom):
        assert formula.op == "<", "primitive formulas contain only < atoms"
        left, right = formula.left, formula.right
        if isinstance(left, Var) and isinstance(right, Var):
            return config.f[index[left.name]] < config.f[index[right.name]]
        if isinstance(left, Var):  # x_i < c
            assert isinstance(right, Const)
            i = index[left.name]
            low, high = config.l[i], config.u[i]
            c = right.value
            if low is not None and high is not None and low == high:
                return low < c
            return high is not None and high <= c
        # c < x_i
        assert isinstance(right, Var) and isinstance(left, Const)
        i = index[right.name]
        low, high = config.l[i], config.u[i]
        c = left.value
        if low is not None and high is not None and low == high:
            return c < low
        return low is not None and c <= low
    if isinstance(formula, Or):
        return any(
            boolean_eval(child, config, variables, constants)
            for child in formula.children
        )
    if isinstance(formula, And):
        # only the empty conjunction (ground truth) survives to_primitive
        return all(
            boolean_eval(child, config, variables, constants)
            for child in formula.children
        )
    if isinstance(formula, Not):
        return not boolean_eval(formula.child, config, variables, constants)
    if isinstance(formula, Exists):
        (name,) = formula.variables_bound
        extended_vars = variables + (name,)
        return any(
            boolean_eval(formula.child, extension, extended_vars, constants)
            for extension in extensions(config, constants)
        )
    raise EvaluationError(f"Boolean-EVAL cannot handle {formula!r}")


def evaluate_query_rconfig(
    query: Formula,
    database: GeneralizedDatabase,
    output: Sequence[str] | None = None,
    name: str = "result",
) -> GeneralizedRelation:
    """EVAL-phi: the Section 3.1 evaluation of a calculus query.

    Cross-validates :func:`repro.core.calculus.evaluate_calculus`; the output
    generalized relation contains one tuple ``F(xi)`` per satisfying
    r-configuration (so it is typically *larger* but equivalent).
    """
    from repro.runtime.chaos import unwrap_theory

    theory = database.theory
    if not isinstance(unwrap_theory(theory), DenseOrderTheory):
        raise TheoryError("EVAL-phi applies to the dense-order theory")
    free = free_variables(query)
    if output is None:
        output = tuple(sorted(free))
    if set(output) != set(free):
        raise EvaluationError(
            f"output {tuple(output)} differs from free variables {sorted(free)}"
        )
    substituted = substitute_relations(query, database)
    primitive = to_primitive(substituted)
    constants = sorted(formula_constants(primitive))
    result = GeneralizedRelation(name, tuple(output), theory)
    for config in enumerate_rconfigs(len(output), constants):
        if boolean_eval(primitive, config, tuple(output), constants):
            result.add_tuple(config.atoms(tuple(output)))
    return result
