"""e-configurations and EVAL-phi for equality constraints (Section 4).

The equality-over-an-infinite-domain analogue of :mod:`repro.core.rconfig`.
An e-configuration (Definition 4.1) is ``(epsilon, v)``: an equivalence
relation on the n positions plus, per position, either a constant of D_phi
or the special marker ``o`` ("different from every constant in D_phi"),
consistently across equivalent positions.  Lemmas 4.6-4.10 mirror the dense
order ones; Boolean-EVAL differs only in its base cases (``x_i = x_j`` and
``x_i = c``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.constraints.equality import EqualityAtom, EqualityTheory
from repro.constraints.terms import Const, Var
from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation
from repro.errors import EvaluationError, TheoryError
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    free_variables,
)


class _OtherType:
    """The marker ``o``: a value different from every constant in D_phi."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "o"


OTHER = _OtherType()


@dataclass(frozen=True)
class EConfig:
    """An e-configuration ``(epsilon, v)`` of Definition 4.1.

    ``classes`` assigns each position its equivalence-class id (normalized:
    class ids appear in first-occurrence order starting from 0); ``v`` tags
    each position with a constant or ``OTHER``.
    """

    classes: tuple[int, ...]
    v: tuple[Any, ...]

    @property
    def size(self) -> int:
        return len(self.classes)

    def project(self, positions: Sequence[int]) -> "EConfig":
        kept = [self.classes[p] for p in positions]
        relabel: dict[int, int] = {}
        normalized = []
        for cls in kept:
            relabel.setdefault(cls, len(relabel))
            normalized.append(relabel[cls])
        return EConfig(tuple(normalized), tuple(self.v[p] for p in positions))

    def atoms(self, variables: Sequence[str]) -> tuple[EqualityAtom, ...]:
        """The conjunction F(xi) of Definition 4.3 (finite part).

        The "different from every constant" conjuncts for ``o``-tagged
        classes are emitted against the constants of D_phi supplied when
        evaluating; here we emit the within-configuration atoms:
        equalities inside classes, disequalities across classes, and
        constant equations.  Call :meth:`atoms_with_constants` to add the
        ``x != c`` conjuncts.
        """
        return self.atoms_with_constants(variables, ())

    def atoms_with_constants(
        self, variables: Sequence[str], constants: Sequence[Any]
    ) -> tuple[EqualityAtom, ...]:
        if len(variables) != self.size:
            raise EvaluationError("variable count mismatch")
        atoms: list[EqualityAtom] = []
        for i in range(self.size):
            for j in range(i + 1, self.size):
                if self.classes[i] == self.classes[j]:
                    atoms.append(EqualityAtom("=", Var(variables[i]), Var(variables[j])))
                else:
                    atoms.append(EqualityAtom("!=", Var(variables[i]), Var(variables[j])))
        for i in range(self.size):
            if self.v[i] is OTHER:
                for constant in constants:
                    atoms.append(
                        EqualityAtom("!=", Var(variables[i]), Const(constant))
                    )
            else:
                atoms.append(EqualityAtom("=", Var(variables[i]), Const(self.v[i])))
        return tuple(atoms)

    def satisfied_by(self, point: Sequence[Any], constants: Sequence[Any]) -> bool:
        """Definition 4.4."""
        if len(point) != self.size:
            return False
        for i in range(self.size):
            for j in range(self.size):
                same = self.classes[i] == self.classes[j]
                if same != (point[i] == point[j]):
                    return False
            if self.v[i] is OTHER:
                if point[i] in set(constants):
                    return False
            elif point[i] != self.v[i]:
                return False
        return True

    def sample_point(self, fresh_factory=None) -> tuple[Any, ...]:
        """Lemma 4.7: a satisfying point; OTHER classes get fresh elements."""
        fresh_factory = fresh_factory or (lambda i: f"_fresh{i}")
        values: dict[int, Any] = {}
        fresh_index = 0
        for i in range(self.size):
            cls = self.classes[i]
            if cls in values:
                continue
            if self.v[i] is OTHER:
                values[cls] = fresh_factory(fresh_index)
                fresh_index += 1
            else:
                values[cls] = self.v[i]
        return tuple(values[self.classes[i]] for i in range(self.size))


def is_valid_econfig(classes: Sequence[int], v: Sequence[Any]) -> bool:
    """Conditions of Definition 4.1 plus class-id normalization."""
    seen: dict[int, int] = {}
    for cls in classes:
        if cls not in seen:
            if cls != len(seen):
                return False
            seen[cls] = cls
    values_by_class: dict[int, Any] = {}
    for cls, value in zip(classes, v):
        if cls in values_by_class:
            # condition 1: equivalent positions carry the same tag
            if values_by_class[cls] is not value and values_by_class[cls] != value:
                return False
        values_by_class[cls] = value
    # condition 2: equal non-OTHER tags force the same class
    tags: dict[Any, int] = {}
    for cls, value in values_by_class.items():
        if value is OTHER:
            continue
        if value in tags and tags[value] != cls:
            return False
        tags[value] = cls
    return True


def enumerate_econfigs(n: int, constants: Sequence[Any]) -> Iterator[EConfig]:
    """All e-configurations of size n over the constants of D_phi."""
    tags = list(dict.fromkeys(constants)) + [OTHER]
    for classes in _set_partitions(n):
        class_count = (max(classes) + 1) if classes else 0
        for assignment in itertools.product(tags, repeat=class_count):
            # distinct classes cannot share a non-OTHER tag
            non_other = [t for t in assignment if t is not OTHER]
            if len(non_other) != len(set(non_other)):
                continue
            v = tuple(assignment[cls] for cls in classes)
            config = EConfig(classes, v)
            yield config


def _set_partitions(n: int) -> Iterator[tuple[int, ...]]:
    """Set partitions of n positions in restricted-growth-string form."""
    if n == 0:
        yield ()
        return

    def grow(prefix: list[int]) -> Iterator[tuple[int, ...]]:
        if len(prefix) == n:
            yield tuple(prefix)
            return
        top = max(prefix) if prefix else -1
        for cls in range(top + 2):
            yield from grow(prefix + [cls])

    yield from grow([])


def econfig_of_point(point: Sequence[Any], constants: Sequence[Any]) -> EConfig:
    """Lemma 4.8: the unique e-configuration containing the point."""
    classes: list[int] = []
    relabel: dict[Any, int] = {}
    for value in point:
        relabel.setdefault(value, len(relabel))
        classes.append(relabel[value])
    constant_set = set(constants)
    v = tuple(value if value in constant_set else OTHER for value in point)
    return EConfig(tuple(classes), v)


def extensions(config: EConfig, constants: Sequence[Any]) -> Iterator[EConfig]:
    """All size-(n+1) extensions (Definition 4.5)."""
    used_tags = {tag for tag in config.v if tag is not OTHER}
    # join an existing class
    class_count = (max(config.classes) + 1) if config.size else 0
    for cls in range(class_count):
        position = config.classes.index(cls)
        yield EConfig(
            config.classes + (cls,), config.v + (config.v[position],)
        )
    # or form a new class, tagged with an unused constant or OTHER
    for tag in list(dict.fromkeys(constants)) + [OTHER]:
        if tag is not OTHER and tag in used_tags:
            continue
        yield EConfig(config.classes + (class_count,), config.v + (tag,))


# --------------------------------------------------------------- Boolean-EVAL
def _primitive(formula: Formula) -> Formula:
    """Normalize to atoms ``x = y`` / ``x = c`` and ``or``/``not``/``exists``."""
    if isinstance(formula, EqualityAtom):
        if isinstance(formula.left, Const) and isinstance(formula.right, Const):
            return And(()) if formula.holds({}) else Or(())
        if formula.op == "!=":
            return Not(EqualityAtom("=", formula.left, formula.right))
        return formula
    if isinstance(formula, Atom):
        raise TheoryError(f"EVAL-phi (equality) got a foreign atom {formula}")
    if isinstance(formula, RelationAtom):
        raise EvaluationError("substitute relations before normalizing")
    if isinstance(formula, Not):
        return Not(_primitive(formula.child))
    if isinstance(formula, And):
        return Not(Or(tuple(Not(_primitive(c)) for c in formula.children)))
    if isinstance(formula, Or):
        return Or(tuple(_primitive(c) for c in formula.children))
    if isinstance(formula, Exists):
        inner = _primitive(formula.child)
        for name in reversed(formula.variables_bound):
            inner = Exists((name,), inner)
        return inner
    if isinstance(formula, ForAll):
        inner = Not(_primitive(formula.child))
        for name in reversed(formula.variables_bound):
            inner = Exists((name,), inner)
        return Not(inner)
    raise EvaluationError(f"cannot normalize {formula!r}")


def boolean_eval(
    formula: Formula,
    config: EConfig,
    variables: tuple[str, ...],
    constants: Sequence[Any],
) -> bool:
    """Boolean-EVAL-psi with the Section 4 base cases."""
    index = {name: position for position, name in enumerate(variables)}
    if isinstance(formula, EqualityAtom):
        assert formula.op == "="
        left, right = formula.left, formula.right
        if isinstance(left, Var) and isinstance(right, Var):
            return config.classes[index[left.name]] == config.classes[index[right.name]]
        if isinstance(left, Var):
            variable, constant = left, right
        else:
            variable, constant = right, left
        assert isinstance(constant, Const)
        tag = config.v[index[variable.name]]
        return tag is not OTHER and tag == constant.value
    if isinstance(formula, Or):
        return any(
            boolean_eval(c, config, variables, constants) for c in formula.children
        )
    if isinstance(formula, And):
        return all(
            boolean_eval(c, config, variables, constants) for c in formula.children
        )
    if isinstance(formula, Not):
        return not boolean_eval(formula.child, config, variables, constants)
    if isinstance(formula, Exists):
        (name,) = formula.variables_bound
        extended = variables + (name,)
        return any(
            boolean_eval(formula.child, extension, extended, constants)
            for extension in extensions(config, constants)
        )
    raise EvaluationError(f"Boolean-EVAL cannot handle {formula!r}")


def _formula_constants(formula: Formula) -> frozenset:
    if isinstance(formula, EqualityAtom):
        values = set()
        for term in (formula.left, formula.right):
            if isinstance(term, Const):
                values.add(term.value)
        return frozenset(values)
    if isinstance(formula, Not):
        return _formula_constants(formula.child)
    if isinstance(formula, (And, Or)):
        result: frozenset = frozenset()
        for child in formula.children:
            result |= _formula_constants(child)
        return result
    if isinstance(formula, (Exists, ForAll)):
        return _formula_constants(formula.child)
    return frozenset()


def evaluate_query_econfig(
    query: Formula,
    database: GeneralizedDatabase,
    output: Sequence[str] | None = None,
    name: str = "result",
) -> GeneralizedRelation:
    """EVAL-phi for relational calculus + equality constraints (Theorem 4.11.1)."""
    from repro.core.rconfig import substitute_relations

    from repro.runtime.chaos import unwrap_theory

    theory = database.theory
    if not isinstance(unwrap_theory(theory), EqualityTheory):
        raise TheoryError("equality EVAL-phi applies to the equality theory")
    free = free_variables(query)
    if output is None:
        output = tuple(sorted(free))
    if set(output) != set(free):
        raise EvaluationError(
            f"output {tuple(output)} differs from free variables {sorted(free)}"
        )
    substituted = substitute_relations(query, database)
    primitive = _primitive(substituted)
    constants = sorted(_formula_constants(primitive), key=repr)
    result = GeneralizedRelation(name, tuple(output), theory)
    for config in enumerate_econfigs(len(output), constants):
        if boolean_eval(primitive, config, tuple(output), constants):
            result.add_tuple(
                config.atoms_with_constants(tuple(output), constants)
            )
    return result
