"""The CQL framework itself (Sections 1, 3, 4 of the paper).

* :mod:`repro.core.generalized` -- generalized tuples, relations, databases
  (Definitions 1.3/1.4);
* :mod:`repro.core.calculus` -- bottom-up closed-form evaluation of
  relational calculus + constraints (the Figure 1 pipeline);
* :mod:`repro.core.datalog` -- Datalog and inflationary Datalog with
  constraints (naive/semi-naive, inflationary negation, closure guards);
* :mod:`repro.core.rconfig` -- r-configurations and the EVAL-phi algorithm of
  Section 3.1 (Lemmas 3.6-3.13), implemented verbatim;
* :mod:`repro.core.econfig` -- e-configurations (Section 4);
* :mod:`repro.core.herbrand` -- generalized Herbrand atoms and the T_P
  operator of Section 3.2 (Theorems 3.19/3.20);
* :mod:`repro.core.fringe` -- generalized derivation trees, the polynomial
  fringe property and round-synchronous parallel evaluation (Section 3.3,
  Theorem 3.21);
* :mod:`repro.core.ivm` -- incremental view maintenance: live fixpoints
  under insert/retract deltas (counting + DRed over the same engine).
"""

from repro.core import algebra
from repro.core.calculus import evaluate_calculus
from repro.core.datalog import DatalogProgram, Rule
from repro.core.generalized import (
    GeneralizedDatabase,
    GeneralizedRelation,
    GeneralizedTuple,
)
from repro.core.ivm import MaterializedView

__all__ = [
    "DatalogProgram",
    "MaterializedView",
    "algebra",
    "GeneralizedDatabase",
    "GeneralizedRelation",
    "GeneralizedTuple",
    "Rule",
    "evaluate_calculus",
]
