"""Generalized Herbrand atoms and the T_P operator (Section 3.2).

The paper's second, logic-programming-flavoured evaluation of Datalog +
dense linear order: generalized EDB Herbrand atoms are the input generalized
tuples; generalized IDB Herbrand atoms are predicate symbols paired with
*r-configurations* over the constants of the program (Definition 3.16).
One rule firing (Definition 3.18) chooses an r-configuration xi over all the
rule's variables, checks

* ``F(xi) -> C`` for the rule's constraint conjunction -- by evaluating C at
  a single sample point of xi, justified by Lemmas 3.9/3.10;
* for each EDB body atom, ``F(xi_i) -> psi`` for some input tuple psi (same
  one-point test);
* for each IDB body atom, membership of the projected configuration in the
  current interpretation;

and derives the head atom with the projected configuration.  T_P is the
union of all one-firing derivations; its least fixpoint L_P exists by
Tarski on the finite lattice of interpretations (Theorem 3.19) and
represents exactly the naive point-wise fixpoint (Theorem 3.20) -- the
soundness/completeness tests exercise that equality on sample points.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.constraints.dense_order import DenseOrderTheory
from repro.core.datalog import Rule
from repro.core.generalized import GeneralizedDatabase
from repro.core.rconfig import RConfig, enumerate_rconfigs
from repro.errors import EvaluationError, FixpointDivergenceError, TheoryError


@dataclass(frozen=True)
class IDBAtom:
    """A generalized IDB Herbrand atom: predicate + r-configuration."""

    predicate: str
    config: RConfig


Interpretation = frozenset[IDBAtom]


class HerbrandProgram:
    """A generalized database logic program P (Definition 3.16)."""

    def __init__(
        self,
        rules: Sequence[Rule],
        database: GeneralizedDatabase,
    ) -> None:
        from repro.runtime.chaos import unwrap_theory

        if not isinstance(unwrap_theory(database.theory), DenseOrderTheory):
            raise TheoryError("the Section 3.2 machinery is for dense order")
        for rule in rules:
            if rule.has_negation():
                raise EvaluationError("Herbrand T_P handles positive Datalog only")
        self.rules = list(rules)
        self.database = database
        self.theory = database.theory
        self.idb_names = {rule.head.name for rule in rules}
        # H: all dense-linear-order constant symbols of program + database
        constants: set[Fraction] = set(database.constants())
        for rule in rules:
            for atom in rule.constraint_atoms:
                constants |= set(self.theory.atom_constants(atom))
        self.constants: list[Fraction] = sorted(constants)

    # ------------------------------------------------------------------- T_P
    def tp(self, interpretation: Interpretation) -> Interpretation:
        """One application of the immediate-consequence operator T_P."""
        derived: set[IDBAtom] = set(interpretation)
        for rule in self.rules:
            derived |= self._fire(rule, interpretation)
        return frozenset(derived)

    def _fire(self, rule: Rule, interpretation: Interpretation) -> set[IDBAtom]:
        variables = rule.variables()
        positions = {name: i for i, name in enumerate(variables)}
        results: set[IDBAtom] = set()
        for config in enumerate_rconfigs(len(variables), self.constants):
            point = dict(zip(variables, config.sample_point()))
            # step 2: F(xi) -> C, tested at one point (Lemmas 3.9/3.10)
            if not all(atom.holds(point) for atom in rule.constraint_atoms):
                continue
            ok = True
            for body_atom in rule.positive_atoms:
                projected = config.project([positions[a] for a in body_atom.args])
                if body_atom.name in self.idb_names:
                    # step 4: projected configuration must be in I
                    if IDBAtom(body_atom.name, projected) not in interpretation:
                        ok = False
                        break
                else:
                    # step 3: F(xi_i) -> psi for some EDB generalized tuple
                    relation = self.database.relation(body_atom.name)
                    sub_point = {
                        var: point[arg]
                        for var, arg in zip(relation.variables, body_atom.args)
                    }
                    if not any(t.holds(sub_point) for t in relation):
                        ok = False
                        break
            if not ok:
                continue
            head_projected = config.project(
                [positions[a] for a in rule.head.args]
            )
            results.add(IDBAtom(rule.head.name, head_projected))
        return results

    # -------------------------------------------------------------- fixpoint
    def least_fixpoint(self, max_iterations: int = 10_000) -> Interpretation:
        """L_P by iterating T_P from the empty-IDB interpretation (Thm 3.19)."""
        current: Interpretation = frozenset()
        for _ in range(max_iterations):
            next_interpretation = self.tp(current)
            if next_interpretation == current:
                return current
            current = next_interpretation
        sizes: dict[str, int] = {}
        for atom in current:
            sizes[atom.predicate] = sizes.get(atom.predicate, 0) + 1
        raise FixpointDivergenceError(
            max_iterations,
            message=f"T_P iteration did not converge within {max_iterations} "
            "iterations",
            relation_sizes=sizes,
        )

    def as_relations(
        self, interpretation: Interpretation
    ) -> GeneralizedDatabase:
        """Render an interpretation as generalized relations (F(xi) tuples)."""
        world = self.database.copy()
        arities: dict[str, int] = {}
        for rule in self.rules:
            arities[rule.head.name] = len(rule.head.args)
        for name in sorted(self.idb_names):
            variables = tuple(f"_{i}" for i in range(arities[name]))
            if name not in world:
                world.create_relation(name, variables)
        for atom in interpretation:
            relation = world.relation(atom.predicate)
            relation.add_tuple(atom.config.atoms(relation.variables))
        return world
