"""Query optimization: selection propagation and join ordering.

Section 1.1 motivates bottom-up processing because "it is a good candidate
for many optimizations ...  e.g., via algebraic transformations, selection
propagation etc.", and Section 6(3) asks how optimization methods combine
with the framework.  This module implements the two classical rewrites in
the generalized setting:

* **selection propagation**: inside a conjunction, constraint atoms are
  evaluated *first*, so that every relation atom joined afterwards is
  filtered immediately (the evaluator conjoins left to right with
  satisfiability pruning, so order is selectivity);
* **join ordering**: relation atoms are ordered by ascending generalized-
  tuple count, keeping intermediate DNFs small;
* **quantifier pushing**: ``exists x`` distributes over disjuncts and over
  conjuncts that do not mention x, shrinking the elimination scope.

The rewrites are semantics-preserving formula-to-formula transforms; the
ablation benchmark measures their effect.
"""

from __future__ import annotations


from repro.core.generalized import GeneralizedDatabase
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    free_variables,
)


def optimize(formula: Formula, database: GeneralizedDatabase) -> Formula:
    """Apply all rewrites bottom-up; the result is logically equivalent."""
    return _push_quantifiers(_reorder(formula, database))


def _reorder(formula: Formula, database: GeneralizedDatabase) -> Formula:
    """Selection propagation + join ordering inside conjunctions."""
    if isinstance(formula, (Atom, RelationAtom)):
        return formula
    if isinstance(formula, Not):
        return Not(_reorder(formula.child, database))
    if isinstance(formula, Or):
        return Or(tuple(_reorder(c, database) for c in formula.children))
    if isinstance(formula, And):
        children = [_reorder(c, database) for c in formula.children]
        children.sort(key=lambda c: _cost(c, database))
        return And(tuple(children))
    if isinstance(formula, Exists):
        return Exists(formula.variables_bound, _reorder(formula.child, database))
    if isinstance(formula, ForAll):
        return ForAll(formula.variables_bound, _reorder(formula.child, database))
    return formula


def _cost(formula: Formula, database: GeneralizedDatabase) -> tuple:
    """Estimated evaluation cost: constraints free, then small relations.

    Negations and quantified subformulas are placed last (they are the
    expensive complement/elimination steps, best applied to already-filtered
    intermediates).  The key is a tuple so ties stay deterministic.
    """
    if isinstance(formula, RelationAtom):
        size = len(database.relation(formula.name)) if formula.name in database else 0
        return (1, size, str(formula))
    if isinstance(formula, Atom):
        return (0, 0, str(formula))
    if isinstance(formula, Not):
        return (3, 0, str(formula))
    if isinstance(formula, (Exists, ForAll)):
        return (2, 0, str(formula))
    # nested connectives: approximate by the sum of relation sizes inside
    total = 0
    for atom in _relation_atoms(formula):
        if atom.name in database:
            total += len(database.relation(atom.name))
    return (2, total, str(formula))


def _relation_atoms(formula: Formula):
    from repro.logic.syntax import all_relation_atoms

    return all_relation_atoms(formula)


def _push_quantifiers(formula: Formula) -> Formula:
    """Distribute ``exists`` over Or and out of x-free conjuncts."""
    if isinstance(formula, (Atom, RelationAtom)):
        return formula
    if isinstance(formula, Not):
        return Not(_push_quantifiers(formula.child))
    if isinstance(formula, And):
        return And(tuple(_push_quantifiers(c) for c in formula.children))
    if isinstance(formula, Or):
        return Or(tuple(_push_quantifiers(c) for c in formula.children))
    if isinstance(formula, ForAll):
        return ForAll(formula.variables_bound, _push_quantifiers(formula.child))
    if isinstance(formula, Exists):
        child = _push_quantifiers(formula.child)
        bound = formula.variables_bound
        if not (free_variables(child) & set(bound)):
            # vacuous quantification over a nonempty domain
            return child
        if isinstance(child, Or):
            # exists x (A or B)  ==  (exists x A) or (exists x B)
            return Or(
                tuple(
                    _push_quantifiers(Exists(bound, part))
                    for part in child.children
                )
            )
        if isinstance(child, And):
            # split conjuncts that do not mention the bound variables
            inside = []
            outside = []
            bound_set = set(bound)
            for part in child.children:
                if free_variables(part) & bound_set:
                    inside.append(part)
                else:
                    outside.append(part)
            if outside and inside:
                return And(
                    tuple(outside) + (Exists(bound, And(tuple(inside))),)
                )
            if outside and not inside:
                # nothing mentions x: exists x over a nonempty domain is a no-op
                return And(tuple(outside))
        return Exists(bound, child)
    return formula
