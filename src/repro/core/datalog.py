"""Datalog and inflationary Datalog-not with constraints (Sections 1.2, 3, 4).

A rule is ``head :- literals`` where the head is a database atom with
distinct variables and each body literal is a database atom, a negated
database atom (Datalog-not only), or a constraint atom of the active theory
(Definition 1.10).  The engine provides:

* **naive** and **semi-naive** bottom-up evaluation to the least fixpoint
  for positive programs -- rule firing joins the body tuples' constraint
  conjunctions, checks satisfiability, eliminates body-only variables
  (closed form!), canonicalizes, and adds the head tuple;
* **inflationary semantics** for Datalog-not (facts derived in an iteration
  are added to those of previous iterations; negated atoms are evaluated
  against the current relation by complementation), per [1, 22, 33] as the
  paper prescribes;
* a **closure guard**: recursion over the real-polynomial theory is refused
  with :class:`NotClosedError` (Example 1.12 -- the transitive closure of
  ``y = 2x`` has no finite representation); the Example 1.12 divergence
  experiment opts in via ``allow_unsafe_recursion`` + ``max_iterations``.

Termination for the dense-order and equality theories follows the paper's
argument: derived tuples are canonical conjunctions over a fixed variable
count and the fixed constant set of program + database, of which there are
finitely many (polynomially many for fixed arity -- the PTIME bound of
Theorems 3.14.2 / 4.11.2).
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Sequence

from repro.constraints.base import ConstraintTheory
from repro.core import compile as rulecompile
from repro.core.calculus import relation_complement_dnf
from repro.core.generalized import (
    GeneralizedDatabase,
    GeneralizedRelation,
    GeneralizedTuple,
)
from repro.errors import (
    ArityError,
    BudgetExceededError,
    EvaluationError,
    FixpointDivergenceError,
    NotClosedError,
    StaticAnalysisError,
)
from repro.errors import ClusterError
from repro.indexing.pool import JoinIndexPool
from repro.logic.syntax import Atom, Not, RelationAtom
from repro.runtime.budget import Budget, active_meter, metered, tick
from repro.runtime.cluster import ClusterConfig, ShardedExecutor


@dataclass(frozen=True)
class Rule:
    """``head :- body`` with constraint atoms allowed in the body."""

    head: RelationAtom
    body: tuple[object, ...]  # RelationAtom | Not(RelationAtom) | theory Atom

    def __post_init__(self) -> None:
        head_vars = set(self.head.args)
        body_vars: set[str] = set()
        for literal in self.body:
            if isinstance(literal, RelationAtom):
                body_vars |= set(literal.args)
            elif isinstance(literal, Not):
                if not isinstance(literal.child, RelationAtom):
                    raise EvaluationError(
                        "negation in rule bodies applies to database atoms only"
                    )
                body_vars |= set(literal.child.args)
            elif isinstance(literal, Atom):
                body_vars |= literal.variables()
            else:
                raise EvaluationError(f"bad body literal {literal!r}")
        missing = head_vars - body_vars
        if missing:
            raise EvaluationError(
                f"head variables {sorted(missing)} do not occur in the body "
                f"of rule {self}"
            )

    @property
    def positive_atoms(self) -> list[RelationAtom]:
        return [lit for lit in self.body if isinstance(lit, RelationAtom)]

    @property
    def negative_atoms(self) -> list[RelationAtom]:
        return [lit.child for lit in self.body if isinstance(lit, Not)]  # type: ignore[union-attr]

    @property
    def constraint_atoms(self) -> list[Atom]:
        return [
            lit
            for lit in self.body
            if isinstance(lit, Atom) and not isinstance(lit, RelationAtom)
        ]

    def has_negation(self) -> bool:
        return any(isinstance(lit, Not) for lit in self.body)

    def variables(self) -> list[str]:
        seen: list[str] = []
        for literal in self.body:
            if isinstance(literal, RelationAtom):
                names: Iterable[str] = literal.args
            elif isinstance(literal, Not):
                names = literal.child.args  # type: ignore[union-attr]
            else:
                names = sorted(literal.variables())  # type: ignore[union-attr]
            for name in names:
                if name not in seen:
                    seen.append(name)
        for name in self.head.args:
            if name not in seen:
                seen.append(name)
        return seen

    def __str__(self) -> str:
        body = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {body}"


@dataclass(frozen=True)
class EngineOptions:
    """Per-optimization toggles for the constraint-engine fast path.

    Everything defaults to on; ``benchmarks/bench_ablation.py`` flips the
    flags individually to measure what each layer contributes.
    """

    #: memoize ``canonicalize``/``is_satisfiable`` on the theory (TheoryCache)
    theory_cache: bool = True
    #: cache each tuple's renamed atom tuple per (relation, body-atom) pair
    rename_cache: bool = True
    #: extend the parent conjunction's solver state in the depth-first join
    #: instead of re-deciding the whole partial conjunction at every level
    incremental_join: bool = True
    #: cache the complement DNF of negated relations per (name, version)
    complement_cache: bool = True
    #: reject join candidates whose pinned constants conflict with the
    #: partial conjunction before consulting the solver at all
    pin_filter: bool = True
    #: reorder each rule's positive atoms by estimated selectivity before
    #: the depth-first join, re-planned every round (delta/relation sizes
    #: change between rounds, so the best order does too)
    join_planner: bool = True
    #: probe incrementally-maintained generalized 1-d indexes
    #: (:class:`repro.indexing.pool.JoinIndexPool`) when the partial
    #: conjunction pins or interval-bounds a join variable, instead of
    #: scanning the full renamed choice list
    index_probes: bool = True
    #: fan independent (rule, delta-position) firings of a round across a
    #: thread pool with a deterministic merge order
    parallel: bool = True
    #: lower planned rules to specialized closures (:mod:`repro.core.compile`)
    #: cached in the process-wide PlanCache; off, the interpreted join is the
    #: differential oracle the compiled path is checked against
    compile_rules: bool = True
    #: run the containment-based semantic optimizer
    #: (:mod:`repro.analysis.semantic`) at program construction: subsumed
    #: rules, redundant literals and unsatisfiable rules are removed and
    #: constraints canonicalized *before* the PlanCache key is computed, so
    #: minimized programs cache-hit.  Fixpoint-preserving by construction
    #: (no-op for the polynomial theory, where containment is undecided).
    optimize_semantic: bool = True
    #: run the repro.analysis pre-flight at construction time and raise
    #: StaticAnalysisError on error diagnostics.  Not a perf flag, so it is
    #: deliberately absent from ``as_dict`` (the ablation grid).
    analyze: bool = False
    #: resource budget enforced by the execution supervisor
    #: (:mod:`repro.runtime.budget`); ``None`` inherits whatever ambient
    #: budget the caller installed via ``supervised``.  Not a perf flag, so
    #: absent from ``as_dict`` like ``analyze``.
    budget: Budget | None = None
    #: worker-thread count for ``parallel`` (0 = derive from the CPU count).
    #: A sizing knob rather than an optimization, so absent from ``as_dict``.
    parallel_workers: int = 0
    #: fan each round's shard tasks across a *process* pool
    #: (:mod:`repro.runtime.cluster`) with a shard-order merge that is
    #: byte-identical to serial; degrades to the in-process parallel path
    #: (never an error) when the pool is unavailable or exhausted.  A
    #: placement strategy rather than a grid optimization, so absent from
    #: ``as_dict`` like ``parallel_workers``.
    sharded: bool = False
    #: worker-process count for ``sharded`` (0 = derive from the CPU count)
    shard_workers: int = 0
    #: supervision/liveness/fault-injection knobs for the sharded pool
    #: (``None``: :class:`repro.runtime.cluster.ClusterConfig` defaults)
    cluster: ClusterConfig | None = None
    #: demand-driven query evaluation (:mod:`repro.core.query`): rewrite
    #: bound queries with constraint-generalized magic sets and reuse cached
    #: answers via containment.  Off, ``Engine.query`` evaluates the full
    #: fixpoint and filters -- the differential oracle the magic path is
    #: checked against.  A query-path strategy, not a fixpoint grid flag, so
    #: deliberately absent from ``as_dict`` like ``sharded``.
    magic: bool = True

    @classmethod
    def all_on(cls) -> "EngineOptions":
        return cls()

    @classmethod
    def all_off(cls) -> "EngineOptions":
        return cls(
            theory_cache=False,
            rename_cache=False,
            incremental_join=False,
            complement_cache=False,
            pin_filter=False,
            join_planner=False,
            index_probes=False,
            parallel=False,
            compile_rules=False,
            optimize_semantic=False,
        )

    def as_dict(self) -> dict[str, bool]:
        return {
            "theory_cache": self.theory_cache,
            "rename_cache": self.rename_cache,
            "incremental_join": self.incremental_join,
            "complement_cache": self.complement_cache,
            "pin_filter": self.pin_filter,
            "join_planner": self.join_planner,
            "index_probes": self.index_probes,
            "parallel": self.parallel,
            "compile_rules": self.compile_rules,
            "optimize_semantic": self.optimize_semantic,
        }


@dataclass
class EvaluationStats:
    """Bookkeeping exposed for the data-complexity benchmarks.

    ``rule_firings`` counts complete body matches (leaf firings of the join);
    ``join_steps`` counts partial-join candidate extensions.  The seed engine
    conflated the two in one counter, overcounting firings in the reports.
    """

    iterations: int = 0
    rule_firings: int = 0
    join_steps: int = 0
    tuples_derived: int = 0
    tuples_added: int = 0
    sat_checks: int = 0
    join_prunes: int = 0
    pin_prunes: int = 0
    closure_extensions: int = 0
    rename_cache_hits: int = 0
    rename_cache_misses: int = 0
    complement_cache_hits: int = 0
    complement_cache_misses: int = 0
    theory_cache_hits: int = 0
    theory_cache_misses: int = 0
    plans_built: int = 0
    plan_reorders: int = 0
    index_probes: int = 0
    index_candidates: int = 0
    index_scan_avoided: int = 0
    parallel_rounds: int = 0
    parallel_tasks: int = 0
    #: PlanCache traffic for this evaluation (compiled path only)
    compile_hits: int = 0
    compile_misses: int = 0
    compile_invalidations: int = 0
    #: rule variants lowered to closures during this evaluation (0 on a
    #: warm cache), compiled firings executed, and point-fast-path leaf
    #: emissions that skipped quantifier elimination
    compiled_rules: int = 0
    compiled_firings: int = 0
    fastpath_leaves: int = 0
    #: wall-clock spent fetching/lowering compiled rules (setup overhead)
    compile_seconds: float = 0.0
    #: incremental view maintenance (:mod:`repro.core.ivm`): maintenance
    #: passes run, EDB delta sizes consumed, derived-relation churn, DRed
    #: overdeletion/rederivation traffic, counting-support clamps (0 unless
    #: the support invariant broke), strata recomputed by the fallback
    #: paths, and wall-clock spent maintaining (the bench compares this
    #: against from-scratch evaluation time)
    ivm_steps: int = 0
    ivm_inserts: int = 0
    ivm_retracts: int = 0
    ivm_derived_added: int = 0
    ivm_derived_removed: int = 0
    ivm_overdeleted: int = 0
    ivm_rederived: int = 0
    ivm_count_clamps: int = 0
    ivm_recomputed_strata: int = 0
    ivm_maintain_seconds: float = 0.0
    #: semantic-optimizer outcomes (:mod:`repro.analysis.semantic`), copied
    #: from the program's construction-time rewrite into every evaluation's
    #: stats.  Deliberately absent from ``_MERGE_FIELDS``: they describe the
    #: program, not per-round work, so folding worker/apply stats would
    #: double-count them.
    semantic_rules_subsumed: int = 0
    semantic_literals_eliminated: int = 0
    semantic_view_rewrites: int = 0
    semantic_containment_checks: int = 0
    semantic_containment_seconds: float = 0.0
    #: sharded execution (:mod:`repro.runtime.cluster`): rounds dispatched
    #: to the process pool, shard tasks shipped, shards re-dispatched
    #: (straggler speculation, crash recovery, corrupt-result retries), and
    #: worker restarts observed by the supervisor
    shard_rounds: int = 0
    shard_tasks: int = 0
    shard_redispatches: int = 0
    worker_restarts: int = 0
    #: "" normally; "in-process" when the sharded pool degraded and the
    #: engine fell back to the thread path (graceful, never an error)
    shard_fallback: str = ""
    #: demand-driven query path (:mod:`repro.core.query`): magic rules
    #: generated by the rewrite, IDB predicates that fell back to full
    #: evaluation because their derivation cone contains negation, whether
    #: the whole plan degraded to full evaluation, the restricted cone's
    #: tuple count vs the would-be full answer relation, and reuse-cache
    #: traffic.  Like the semantic_* fields these describe the query plan,
    #: not per-round work, so they are absent from ``_MERGE_FIELDS``.
    magic_rules: int = 0
    magic_fallback_predicates: tuple[str, ...] = ()
    magic_full_fallback: bool = False
    magic_cone_tuples: int = 0
    magic_reuse_hits: int = 0
    magic_reuse_misses: int = 0
    #: last cluster summary (workers alive/restarted, shards dispatched /
    #: re-dispatched) when sharded execution ran; None otherwise
    cluster: dict | None = None
    per_round_new: list[int] = field(default_factory=list)
    #: True when a budget tripped in ``partial_results="fringe"`` mode and
    #: the returned database is the last sound under-approximation
    incomplete: bool = False
    #: the tripping budget's ResourceReport (as a dict) when ``incomplete``
    budget: dict | None = None

    @property
    def ivm_rederivation_ratio(self) -> float:
        """Fraction of DRed-overdeleted tuples that were rederived.

        High values mean the deletion overestimate was mostly wrong (tuples
        had alternative derivations) -- the signature workload where counting
        would have been cheaper; 0.0 when nothing was overdeleted.
        """
        if not self.ivm_overdeleted:
            return 0.0
        return self.ivm_rederived / self.ivm_overdeleted

    @property
    def cache_hits(self) -> int:
        """Total fast-path cache hits across all three cache layers."""
        return (
            self.rename_cache_hits
            + self.complement_cache_hits
            + self.theory_cache_hits
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "iterations": self.iterations,
            "rule_firings": self.rule_firings,
            "join_steps": self.join_steps,
            "tuples_derived": self.tuples_derived,
            "tuples_added": self.tuples_added,
            "sat_checks": self.sat_checks,
            "join_prunes": self.join_prunes,
            "pin_prunes": self.pin_prunes,
            "closure_extensions": self.closure_extensions,
            "rename_cache_hits": self.rename_cache_hits,
            "rename_cache_misses": self.rename_cache_misses,
            "complement_cache_hits": self.complement_cache_hits,
            "complement_cache_misses": self.complement_cache_misses,
            "theory_cache_hits": self.theory_cache_hits,
            "theory_cache_misses": self.theory_cache_misses,
            "plans_built": self.plans_built,
            "plan_reorders": self.plan_reorders,
            "index_probes": self.index_probes,
            "index_candidates": self.index_candidates,
            "index_scan_avoided": self.index_scan_avoided,
            "parallel_rounds": self.parallel_rounds,
            "parallel_tasks": self.parallel_tasks,
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "compile_invalidations": self.compile_invalidations,
            "compiled_rules": self.compiled_rules,
            "compiled_firings": self.compiled_firings,
            "fastpath_leaves": self.fastpath_leaves,
            "compile_seconds": self.compile_seconds,
            "ivm_steps": self.ivm_steps,
            "ivm_inserts": self.ivm_inserts,
            "ivm_retracts": self.ivm_retracts,
            "ivm_derived_added": self.ivm_derived_added,
            "ivm_derived_removed": self.ivm_derived_removed,
            "ivm_overdeleted": self.ivm_overdeleted,
            "ivm_rederived": self.ivm_rederived,
            "ivm_rederivation_ratio": self.ivm_rederivation_ratio,
            "ivm_count_clamps": self.ivm_count_clamps,
            "ivm_recomputed_strata": self.ivm_recomputed_strata,
            "ivm_maintain_seconds": self.ivm_maintain_seconds,
            "semantic_rules_subsumed": self.semantic_rules_subsumed,
            "semantic_literals_eliminated": self.semantic_literals_eliminated,
            "semantic_view_rewrites": self.semantic_view_rewrites,
            "semantic_containment_checks": self.semantic_containment_checks,
            "semantic_containment_seconds": self.semantic_containment_seconds,
            "cache_hits": self.cache_hits,
            "shard_rounds": self.shard_rounds,
            "shard_tasks": self.shard_tasks,
            "shard_redispatches": self.shard_redispatches,
            "worker_restarts": self.worker_restarts,
            "shard_fallback": self.shard_fallback,
            "magic_rules": self.magic_rules,
            "magic_fallback_predicates": list(self.magic_fallback_predicates),
            "magic_full_fallback": self.magic_full_fallback,
            "magic_cone_tuples": self.magic_cone_tuples,
            "magic_reuse_hits": self.magic_reuse_hits,
            "magic_reuse_misses": self.magic_reuse_misses,
            "cluster": dict(self.cluster) if self.cluster is not None else None,
            "per_round_new": list(self.per_round_new),
            "incomplete": self.incomplete,
            "budget": dict(self.budget) if self.budget is not None else None,
        }

    #: additive counters folded from worker-local stats into the round
    #: aggregate; iteration/round bookkeeping stays with the driver
    _MERGE_FIELDS = (
        "rule_firings",
        "join_steps",
        "tuples_derived",
        "sat_checks",
        "join_prunes",
        "pin_prunes",
        "closure_extensions",
        "rename_cache_hits",
        "rename_cache_misses",
        "complement_cache_hits",
        "complement_cache_misses",
        "plans_built",
        "plan_reorders",
        "index_probes",
        "index_candidates",
        "index_scan_avoided",
        # compiler counters: workers lower variants and fire compiled rules
        # against local stats, so these fold like the join counters; the
        # PlanCache traffic counters are driver-side but merge harmlessly
        # (workers never touch them)
        "compile_hits",
        "compile_misses",
        "compile_invalidations",
        "compiled_rules",
        "compiled_firings",
        "fastpath_leaves",
        "compile_seconds",
        # ivm counters: workers never touch them mid-round, but the view's
        # cumulative stats aggregate per-apply stats with the same merge()
        "ivm_steps",
        "ivm_inserts",
        "ivm_retracts",
        "ivm_derived_added",
        "ivm_derived_removed",
        "ivm_overdeleted",
        "ivm_rederived",
        "ivm_count_clamps",
        "ivm_recomputed_strata",
        "ivm_maintain_seconds",
        # sharded-execution counters: per-shard worker stats never carry
        # them, but aggregates-of-aggregates (the ivm view's cumulative
        # stats, harness roll-ups) fold them additively like the rest
        "shard_rounds",
        "shard_tasks",
        "shard_redispatches",
        "worker_restarts",
    )

    def merge(self, other: "EvaluationStats") -> None:
        """Fold a parallel worker's counters into this aggregate."""
        for name in self._MERGE_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class _EvalCaches:
    """Per-evaluation cache and executor state (one per ``evaluate`` call).

    ``rename`` maps (relation name, body-atom args) to {id(tuple): (tuple,
    renamed atoms)}; the stored tuple reference keeps the id stable.  The
    cache is value-correct across rounds because renaming is a pure function
    of the tuple and the target argument names.

    ``complement`` maps (relation name, args, content version) to the
    complement DNF, so unchanged relations are never recomplemented.

    ``pool`` holds the evaluation's :class:`JoinIndexPool` (None when index
    probing is off or the theory has no generalized index).  ``executor`` is
    the parallel round's worker pool, created lazily on the first round that
    actually fans out and shut down by the drivers' ``finally`` via
    :meth:`close`.

    ``compiled`` is the evaluation's :class:`repro.core.compile.
    CompiledProgram` (None when ``compile_rules`` is off), fetched from the
    process-wide PlanCache at construction.  Because each ``evaluate()``
    builds a fresh ``_EvalCaches`` and the fetch keys on the *current*
    ``EngineOptions``, closures specialized for stale options can never
    leak into an evaluation whose options changed in between (the cache
    invalidates the old entry and reports it in the stats).  ``centries``
    (classified entry records per tuple), ``cscan`` (scan lists per
    relation content version) and ``cprobe`` (probe results per content
    version) are the compiled path's per-evaluation caches.

    Worker threads share this object.  The rename cache's mutations are
    single-dict operations on amortized-immutable values (atomic under the
    GIL), the complement cache is populated before the fan-out, and the
    pool takes its own lock.
    """

    __slots__ = (
        "rename",
        "complement",
        "pool",
        "workers",
        "_executor",
        "compiled",
        "centries",
        "cscan",
        "cprobe",
        "sharded_exec",
        "cluster_dead",
    )

    def __init__(
        self,
        options: EngineOptions,
        theory: ConstraintTheory,
        program: "DatalogProgram | None" = None,
        stats: EvaluationStats | None = None,
    ) -> None:
        self.rename: dict | None = {} if options.rename_cache else None
        self.complement: dict | None = {} if options.complement_cache else None
        self.pool: JoinIndexPool | None = None
        if options.index_probes:
            pool = JoinIndexPool(theory)
            self.pool = pool if pool.supported else None
        self.workers = options.parallel_workers or min(4, os.cpu_count() or 1)
        self._executor: ThreadPoolExecutor | None = None
        #: the sharded process-pool executor (repro.runtime.cluster),
        #: created lazily on the first sharded round; ``cluster_dead``
        #: latches whole-pool degradation for the rest of the evaluation
        self.sharded_exec: ShardedExecutor | None = None
        self.cluster_dead = False
        self.compiled: rulecompile.CompiledProgram | None = None
        # entry/scan caches honor the rename-cache ablation flag (they are
        # the compiled path's analogue of the interpreter's rename cache);
        # the probe cache is version-keyed and always safe
        self.centries: dict | None = {} if options.rename_cache else None
        self.cscan: dict | None = {} if options.rename_cache else None
        self.cprobe: dict | None = {}
        if program is not None and options.compile_rules:
            started = time.perf_counter()
            compiled, hit, invalidated = rulecompile.PLAN_CACHE.fetch(program)
            self.compiled = compiled
            if stats is not None:
                stats.compile_hits += 1 if hit else 0
                stats.compile_misses += 0 if hit else 1
                stats.compile_invalidations += 1 if invalidated else 0
                stats.compile_seconds += time.perf_counter() - started

    @property
    def executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-round"
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.sharded_exec is not None:
            self.sharded_exec.close()
            self.sharded_exec = None


class DatalogProgram:
    """A Datalog(+constraints) program evaluated against a generalized database."""

    def __init__(
        self,
        rules: Sequence[Rule],
        theory: ConstraintTheory,
        allow_unsafe_recursion: bool = False,
        options: EngineOptions | None = None,
        views: "dict[str, object] | None" = None,
    ) -> None:
        self.rules = list(rules)
        self.theory = theory
        self.allow_unsafe_recursion = allow_unsafe_recursion
        self.options = options if options is not None else EngineOptions()
        self.semantic_report = None
        self._check_arities()
        # the closure condition lives in repro.analysis.closure (single
        # source of truth, shared with the CQL010 lint pass)
        from repro.analysis.closure import NOT_CLOSED_MESSAGE, not_closed_recursion

        if not allow_unsafe_recursion and not_closed_recursion(self.rules, theory):
            raise NotClosedError(NOT_CLOSED_MESSAGE)
        # the semantic optimizer rewrites self.rules *before* any PlanCache
        # fetch (the cache keys on the rewritten fingerprint, so minimized
        # programs cache-hit) and before the analysis pre-flight (which then
        # sees the program it will actually run).  ``views`` maps exported
        # relation names to repro.analysis.semantic.ViewDefinition; None
        # means "no view answerability" (the ivm registry passes them in).
        if self.options.optimize_semantic and self.rules:
            from repro.analysis.semantic import optimize_program

            report = optimize_program(self.rules, theory, views=views)
            if report.changed:
                self.rules = list(report.rules)
                self._check_arities()
            self.semantic_report = report
        if self.options.analyze:
            self._preflight()

    def _preflight(self) -> None:
        """Opt-in static analysis gate (``EngineOptions(analyze=True)``).

        CQL010 is excluded: when ``allow_unsafe_recursion`` is unset the
        closure guard above already raised the dedicated
        :class:`NotClosedError`, and when it is set the caller explicitly
        opted into non-closed iteration.
        """
        from repro.analysis import analyze_program

        report = analyze_program(
            self.rules,
            self.theory,
            budget_declared=self.options.budget is not None,
        )
        errors = [d for d in report.errors() if d.code != "CQL010"]
        if errors:
            raise StaticAnalysisError(errors)

    # --------------------------------------------------------------- schema
    def idb_predicates(self) -> set[str]:
        return {rule.head.name for rule in self.rules}

    def edb_predicates(self) -> set[str]:
        used: set[str] = set()
        for rule in self.rules:
            for atom in rule.positive_atoms + rule.negative_atoms:
                used.add(atom.name)
        return used - self.idb_predicates()

    def _check_arities(self) -> None:
        arities: dict[str, int] = {}
        for rule in self.rules:
            for atom in [rule.head] + rule.positive_atoms + rule.negative_atoms:
                known = arities.get(atom.name)
                if known is not None and known != len(atom.args):
                    raise ArityError(
                        f"{atom.name} used with arities {known} and {len(atom.args)}"
                    )
                arities[atom.name] = len(atom.args)
        self.arities = arities

    def dependency_edges(self) -> set[tuple[str, str]]:
        """(head, body-predicate) edges over IDB predicates."""
        idbs = self.idb_predicates()
        edges = set()
        for rule in self.rules:
            for atom in rule.positive_atoms + rule.negative_atoms:
                if atom.name in idbs:
                    edges.add((rule.head.name, atom.name))
        return edges

    def is_recursive(self) -> bool:
        """Whether the IDB dependency graph has a cycle."""
        edges = self.dependency_edges()
        graph: dict[str, set[str]] = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
        state: dict[str, int] = {}

        def visit(node: str) -> bool:
            state[node] = 1
            for succ in graph.get(node, ()):
                mark = state.get(succ, 0)
                if mark == 1:
                    return True
                if mark == 0 and visit(succ):
                    return True
            state[node] = 2
            return False

        return any(state.get(node, 0) == 0 and visit(node) for node in graph)

    def has_negation(self) -> bool:
        return any(rule.has_negation() for rule in self.rules)

    # ------------------------------------------------------------ evaluation
    def evaluate(
        self,
        database: GeneralizedDatabase,
        max_iterations: int = 100_000,
        semi_naive: bool = True,
        semantics: str = "auto",
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        """Bottom-up evaluation to a fixpoint.

        Returns a database extended with the IDB relations, plus statistics.

        ``semantics`` selects how negation is treated:

        * ``"auto"`` (default): positive programs run semi-naive; programs
          with negation run *stratified* if stratifiable, else inflationary;
        * ``"stratified"``: stratum-by-stratum least fixpoints (negation only
          against fully-computed lower strata); raises if not stratifiable;
        * ``"inflationary"``: the paper's inflationary semantics [1, 22, 33]
          -- every round evaluates all rules against the current state and
          adds the derived facts, never retracting.

        **Resource governance.**  When ``options.budget`` is set (or an
        ambient budget was installed via
        :func:`repro.runtime.budget.supervised`), the loops tick the
        supervisor each round / join step / admitted tuple and raise
        :class:`repro.errors.BudgetExceededError` when a limit trips.  With
        ``partial_results="fringe"`` the evaluator instead returns the
        current world tagged ``stats.incomplete=True``.  That fringe is a
        *sound under-approximation* of the full answer for every semantics:

        * naive/semi-naive least fixpoints only ever add tuples entailed by
          the rules, so any prefix of the iteration is ``subseteq`` the lfp
          (Thm 3.14.1's stage construction);
        * inflationary stages are monotone by definition (Thm 3.14.2) --
          and a *partially applied* round ``S`` with ``J_i subseteq S
          subseteq J_{i+1}`` still sits below the final fixpoint;
        * stratified evaluation runs negation only against *completed*
          lower strata, so an interrupt mid-stratum leaves every derived
          tuple justified by the stratified semantics.

        The fringe can therefore be used as a partial answer (e.g. "these
        pairs are certainly connected") but never as a completeness claim.
        """
        if semantics not in ("auto", "stratified", "inflationary"):
            raise EvaluationError(f"unknown semantics {semantics!r}")
        # the join path consults the program theory's cache; the dedup path
        # (GeneralizedRelation.add) consults the database theory's cache --
        # usually the same object, but the ablation toggle and the stats
        # deltas must cover both when they differ
        caches = []
        for theory in (self.theory, database.theory):
            cache = theory.cache
            if cache is not None and all(cache is not c for c in caches):
                caches.append(cache)
        prior_enabled = [c.enabled for c in caches]
        for c in caches:
            c.enabled = self.options.theory_cache
        before = [c.stats.snapshot() for c in caches]
        budget = self.options.budget
        meter = budget.start() if budget is not None else active_meter()
        try:
            with metered(meter):
                world, stats = self._dispatch(
                    database, max_iterations, semi_naive, semantics
                )
        finally:
            for c, enabled in zip(caches, prior_enabled):
                c.enabled = enabled
        for c, (hits_before, misses_before) in zip(caches, before):
            hits, misses = c.stats.snapshot()
            stats.theory_cache_hits += hits - hits_before
            stats.theory_cache_misses += misses - misses_before
        if self.semantic_report is not None:
            semantic = self.semantic_report.stats
            stats.semantic_rules_subsumed = semantic.rules_subsumed
            stats.semantic_literals_eliminated = semantic.literals_eliminated
            stats.semantic_view_rewrites = semantic.view_rewrites
            stats.semantic_containment_checks = semantic.containment_checks
            stats.semantic_containment_seconds = semantic.containment_seconds
        return world, stats

    def _dispatch(
        self,
        database: GeneralizedDatabase,
        max_iterations: int,
        semi_naive: bool,
        semantics: str,
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        if not self.has_negation():
            if semi_naive:
                return self._evaluate_semi_naive(database, max_iterations)
            return self._evaluate_naive(database, max_iterations)
        if semantics == "inflationary":
            return self._evaluate_inflationary(database, max_iterations)
        strata = self.stratify()
        if strata is None:
            if semantics == "stratified":
                raise EvaluationError(
                    "program is not stratifiable (negation through recursion)"
                )
            return self._evaluate_inflationary(database, max_iterations)
        return self._evaluate_stratified(database, strata, max_iterations)

    def stratify(self) -> list[list[Rule]] | None:
        """Partition rules into strata, or None if not stratifiable.

        A program is stratifiable when no predicate depends negatively on
        itself through recursion: build the dependency graph with edge
        labels, reject negative edges inside a strongly connected component,
        and order components topologically.
        """
        idbs = self.idb_predicates()
        positive_edges: set[tuple[str, str]] = set()
        negative_edges: set[tuple[str, str]] = set()
        for rule in self.rules:
            for atom in rule.positive_atoms:
                if atom.name in idbs:
                    positive_edges.add((rule.head.name, atom.name))
            for atom in rule.negative_atoms:
                if atom.name in idbs:
                    negative_edges.add((rule.head.name, atom.name))
        # stratum numbers by iteration to a fixpoint (Ullman's algorithm)
        stratum = {name: 0 for name in idbs}
        changed = True
        while changed:
            changed = False
            for head, body in positive_edges:
                if stratum[head] < stratum[body]:
                    stratum[head] = stratum[body]
                    changed = True
            for head, body in negative_edges:
                if stratum[head] < stratum[body] + 1:
                    stratum[head] = stratum[body] + 1
                    changed = True
            # in a stratifiable program no stratum exceeds the predicate
            # count; a negative cycle pushes values past that bound
            if any(level > len(idbs) for level in stratum.values()):
                return None
        buckets: dict[int, list[Rule]] = {}
        for rule in self.rules:
            buckets.setdefault(stratum[rule.head.name], []).append(rule)
        return [buckets[level] for level in sorted(buckets)]

    def _evaluate_stratified(
        self,
        database: GeneralizedDatabase,
        strata: list[list[Rule]],
        max_iterations: int,
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        world = self._prepare(database)
        stats = EvaluationStats()
        caches = _EvalCaches(self.options, self.theory, program=self, stats=stats)
        try:
            for stratum_rules in strata:
                while True:
                    stats.iterations += 1
                    if stats.iterations > max_iterations:
                        raise self._diverged(max_iterations, world)
                    tick("round")
                    tasks = [(rule, None, None) for rule in stratum_rules]
                    derived = self._execute_round(tasks, world, stats, caches)
                    new_count = 0
                    for name, item in derived:
                        if world.relation(name).add(item):
                            new_count += 1
                            stats.tuples_added += 1
                    stats.per_round_new.append(new_count)
                    if new_count == 0:
                        break
        except BudgetExceededError as error:
            return self._budget_interrupt(error, world, stats)
        finally:
            caches.close()
        return world, stats

    def _prepare(self, database: GeneralizedDatabase) -> GeneralizedDatabase:
        # input materialization is free: the tuple budget meters tuples the
        # evaluation derives, not the EDB copy (which also happens before
        # the loops' fringe-interrupt handlers could return a sound stage)
        with metered(None):
            world = database.copy()
        for name in sorted(self.idb_predicates()):
            if name not in world:
                arity = self.arities[name]
                world.create_relation(name, tuple(f"_{i}" for i in range(arity)))
        return world

    def _relation_sizes(self, world: GeneralizedDatabase) -> dict[str, int]:
        """IDB relation sizes of the current stage (divergence forensics)."""
        return {
            name: len(world.relation(name))
            for name in sorted(self.idb_predicates())
            if name in world
        }

    def _diverged(
        self, max_iterations: int, world: GeneralizedDatabase
    ) -> FixpointDivergenceError:
        return FixpointDivergenceError(
            max_iterations, relation_sizes=self._relation_sizes(world)
        )

    def _budget_interrupt(
        self,
        error: BudgetExceededError,
        world: GeneralizedDatabase,
        stats: EvaluationStats,
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        """Fringe mode: return the last sound stage instead of raising.

        Only engages when the *active* budget asked for
        ``partial_results="fringe"``; any other budget trip propagates.  The
        returned world is a sound under-approximation of the full answer
        (see :meth:`evaluate` for the per-semantics argument), tagged with
        ``stats.incomplete`` and the tripping budget's resource report.
        """
        meter = active_meter()
        mode = meter.budget.partial_results if meter is not None else "raise"
        if mode != "fringe":
            raise error
        stats.incomplete = True
        report = getattr(error, "report", None)
        stats.budget = report.as_dict() if report is not None else {}
        return world, stats

    def _evaluate_naive(
        self, database: GeneralizedDatabase, max_iterations: int
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        world = self._prepare(database)
        stats = EvaluationStats()
        caches = _EvalCaches(self.options, self.theory, program=self, stats=stats)
        try:
            while True:
                stats.iterations += 1
                if stats.iterations > max_iterations:
                    raise self._diverged(max_iterations, world)
                tick("round")
                new_count = 0
                tasks = [(rule, None, None) for rule in self.rules]
                derived = self._execute_round(tasks, world, stats, caches)
                for name, item in derived:
                    if world.relation(name).add(item):
                        new_count += 1
                        stats.tuples_added += 1
                stats.per_round_new.append(new_count)
                if new_count == 0:
                    return world, stats
        except BudgetExceededError as error:
            return self._budget_interrupt(error, world, stats)
        finally:
            caches.close()

    def _evaluate_semi_naive(
        self, database: GeneralizedDatabase, max_iterations: int
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        world = self._prepare(database)
        stats = EvaluationStats()
        caches = _EvalCaches(self.options, self.theory, program=self, stats=stats)
        idbs = self.idb_predicates()
        # deltas: tuples added in the previous round
        delta: dict[str, list[GeneralizedTuple]] = {
            name: [] for name in idbs
        }
        first_round = True
        try:
            return self._semi_naive_loop(
                world, stats, caches, idbs, delta, first_round, max_iterations
            )
        except BudgetExceededError as error:
            return self._budget_interrupt(error, world, stats)
        finally:
            caches.close()

    def _semi_naive_loop(
        self,
        world: GeneralizedDatabase,
        stats: EvaluationStats,
        caches: _EvalCaches,
        idbs: set[str],
        delta: dict[str, list[GeneralizedTuple]],
        first_round: bool,
        max_iterations: int,
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        while True:
            stats.iterations += 1
            if stats.iterations > max_iterations:
                raise self._diverged(max_iterations, world)
            tick("round")
            tasks: list[tuple[Rule, dict | None, int | None]] = []
            for rule in self.rules:
                idb_positions = [
                    i
                    for i, atom in enumerate(rule.positive_atoms)
                    if atom.name in idbs
                ]
                if first_round or not idb_positions:
                    if first_round:
                        tasks.append((rule, None, None))
                    continue
                # at least one IDB body atom must come from the delta
                for delta_position in idb_positions:
                    tasks.append((rule, delta, delta_position))
            derived = self._execute_round(tasks, world, stats, caches)
            new_delta: dict[str, list[GeneralizedTuple]] = {name: [] for name in idbs}
            new_count = 0
            for name, item in derived:
                relation = world.relation(name)
                # add_canonical hands back the canonical tuple the dedup
                # already computed, so the delta reuses the stored form
                stored = relation.add_canonical(item)
                if stored is not None:
                    new_count += 1
                    stats.tuples_added += 1
                    new_delta[name].append(stored)
            stats.per_round_new.append(new_count)
            delta = new_delta
            first_round = False
            if new_count == 0:
                return world, stats

    def _evaluate_inflationary(
        self, database: GeneralizedDatabase, max_iterations: int
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        world = self._prepare(database)
        stats = EvaluationStats()
        caches = _EvalCaches(self.options, self.theory, program=self, stats=stats)
        try:
            while True:
                stats.iterations += 1
                if stats.iterations > max_iterations:
                    raise self._diverged(max_iterations, world)
                tick("round")
                tasks = [(rule, None, None) for rule in self.rules]
                derived = self._execute_round(tasks, world, stats, caches)
                new_count = 0
                for name, item in derived:
                    if world.relation(name).add(item):
                        new_count += 1
                        stats.tuples_added += 1
                stats.per_round_new.append(new_count)
                if new_count == 0:
                    return world, stats
        except BudgetExceededError as error:
            return self._budget_interrupt(error, world, stats)
        finally:
            caches.close()

    # -------------------------------------------------------- round execution
    def _execute_round(
        self,
        tasks: list[tuple[Rule, dict | None, int | None]],
        world: GeneralizedDatabase,
        stats: EvaluationStats,
        caches: _EvalCaches,
    ) -> list[tuple[str, GeneralizedTuple]]:
        """Fire every (rule, delta, delta-position) task of one round.

        The parallel path splits the task list into contiguous chunks, runs
        each chunk on the worker pool, and concatenates chunk results *in
        chunk order* -- so the derived list is element-for-element the list
        the serial path would produce, and the merge into the world (hence
        the fixpoint) is deterministic.  Each chunk runs under
        ``contextvars.copy_context()`` so the ambient budget meter and the
        chaos runtime propagate into the worker thread; a worker's
        :class:`BudgetExceededError` (or chaos fault) resurfaces here after
        all futures settle and flows into the drivers' existing handlers,
        preserving the supervisor's fringe semantics under parallelism.

        With ``options.sharded`` the round is first offered to the
        multi-process executor (:mod:`repro.runtime.cluster`), whose
        shard-order merge is byte-identical by the same argument; a
        declined round (too small to ship) or a degraded pool falls
        through to the in-process paths below.
        """
        if self.options.sharded and not caches.cluster_dead and tasks:
            sharded = self._execute_round_sharded(tasks, world, stats, caches)
            if sharded is not None:
                return sharded
        if not self.options.parallel or caches.workers <= 1 or len(tasks) <= 1:
            derived: list[tuple[str, GeneralizedTuple]] = []
            for rule, delta, delta_position in tasks:
                derived.extend(
                    self._fire(rule, world, stats, caches, delta, delta_position)
                )
            return derived
        stats.parallel_rounds += 1
        stats.parallel_tasks += len(tasks)
        # warm the complement cache in the driver thread: workers then only
        # read it, and cache hit/miss counts stay deterministic
        if caches.complement is not None:
            for rule, _delta, _position in tasks:
                for atom in rule.negative_atoms:
                    self._complement(atom, world.relation(atom.name), caches, stats)
        chunk_count = min(len(tasks), caches.workers)
        bounds = [
            (len(tasks) * i // chunk_count, len(tasks) * (i + 1) // chunk_count)
            for i in range(chunk_count)
        ]
        futures = []
        for start, stop in bounds:
            context = contextvars.copy_context()
            futures.append(
                caches.executor.submit(
                    context.run, self._fire_chunk, tasks[start:stop], world, caches
                )
            )
        derived = []
        error: BaseException | None = None
        for future in futures:
            try:
                chunk_derived, local = future.result()
            except BaseException as exc:  # budget trip, chaos fault, or bug
                if error is None:
                    error = exc
                continue
            if error is None:
                derived.extend(chunk_derived)
                stats.merge(local)
        if error is not None:
            raise error
        return derived

    def _execute_round_sharded(
        self,
        tasks: list[tuple[Rule, dict | None, int | None]],
        world: GeneralizedDatabase,
        stats: EvaluationStats,
        caches: _EvalCaches,
    ) -> list[tuple[str, GeneralizedTuple]] | None:
        """Offer one round to the process pool; ``None`` = use in-process.

        Degradation ladder: any :class:`ClusterError` (spawn failure,
        worker exhaustion after bounded restarts, retry budgets spent)
        latches ``cluster_dead``, tags the stats, and returns ``None`` so
        the caller re-executes the *whole* round in-process -- sound and
        deterministic because a round is a pure function of the world and
        delta, and no partial shard results were merged.  Budget trips
        inside workers re-raise as :class:`BudgetExceededError` and flow
        into the drivers' fringe handling unchanged.
        """
        executor = caches.sharded_exec
        if executor is None:
            try:
                executor = ShardedExecutor(self, world)
            except ClusterError:
                caches.cluster_dead = True
                stats.shard_fallback = "in-process"
                return None
            caches.sharded_exec = executor
        try:
            return executor.execute_round(tasks, world, stats)
        except ClusterError:
            caches.cluster_dead = True
            caches.sharded_exec = None
            executor.degraded = True
            stats.shard_fallback = "in-process"
            stats.cluster = executor.summary()
            executor.close()
            return None

    def _fire_chunk(
        self,
        chunk: list[tuple[Rule, dict | None, int | None]],
        world: GeneralizedDatabase,
        caches: _EvalCaches,
    ) -> tuple[list[tuple[str, GeneralizedTuple]], EvaluationStats]:
        """Worker body: fire a contiguous task chunk against local stats."""
        local = EvaluationStats()
        derived: list[tuple[str, GeneralizedTuple]] = []
        for rule, delta, delta_position in chunk:
            derived.extend(
                self._fire(rule, world, local, caches, delta, delta_position)
            )
        return derived, local

    # ------------------------------------------------------------ rule firing
    def _plan(
        self,
        positives: Sequence[RelationAtom],
        sizes: Sequence[int],
        pinned: set[str],
        stats: EvaluationStats,
    ) -> list[int]:
        """Greedy selectivity order over the rule's positive atoms.

        Atoms sharing more variables with the already-bound set join more
        selectively (every shared variable is an equi-join the pin filter
        and the index probes exploit), so pick by descending connectivity,
        breaking ties toward the smaller source and then the original
        position (determinism).  ``pinned`` seeds the bound set with the
        constants the rule's constraint atoms force.  Called once per
        (rule, round), so the order tracks the changing delta/relation
        cardinalities as the fixpoint grows.
        """
        n = len(positives)
        if n <= 1:
            return list(range(n))
        stats.plans_built += 1
        # the greedy core lives in repro.core.compile (plan_order) so the
        # compiled closures provably share the interpreter's ordering
        order = rulecompile.plan_order(
            [atom.args for atom in positives], sizes, pinned
        )
        if order != sorted(order):
            stats.plan_reorders += 1
        return order

    def _renamed_tuples(
        self,
        atom: RelationAtom,
        source: Iterable[GeneralizedTuple],
        caches: _EvalCaches,
        stats: EvaluationStats,
        want_pins: bool,
    ) -> list[tuple[tuple[Atom, ...], dict | None]]:
        """Each source tuple's atoms renamed onto the body atom's arguments,
        paired with its pinned-constant map when the pin filter is active.

        Renaming is a pure function of (tuple, target args), so results are
        cached per (relation, body-atom) pair across rounds; the cached entry
        keeps the tuple reference, pinning its id for the dict key.
        """
        theory = self.theory
        if caches.rename is None:
            return [
                (
                    renamed := tuple(t.rename(atom.args).atoms),
                    theory.pinned_constants(renamed) if want_pins else None,
                )
                for t in source
            ]
        per_atom = caches.rename.setdefault((atom.name, atom.args), {})
        renamed_list: list[tuple[tuple[Atom, ...], dict | None]] = []
        for t in source:
            entry = per_atom.get(id(t))
            if entry is None:
                renamed = tuple(t.rename(atom.args).atoms)
                pins = dict(theory.pinned_constants(renamed)) if want_pins else None
                per_atom[id(t)] = (t, renamed, pins)
                stats.rename_cache_misses += 1
            else:
                renamed, pins = entry[1], entry[2]
                if want_pins and pins is None:
                    pins = dict(theory.pinned_constants(renamed))
                    per_atom[id(t)] = (t, renamed, pins)
                stats.rename_cache_hits += 1
            renamed_list.append((renamed, pins))
        return renamed_list

    def _complement(
        self,
        atom: RelationAtom,
        relation: GeneralizedRelation,
        caches: _EvalCaches,
        stats: EvaluationStats,
    ) -> list[tuple[Atom, ...]]:
        """Complement DNF of a negated body atom, cached per content version."""
        if caches.complement is None:
            return relation_complement_dnf(relation, atom.args, self.theory)
        key = (atom.name, atom.args, relation.version)
        cached = caches.complement.get(key)
        if cached is None:
            cached = relation_complement_dnf(relation, atom.args, self.theory)
            caches.complement[key] = cached
            stats.complement_cache_misses += 1
        else:
            stats.complement_cache_hits += 1
        return cached

    def _fire(
        self,
        rule: Rule,
        world: GeneralizedDatabase,
        stats: EvaluationStats,
        caches: _EvalCaches,
        delta: dict[str, list[GeneralizedTuple]] | None = None,
        delta_position: int | None = None,
    ) -> list[tuple[str, GeneralizedTuple]]:
        """All head tuples derivable by one firing of ``rule``.

        With ``delta``/``delta_position`` set, the positive atom at that
        position draws from the delta instead of the full relation
        (semi-naive restriction).  The delta restriction survives the join
        planner's reordering because the delta source is attached to the
        atom *before* planning -- the plan permutes (atom, source) pairs.

        With ``compile_rules`` on, the firing is delegated to the rule's
        compiled closure chain (:mod:`repro.core.compile`), which enumerates
        exactly the same candidates in the same order; the interpreted body
        below is the differential oracle the compiled path is tested
        against (and the fallback for rules the cache cannot resolve).
        """
        compiled = caches.compiled
        if compiled is not None:
            fired = compiled.fire(rule, world, stats, caches, delta, delta_position)
            if fired is not None:
                return fired
        positives = rule.positive_atoms
        options = self.options
        pin_filter = options.pin_filter
        theory = self.theory
        constraints = tuple(rule.constraint_atoms)
        need_pins = pin_filter or options.join_planner
        root_pin_map = (
            dict(theory.pinned_constants(constraints)) if need_pins else {}
        )

        # (body atom, tuple source, indexable relation or None); deltas are
        # consumed once per round, so indexing them would cost more than the
        # scan they replace
        sources: list[
            tuple[RelationAtom, Iterable[GeneralizedTuple], GeneralizedRelation | None]
        ] = []
        sizes: list[int] = []
        for index, atom in enumerate(positives):
            relation = world.relation(atom.name)
            if delta is not None and index == delta_position:
                source = delta.get(atom.name, [])
                sources.append((atom, source, None))
                sizes.append(len(source))
            else:
                sources.append((atom, relation, relation))
                sizes.append(len(relation))
        if options.join_planner:
            order = self._plan(positives, sizes, set(root_pin_map), stats)
        else:
            order = list(range(len(positives)))
        plan = [sources[i] for i in order]
        negated_dnfs: list[list[tuple[Atom, ...]]] = [
            self._complement(atom, world.relation(atom.name), caches, stats)
            for atom in rule.negative_atoms
        ]
        head_vars = rule.head.args
        body_vars = rule.variables()
        drop = tuple(v for v in body_vars if v not in head_vars)
        results: list[tuple[str, GeneralizedTuple]] = []
        incremental = options.incremental_join
        pool = caches.pool
        slots = len(plan)
        #: lazily-materialized full scan lists, one per plan slot -- a slot
        #: every probe answers never pays for renaming its whole relation
        scan_lists: list[list[tuple[tuple[Atom, ...], dict | None]] | None] = [
            None
        ] * slots

        def scan_entries(slot: int) -> list[tuple[tuple[Atom, ...], dict | None]]:
            entries = scan_lists[slot]
            if entries is None:
                atom, source, _relation = plan[slot]
                entries = self._renamed_tuples(atom, source, caches, stats, pin_filter)
                scan_lists[slot] = entries
            return entries

        def probe_entries(
            slot: int, context, pins: dict | None
        ) -> list[tuple[tuple[Atom, ...], dict | None]] | None:
            """Index-backed candidates for a slot, or None to scan.

            Prefers an exact pin (probe [c, c]); otherwise asks the theory
            for interval bounds the partial conjunction forces on an
            argument variable -- only under the incremental join, where the
            context carries solver state (rebuilding a closure per probe
            would cost more than the scan it avoids).
            """
            atom, _source, relation = plan[slot]
            if relation is None or not relation:
                return None
            best = None
            if pins is not None:
                for position, var in enumerate(atom.args):
                    value = pins.get(var)
                    if isinstance(value, Fraction):
                        best = (position, value, value)
                        break
            if best is None and incremental:
                for position, var in enumerate(atom.args):
                    bounds = theory.conjunction_bounds(context, var)
                    if bounds is not None:
                        best = (position, bounds[0], bounds[1])
                        break
            if best is None:
                return None
            position, low, high = best
            candidates = pool.probe(relation, relation.variables[position], low, high)
            if candidates is None:
                return None
            stats.index_probes += 1
            stats.index_candidates += len(candidates)
            stats.index_scan_avoided += len(relation) - len(candidates)
            return self._renamed_tuples(atom, candidates, caches, stats, pin_filter)

        def fire_leaf(partial: tuple[Atom, ...]) -> None:
            for negated in self._expand_negations(negated_dnfs):
                stats.rule_firings += 1
                conjunction = partial + negated
                if negated:
                    stats.sat_checks += 1
                    if not theory.is_satisfiable(conjunction):
                        stats.join_prunes += 1
                        continue
                for eliminated in theory.eliminate(conjunction, drop):
                    stats.tuples_derived += 1
                    results.append(
                        (
                            rule.head.name,
                            GeneralizedTuple(head_vars, eliminated),
                        )
                    )

        def extend(index: int, context, pins: dict | None) -> None:
            """Depth-first join with incremental satisfiability pruning:
            a partial combination that is already inconsistent (e.g. a key
            mismatch) cuts the whole subtree of tuple choices.  With the
            incremental fast path, each level extends the parent's solver
            state (the dense-order closure) instead of re-closing the whole
            partial conjunction from scratch.  ``pins`` carries the partial
            conjunction's forced variable=constant bindings; a candidate that
            pins a shared variable to a different constant is unsatisfiable
            with the partial conjunction, so it is rejected by a dictionary
            comparison before the solver is consulted at all.  When the
            partial conjunction pins or interval-bounds one of the slot's
            variables, the slot's candidates come from the generalized
            index instead of the full scan list."""
            if index == slots:
                fire_leaf(context.atoms if incremental else context)
                return
            entries = None
            if pool is not None:
                entries = probe_entries(index, context, pins)
            if entries is None:
                entries = scan_entries(index)
            for renamed, cand_pins in entries:
                stats.join_steps += 1
                tick("join")
                if pins is not None and cand_pins:
                    conflict = False
                    for var, value in cand_pins.items():
                        known = pins.get(var, value)
                        if known != value:
                            conflict = True
                            break
                    if conflict:
                        stats.pin_prunes += 1
                        stats.join_prunes += 1
                        continue
                    child_pins = {**pins, **cand_pins}
                else:
                    child_pins = pins
                if incremental:
                    child = theory.extend_conjunction(context, renamed)
                    stats.closure_extensions += 1
                    if not child.satisfiable:
                        stats.join_prunes += 1
                        continue
                    extend(index + 1, child, child_pins)
                else:
                    candidate = context + renamed
                    stats.sat_checks += 1
                    if not theory.is_satisfiable(candidate):
                        stats.join_prunes += 1
                        continue
                    extend(index + 1, candidate, child_pins)

        root_pins = dict(root_pin_map) if pin_filter else None
        if incremental:
            root = theory.begin_conjunction(constraints)
            stats.sat_checks += 1
            if root.satisfiable:
                extend(0, root, root_pins)
        else:
            stats.sat_checks += 1
            if theory.is_satisfiable(constraints):
                extend(0, constraints, root_pins)
        return results

    @staticmethod
    def _expand_negations(
        negated_dnfs: list[list[tuple[Atom, ...]]]
    ) -> Iterable[tuple[Atom, ...]]:
        if not negated_dnfs:
            yield ()
            return
        for combo in itertools.product(*negated_dnfs):
            merged: tuple[Atom, ...] = ()
            for part in combo:
                merged = merged + part
            yield merged
