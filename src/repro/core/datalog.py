"""Datalog and inflationary Datalog-not with constraints (Sections 1.2, 3, 4).

A rule is ``head :- literals`` where the head is a database atom with
distinct variables and each body literal is a database atom, a negated
database atom (Datalog-not only), or a constraint atom of the active theory
(Definition 1.10).  The engine provides:

* **naive** and **semi-naive** bottom-up evaluation to the least fixpoint
  for positive programs -- rule firing joins the body tuples' constraint
  conjunctions, checks satisfiability, eliminates body-only variables
  (closed form!), canonicalizes, and adds the head tuple;
* **inflationary semantics** for Datalog-not (facts derived in an iteration
  are added to those of previous iterations; negated atoms are evaluated
  against the current relation by complementation), per [1, 22, 33] as the
  paper prescribes;
* a **closure guard**: recursion over the real-polynomial theory is refused
  with :class:`NotClosedError` (Example 1.12 -- the transitive closure of
  ``y = 2x`` has no finite representation); the Example 1.12 divergence
  experiment opts in via ``allow_unsafe_recursion`` + ``max_iterations``.

Termination for the dense-order and equality theories follows the paper's
argument: derived tuples are canonical conjunctions over a fixed variable
count and the fixed constant set of program + database, of which there are
finitely many (polynomially many for fixed arity -- the PTIME bound of
Theorems 3.14.2 / 4.11.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.constraints.base import ConstraintTheory
from repro.constraints.real_poly import RealPolynomialTheory
from repro.core.calculus import complement_dnf
from repro.core.generalized import (
    GeneralizedDatabase,
    GeneralizedRelation,
    GeneralizedTuple,
)
from repro.errors import (
    ArityError,
    EvaluationError,
    FixpointDivergenceError,
    NotClosedError,
)
from repro.logic.syntax import Atom, Not, RelationAtom


@dataclass(frozen=True)
class Rule:
    """``head :- body`` with constraint atoms allowed in the body."""

    head: RelationAtom
    body: tuple[object, ...]  # RelationAtom | Not(RelationAtom) | theory Atom

    def __post_init__(self) -> None:
        head_vars = set(self.head.args)
        body_vars: set[str] = set()
        for literal in self.body:
            if isinstance(literal, RelationAtom):
                body_vars |= set(literal.args)
            elif isinstance(literal, Not):
                if not isinstance(literal.child, RelationAtom):
                    raise EvaluationError(
                        "negation in rule bodies applies to database atoms only"
                    )
                body_vars |= set(literal.child.args)
            elif isinstance(literal, Atom):
                body_vars |= literal.variables()
            else:
                raise EvaluationError(f"bad body literal {literal!r}")
        missing = head_vars - body_vars
        if missing:
            raise EvaluationError(
                f"head variables {sorted(missing)} do not occur in the body "
                f"of rule {self}"
            )

    @property
    def positive_atoms(self) -> list[RelationAtom]:
        return [l for l in self.body if isinstance(l, RelationAtom)]

    @property
    def negative_atoms(self) -> list[RelationAtom]:
        return [l.child for l in self.body if isinstance(l, Not)]  # type: ignore[union-attr]

    @property
    def constraint_atoms(self) -> list[Atom]:
        return [
            l for l in self.body if isinstance(l, Atom) and not isinstance(l, RelationAtom)
        ]

    def has_negation(self) -> bool:
        return any(isinstance(l, Not) for l in self.body)

    def variables(self) -> list[str]:
        seen: list[str] = []
        for literal in self.body:
            if isinstance(literal, RelationAtom):
                names: Iterable[str] = literal.args
            elif isinstance(literal, Not):
                names = literal.child.args  # type: ignore[union-attr]
            else:
                names = sorted(literal.variables())  # type: ignore[union-attr]
            for name in names:
                if name not in seen:
                    seen.append(name)
        for name in self.head.args:
            if name not in seen:
                seen.append(name)
        return seen

    def __str__(self) -> str:
        body = ", ".join(str(l) for l in self.body)
        return f"{self.head} :- {body}"


@dataclass
class EvaluationStats:
    """Bookkeeping exposed for the data-complexity benchmarks."""

    iterations: int = 0
    rule_firings: int = 0
    tuples_derived: int = 0
    tuples_added: int = 0
    per_round_new: list[int] = field(default_factory=list)


class DatalogProgram:
    """A Datalog(+constraints) program evaluated against a generalized database."""

    def __init__(
        self,
        rules: Sequence[Rule],
        theory: ConstraintTheory,
        allow_unsafe_recursion: bool = False,
    ) -> None:
        self.rules = list(rules)
        self.theory = theory
        self.allow_unsafe_recursion = allow_unsafe_recursion
        self._check_arities()
        if (
            isinstance(theory, RealPolynomialTheory)
            and self.is_recursive()
            and not allow_unsafe_recursion
        ):
            raise NotClosedError(
                "Datalog with real polynomial constraints is not closed "
                "(Example 1.12); pass allow_unsafe_recursion=True and a "
                "max_iterations bound to experiment with divergence"
            )

    # --------------------------------------------------------------- schema
    def idb_predicates(self) -> set[str]:
        return {rule.head.name for rule in self.rules}

    def edb_predicates(self) -> set[str]:
        used: set[str] = set()
        for rule in self.rules:
            for atom in rule.positive_atoms + rule.negative_atoms:
                used.add(atom.name)
        return used - self.idb_predicates()

    def _check_arities(self) -> None:
        arities: dict[str, int] = {}
        for rule in self.rules:
            for atom in [rule.head] + rule.positive_atoms + rule.negative_atoms:
                known = arities.get(atom.name)
                if known is not None and known != len(atom.args):
                    raise ArityError(
                        f"{atom.name} used with arities {known} and {len(atom.args)}"
                    )
                arities[atom.name] = len(atom.args)
        self.arities = arities

    def dependency_edges(self) -> set[tuple[str, str]]:
        """(head, body-predicate) edges over IDB predicates."""
        idbs = self.idb_predicates()
        edges = set()
        for rule in self.rules:
            for atom in rule.positive_atoms + rule.negative_atoms:
                if atom.name in idbs:
                    edges.add((rule.head.name, atom.name))
        return edges

    def is_recursive(self) -> bool:
        """Whether the IDB dependency graph has a cycle."""
        edges = self.dependency_edges()
        graph: dict[str, set[str]] = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
        state: dict[str, int] = {}

        def visit(node: str) -> bool:
            state[node] = 1
            for succ in graph.get(node, ()):
                mark = state.get(succ, 0)
                if mark == 1:
                    return True
                if mark == 0 and visit(succ):
                    return True
            state[node] = 2
            return False

        return any(state.get(node, 0) == 0 and visit(node) for node in graph)

    def has_negation(self) -> bool:
        return any(rule.has_negation() for rule in self.rules)

    # ------------------------------------------------------------ evaluation
    def evaluate(
        self,
        database: GeneralizedDatabase,
        max_iterations: int = 100_000,
        semi_naive: bool = True,
        semantics: str = "auto",
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        """Bottom-up evaluation to a fixpoint.

        Returns a database extended with the IDB relations, plus statistics.

        ``semantics`` selects how negation is treated:

        * ``"auto"`` (default): positive programs run semi-naive; programs
          with negation run *stratified* if stratifiable, else inflationary;
        * ``"stratified"``: stratum-by-stratum least fixpoints (negation only
          against fully-computed lower strata); raises if not stratifiable;
        * ``"inflationary"``: the paper's inflationary semantics [1, 22, 33]
          -- every round evaluates all rules against the current state and
          adds the derived facts, never retracting.
        """
        if semantics not in ("auto", "stratified", "inflationary"):
            raise EvaluationError(f"unknown semantics {semantics!r}")
        if not self.has_negation():
            if semi_naive:
                return self._evaluate_semi_naive(database, max_iterations)
            return self._evaluate_naive(database, max_iterations)
        if semantics == "inflationary":
            return self._evaluate_inflationary(database, max_iterations)
        strata = self.stratify()
        if strata is None:
            if semantics == "stratified":
                raise EvaluationError(
                    "program is not stratifiable (negation through recursion)"
                )
            return self._evaluate_inflationary(database, max_iterations)
        return self._evaluate_stratified(database, strata, max_iterations)

    def stratify(self) -> list[list[Rule]] | None:
        """Partition rules into strata, or None if not stratifiable.

        A program is stratifiable when no predicate depends negatively on
        itself through recursion: build the dependency graph with edge
        labels, reject negative edges inside a strongly connected component,
        and order components topologically.
        """
        idbs = self.idb_predicates()
        positive_edges: set[tuple[str, str]] = set()
        negative_edges: set[tuple[str, str]] = set()
        for rule in self.rules:
            for atom in rule.positive_atoms:
                if atom.name in idbs:
                    positive_edges.add((rule.head.name, atom.name))
            for atom in rule.negative_atoms:
                if atom.name in idbs:
                    negative_edges.add((rule.head.name, atom.name))
        # stratum numbers by iteration to a fixpoint (Ullman's algorithm)
        stratum = {name: 0 for name in idbs}
        changed = True
        while changed:
            changed = False
            for head, body in positive_edges:
                if stratum[head] < stratum[body]:
                    stratum[head] = stratum[body]
                    changed = True
            for head, body in negative_edges:
                if stratum[head] < stratum[body] + 1:
                    stratum[head] = stratum[body] + 1
                    changed = True
            # in a stratifiable program no stratum exceeds the predicate
            # count; a negative cycle pushes values past that bound
            if any(level > len(idbs) for level in stratum.values()):
                return None
        buckets: dict[int, list[Rule]] = {}
        for rule in self.rules:
            buckets.setdefault(stratum[rule.head.name], []).append(rule)
        return [buckets[level] for level in sorted(buckets)]

    def _evaluate_stratified(
        self,
        database: GeneralizedDatabase,
        strata: list[list[Rule]],
        max_iterations: int,
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        world = self._prepare(database)
        stats = EvaluationStats()
        for stratum_rules in strata:
            while True:
                stats.iterations += 1
                if stats.iterations > max_iterations:
                    raise FixpointDivergenceError(max_iterations)
                derived: list[tuple[str, GeneralizedTuple]] = []
                for rule in stratum_rules:
                    derived.extend(self._fire(rule, world, stats))
                new_count = 0
                for name, item in derived:
                    if world.relation(name).add(item):
                        new_count += 1
                        stats.tuples_added += 1
                stats.per_round_new.append(new_count)
                if new_count == 0:
                    break
        return world, stats

    def _prepare(self, database: GeneralizedDatabase) -> GeneralizedDatabase:
        world = database.copy()
        for name in sorted(self.idb_predicates()):
            if name not in world:
                arity = self.arities[name]
                world.create_relation(name, tuple(f"_{i}" for i in range(arity)))
        return world

    def _evaluate_naive(
        self, database: GeneralizedDatabase, max_iterations: int
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        world = self._prepare(database)
        stats = EvaluationStats()
        while True:
            stats.iterations += 1
            if stats.iterations > max_iterations:
                raise FixpointDivergenceError(max_iterations)
            new_count = 0
            derived: list[tuple[str, GeneralizedTuple]] = []
            for rule in self.rules:
                derived.extend(self._fire(rule, world, stats))
            for name, item in derived:
                if world.relation(name).add(item):
                    new_count += 1
                    stats.tuples_added += 1
            stats.per_round_new.append(new_count)
            if new_count == 0:
                return world, stats

    def _evaluate_semi_naive(
        self, database: GeneralizedDatabase, max_iterations: int
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        world = self._prepare(database)
        stats = EvaluationStats()
        idbs = self.idb_predicates()
        # deltas: tuples added in the previous round
        delta: dict[str, list[GeneralizedTuple]] = {
            name: [] for name in idbs
        }
        first_round = True
        while True:
            stats.iterations += 1
            if stats.iterations > max_iterations:
                raise FixpointDivergenceError(max_iterations)
            derived: list[tuple[str, GeneralizedTuple]] = []
            for rule in self.rules:
                idb_positions = [
                    i
                    for i, atom in enumerate(rule.positive_atoms)
                    if atom.name in idbs
                ]
                if first_round or not idb_positions:
                    if first_round:
                        derived.extend(self._fire(rule, world, stats))
                    continue
                # at least one IDB body atom must come from the delta
                for delta_position in idb_positions:
                    derived.extend(
                        self._fire(rule, world, stats, delta, delta_position)
                    )
            new_delta: dict[str, list[GeneralizedTuple]] = {name: [] for name in idbs}
            new_count = 0
            for name, item in derived:
                relation = world.relation(name)
                if relation.add(item):
                    new_count += 1
                    stats.tuples_added += 1
                    canonical = self.theory.canonicalize(
                        item.rename(relation.variables).atoms
                    )
                    if canonical is not None:
                        new_delta[name].append(
                            GeneralizedTuple(relation.variables, canonical)
                        )
            stats.per_round_new.append(new_count)
            delta = new_delta
            first_round = False
            if new_count == 0:
                return world, stats

    def _evaluate_inflationary(
        self, database: GeneralizedDatabase, max_iterations: int
    ) -> tuple[GeneralizedDatabase, EvaluationStats]:
        world = self._prepare(database)
        stats = EvaluationStats()
        while True:
            stats.iterations += 1
            if stats.iterations > max_iterations:
                raise FixpointDivergenceError(max_iterations)
            derived: list[tuple[str, GeneralizedTuple]] = []
            for rule in self.rules:
                derived.extend(self._fire(rule, world, stats))
            new_count = 0
            for name, item in derived:
                if world.relation(name).add(item):
                    new_count += 1
                    stats.tuples_added += 1
            stats.per_round_new.append(new_count)
            if new_count == 0:
                return world, stats

    # ------------------------------------------------------------ rule firing
    def _fire(
        self,
        rule: Rule,
        world: GeneralizedDatabase,
        stats: EvaluationStats,
        delta: dict[str, list[GeneralizedTuple]] | None = None,
        delta_position: int | None = None,
    ) -> list[tuple[str, GeneralizedTuple]]:
        """All head tuples derivable by one firing of ``rule``.

        With ``delta``/``delta_position`` set, the positive atom at that
        position draws from the delta instead of the full relation
        (semi-naive restriction).
        """
        positives = rule.positive_atoms
        choice_lists: list[list[tuple[RelationAtom, GeneralizedTuple]]] = []
        for index, atom in enumerate(positives):
            relation = world.relation(atom.name)
            if delta is not None and index == delta_position:
                source: Iterable[GeneralizedTuple] = delta.get(atom.name, [])
            else:
                source = relation
            choice_lists.append([(atom, t) for t in source])
        negated_dnfs: list[list[tuple[Atom, ...]]] = []
        for atom in rule.negative_atoms:
            relation = world.relation(atom.name)
            renamed = [tuple(t.rename(atom.args).atoms) for t in relation]
            negated_dnfs.append(complement_dnf(renamed, self.theory))
        constraints = tuple(rule.constraint_atoms)
        head_vars = rule.head.args
        body_vars = rule.variables()
        drop = tuple(v for v in body_vars if v not in head_vars)
        results: list[tuple[str, GeneralizedTuple]] = []

        def extend(index: int, partial: tuple[Atom, ...]) -> None:
            """Depth-first join with incremental satisfiability pruning:
            a partial combination that is already inconsistent (e.g. a key
            mismatch) cuts the whole subtree of tuple choices."""
            if index == len(choice_lists):
                for negated in self._expand_negations(negated_dnfs):
                    stats.rule_firings += 1
                    conjunction = partial + negated
                    if negated and not self.theory.is_satisfiable(conjunction):
                        continue
                    for eliminated in self.theory.eliminate(conjunction, drop):
                        stats.tuples_derived += 1
                        results.append(
                            (
                                rule.head.name,
                                GeneralizedTuple(head_vars, eliminated),
                            )
                        )
                return
            for atom, item in choice_lists[index]:
                candidate = partial + tuple(item.rename(atom.args).atoms)
                stats.rule_firings += 1
                if not self.theory.is_satisfiable(candidate):
                    continue
                extend(index + 1, candidate)

        if self.theory.is_satisfiable(constraints):
            extend(0, constraints)
        return results

    @staticmethod
    def _expand_negations(
        negated_dnfs: list[list[tuple[Atom, ...]]]
    ) -> Iterable[tuple[Atom, ...]]:
        if not negated_dnfs:
            yield ()
            return
        for combo in itertools.product(*negated_dnfs):
            merged: tuple[Atom, ...] = ()
            for part in combo:
                merged = merged + part
            yield merged
