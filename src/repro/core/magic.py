"""Magic-set rewriting for Datalog + constraints.

The paper cites Ramakrishnan's magic templates [44] as prior work on
constraint-aware evaluation and asks in Section 6(3) how "various
optimization methods combine with our framework".  This module implements
the magic-set transformation in the generalized setting and is the engine's
demand-driven query front end (see :mod:`repro.core.query` for the
``Engine`` facade): given a query ``q(args)`` with some argument positions
*bound*, the program is rewritten so that bottom-up evaluation only derives
facts *relevant* to those bindings.

Bindings are **constraint bindings**, not just constants: a bound position
carries an arbitrary satisfiable conjunction of single-variable constraint
atoms of the active theory -- a dense-order interval (``3 < x and x < 5``),
an equality with a constant, a boolean element equation.  The bindings are
seeded into the query's magic predicate as one *generalized tuple*, so the
same engine evaluates the rewritten program unchanged: sideways information
passing is the ordinary constraint join, which conjoins the seed's atoms
onto every derivation it guards (projection/propagation happen through
``theory.canonicalize`` and are probed via ``theory.conjunction_bounds``
exactly like any other conjunction on the fast path).

Construction (left-to-right sideways information passing):

* every IDB predicate occurrence gets an *adornment* -- a b/f string marking
  which argument positions are bound;
* each rule for an adorned predicate ``p^a`` is guarded by a body atom
  ``magic_p^a(bound args)``;
* for each IDB atom ``r`` in a rule body, a *magic rule* derives
  ``magic_r^b`` from the guard plus the literals to its left;
* the query's bindings seed the magic predicate of the query.

**Negation.**  The classical transformation is defined for positive
programs; :func:`magic_rewrite` still raises on any negation.  The planner
:func:`magic_plan` instead *restricts the rewrite to the negation-free
part*: every predicate whose derivation cone contains a negated literal
(equivalently: every predicate in a stratum at or above a negation) is
evaluated in full -- its rules are carried over untouched and it is treated
as an EDB relation by the adornment -- while the negation-free cone above
it is still magic-restricted.  When the query predicate itself sits in a
negation stratum (or the program is not stratifiable, or inflationary
semantics was requested for a program with negation) the plan degrades to
full evaluation.  Either way the answers are exactly the full-fixpoint
answers filtered by the bindings -- the fallback is never wrong, and it is
tagged in ``EvaluationStats`` (``magic_fallback_predicates`` /
``magic_full_fallback``).

Soundness/completeness relative to the unrewritten program restricted to
the query bindings is the classical theorem, lifted tuple-for-tuple to
generalized relations: the magic guard conjoins the seed's constraint atoms
onto every guarded derivation, so the adorned fixpoint contains a canonical
tuple for every full-fixpoint tuple satisfiable with the bindings, and the
final binding selection (:func:`select_answers`) canonicalizes both sides
onto the same forms.  The differential conformance strategy (``magic``) and
the hypothesis property suite check it by direct comparison against the
plain engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Sequence, cast

from repro.constraints.base import ConstraintTheory
from repro.core.datalog import DatalogProgram, Rule
from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation
from repro.errors import EvaluationError
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    Formula,
    Not,
    RelationAtom,
)

#: the placeholder variable a :class:`Binding`'s atoms constrain
SLOT = "__q"


def _slot(position: int) -> str:
    """The per-position placeholder variable used by residual constraints."""
    return f"__q{position}"


@dataclass(frozen=True)
class Binding:
    """A per-position constraint binding: atoms over the :data:`SLOT` variable.

    A binding is any satisfiable conjunction of constraint atoms mentioning
    only one variable -- an equality with a constant (the classical magic
    binding), a dense-order interval, a boolean element equation, or raw
    theory atoms supplied through :meth:`of`.
    """

    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        for atom in self.atoms:
            loose = atom.variables() - {SLOT}
            if loose:
                raise EvaluationError(
                    f"binding atom {atom} mentions variables {sorted(loose)}; "
                    f"bindings constrain the single placeholder {SLOT!r}"
                )

    @classmethod
    def equal(cls, theory: ConstraintTheory, value: object) -> "Binding":
        """Bind the position to one constant (the classical magic binding)."""
        return cls((theory.equality(SLOT, theory.constant(value)),))

    @classmethod
    def interval(
        cls,
        low: object | None = None,
        high: object | None = None,
        *,
        strict_low: bool = False,
        strict_high: bool = False,
    ) -> "Binding":
        """A dense-order interval binding ``low (<|<=) x (<|<=) high``."""
        from repro.constraints.dense_order import le, lt

        atoms: list[Atom] = []
        if low is not None:
            bound = Fraction(cast(Any, low))
            atoms.append(lt(bound, SLOT) if strict_low else le(bound, SLOT))
        if high is not None:
            bound = Fraction(cast(Any, high))
            atoms.append(lt(SLOT, bound) if strict_high else le(SLOT, bound))
        if not atoms:
            raise EvaluationError("an interval binding needs at least one endpoint")
        return cls(tuple(atoms))

    @classmethod
    def of(cls, variable: str, atoms: Iterable[Atom]) -> "Binding":
        """Wrap single-variable atoms over ``variable`` as a binding."""
        mapping = {variable: SLOT}
        return cls(tuple(atom.rename(mapping) for atom in atoms))

    def atoms_for(self, variable: str) -> tuple[Atom, ...]:
        """The binding atoms renamed onto a concrete variable."""
        mapping = {SLOT: variable}
        return tuple(atom.rename(mapping) for atom in self.atoms)

    def canonical_key(self, theory: ConstraintTheory) -> frozenset[Atom] | None:
        """Canonical identity of the binding; ``None`` when unsatisfiable."""
        canonical = theory.canonicalize(self.atoms)
        return None if canonical is None else frozenset(canonical)

    def bounds(self, theory: ConstraintTheory) -> tuple[Any, Any] | None:
        """The ``(low, high)`` interval the binding pins, where decidable.

        Sideways information passing in the reuse cache and the stats
        reports read the projected constraint off the theory's
        ``conjunction_bounds`` -- the same sound probing interface the
        index-backed join uses.
        """
        return theory.conjunction_bounds(self.atoms, SLOT)


def as_binding(theory: ConstraintTheory, value: object) -> Binding:
    """Coerce a raw constant (the seed module's calling convention) or pass
    a :class:`Binding` through unchanged."""
    if isinstance(value, Binding):
        return value
    return Binding.equal(theory, value)


@dataclass(frozen=True)
class MagicQuery:
    """A query ``predicate(args)`` with some positions bound.

    ``bindings`` maps argument positions (0-based) to either a
    :class:`Binding` or a raw domain constant (coerced to an equality
    binding).  ``equalities`` lists position pairs the query forces equal
    (a goal atom with a repeated variable, e.g. ``T(x, x)``); bound
    positions propagate their bindings across these pairs, so repeated
    variables *strengthen* the adornment instead of mis-adorning it.
    ``residual`` holds goal constraints relating several positions (atoms
    over the :func:`_slot` placeholder variables); they do not adorn but
    are applied by the final selection.
    """

    predicate: str
    arity: int
    bindings: dict[int, Any]
    equalities: tuple[tuple[int, int], ...] = ()
    residual: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        for position in self.bindings:
            if not 0 <= position < self.arity:
                raise EvaluationError(
                    f"binding position {position} out of range for "
                    f"{self.predicate}/{self.arity}"
                )
        for left, right in self.equalities:
            if not (0 <= left < self.arity and 0 <= right < self.arity):
                raise EvaluationError(
                    f"equality positions ({left}, {right}) out of range for "
                    f"{self.predicate}/{self.arity}"
                )
        slots = {_slot(i) for i in range(self.arity)}
        for atom in self.residual:
            loose = atom.variables() - slots
            if loose:
                raise EvaluationError(
                    f"residual atom {atom} mentions {sorted(loose)}; residual "
                    "constraints range over the positional slot variables"
                )

    # ------------------------------------------------------------ adornment
    def _position_classes(self) -> list[set[int]]:
        """Union-find closure of the equality pairs over positions."""
        parent = list(range(self.arity))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for left, right in self.equalities:
            parent[find(left)] = find(right)
        classes: dict[int, set[int]] = {}
        for i in range(self.arity):
            classes.setdefault(find(i), set()).add(i)
        return list(classes.values())

    def bound_positions(self) -> tuple[int, ...]:
        """Positions the rewrite adorns bound: explicit bindings plus every
        position forced equal to a bound one."""
        bound = set(self.bindings)
        for cls_ in self._position_classes():
            if cls_ & bound:
                bound |= cls_
        return tuple(sorted(bound))

    @property
    def adornment(self) -> str:
        bound = set(self.bound_positions())
        return "".join("b" if i in bound else "f" for i in range(self.arity))

    # ------------------------------------------------------- normalization
    def normalized_bindings(self, theory: ConstraintTheory) -> dict[int, Binding]:
        """Per-position bindings with equality propagation applied.

        Positions in one equality class share the *conjunction* of every
        binding in the class -- sound (the answers satisfy all of them) and
        strictly more restrictive than adorning only the explicit bindings.
        """
        explicit = {
            position: as_binding(theory, value)
            for position, value in self.bindings.items()
        }
        merged: dict[int, Binding] = dict(explicit)
        for cls_ in self._position_classes():
            atoms: tuple[Atom, ...] = ()
            for position in sorted(cls_):
                if position in explicit:
                    atoms = atoms + explicit[position].atoms
            if atoms:
                for position in cls_:
                    merged[position] = Binding(atoms)
        return merged

    def selection_atoms(self, variables: Sequence[str], theory: ConstraintTheory) -> tuple[Atom, ...]:
        """The selection the query applies to answer tuples over ``variables``:
        every binding's atoms, the equality pairs, and the residual."""
        if len(variables) != self.arity:
            raise EvaluationError(
                f"selection arity mismatch: {self.predicate}/{self.arity} "
                f"vs variables {tuple(variables)}"
            )
        atoms: list[Atom] = []
        for position, binding in sorted(self.normalized_bindings(theory).items()):
            atoms.extend(binding.atoms_for(variables[position]))
        for left, right in self.equalities:
            atoms.append(theory.equality(variables[left], variables[right]))
        slot_map = {_slot(i): variables[i] for i in range(self.arity)}
        for atom in self.residual:
            atoms.append(atom.rename(slot_map))
        return tuple(atoms)


def _magic_name(predicate: str, adornment: str) -> str:
    return f"_magic_{predicate}_{adornment}"


def _adorned_name(predicate: str, adornment: str) -> str:
    return f"{predicate}__{adornment}"


# -------------------------------------------------------------- goal parsing
def _split_goal_conjuncts(text: str) -> str:
    """Rewrite rule-body comma syntax (``T(x, y), x < 5``) into the calculus
    parser's ``and`` syntax, respecting parenthesis depth."""
    out: list[str] = []
    depth = 0
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            out.append(" and ")
        else:
            out.append(ch)
    return "".join(out)


def parse_goal(text: str, theory: ConstraintTheory) -> MagicQuery:
    """Parse a textual goal -- ``T(0, y)``, ``T(x, y), 3 < x, x < 5``,
    ``T(x, x)`` -- into a :class:`MagicQuery`.

    The goal is one relation atom plus optional constraint atoms.  Constants
    and repeated variables in the atom become equality constraints (the
    parser's Definition 1.6 convention), which this function folds back into
    per-position bindings and position equalities; single-variable
    constraints become constraint bindings on their position; constraints
    relating several positions go to the residual selection.
    """
    from repro.logic.parser import parse_query

    formula = parse_query(_split_goal_conjuncts(text), theory)
    conjuncts: list[Formula] = []

    def flatten(node: Formula) -> None:
        if isinstance(node, Exists):
            flatten(node.child)
        elif isinstance(node, And):
            for child in node.children:
                flatten(child)
        else:
            conjuncts.append(node)

    flatten(formula)
    relation_atoms = [c for c in conjuncts if isinstance(c, RelationAtom)]
    if len(relation_atoms) != 1:
        raise EvaluationError(
            f"a goal is one relation atom plus constraints; got {text!r}"
        )
    if any(isinstance(c, Not) for c in conjuncts):
        raise EvaluationError("goals cannot be negated")
    goal_atom = relation_atoms[0]
    positions = {var: i for i, var in enumerate(goal_atom.args)}
    bindings: dict[int, list[Atom]] = {}
    equalities: list[tuple[int, int]] = []
    residual: list[Atom] = []
    for conjunct in conjuncts:
        if conjunct is goal_atom:
            continue
        if not isinstance(conjunct, Atom):
            raise EvaluationError(
                f"unsupported goal constraint {conjunct} (no quantifiers or "
                "disjunction in goals)"
            )
        used = conjunct.variables()
        loose = used - set(positions)
        if loose:
            raise EvaluationError(
                f"goal constraint {conjunct} mentions {sorted(loose)}, which "
                f"are not arguments of {goal_atom.name}"
            )
        if len(used) == 1:
            (variable,) = used
            bindings.setdefault(positions[variable], []).append(conjunct)
            continue
        if len(used) == 2:
            left, right = sorted(used)
            if conjunct in (
                theory.equality(left, right),
                theory.equality(right, left),
            ):
                equalities.append((positions[left], positions[right]))
                continue
        slot_map = {var: _slot(positions[var]) for var in used}
        residual.append(conjunct.rename(slot_map))
    return MagicQuery(
        predicate=goal_atom.name,
        arity=len(goal_atom.args),
        bindings={
            position: Binding.of(goal_atom.args[position], atoms)
            for position, atoms in bindings.items()
        },
        equalities=tuple(equalities),
        residual=tuple(residual),
    )


# ------------------------------------------------------------------ planning
@dataclass
class MagicPlan:
    """The rewrite decision for one query against one program.

    ``rules`` is the program to evaluate, ``answer`` the predicate holding
    the (pre-selection) answers.  ``seed_name``/``seed_positions`` describe
    the magic seed relation (``None`` when nothing is seeded -- the all-free
    query or a full fallback).  ``fallback_predicates`` lists predicates
    evaluated without magic restriction because their derivation cone
    contains negation; ``full_fallback`` marks plans that degrade to plain
    full evaluation.
    """

    rules: list[Rule]
    answer: str
    adornment: str
    seed_name: str | None = None
    seed_positions: tuple[int, ...] = ()
    magic_rules: int = 0
    fallback_predicates: tuple[str, ...] = ()
    full_fallback: bool = False


def _stratifiable(rules: Sequence[Rule]) -> bool:
    """Ullman's stratum-number iteration (no negative cycle)."""
    idbs = {rule.head.name for rule in rules}
    positive: set[tuple[str, str]] = set()
    negative: set[tuple[str, str]] = set()
    for rule in rules:
        for atom in rule.positive_atoms:
            if atom.name in idbs:
                positive.add((rule.head.name, atom.name))
        for atom in rule.negative_atoms:
            if atom.name in idbs:
                negative.add((rule.head.name, atom.name))
    stratum = {name: 0 for name in idbs}
    changed = True
    while changed:
        changed = False
        for head, body in positive:
            if stratum[head] < stratum[body]:
                stratum[head] = stratum[body]
                changed = True
        for head, body in negative:
            if stratum[head] < stratum[body] + 1:
                stratum[head] = stratum[body] + 1
                changed = True
        if any(level > len(idbs) for level in stratum.values()):
            return False
    return True


def _negation_cone(rules: Sequence[Rule]) -> set[str]:
    """IDB predicates whose derivation requires full evaluation: heads of
    negated-body rules plus everything they (transitively) depend on.

    The set is downward-closed over both polarities: a predicate evaluated
    in full needs its whole input cone evaluated in full too.
    """
    idbs = {rule.head.name for rule in rules}
    by_head: dict[str, list[Rule]] = {}
    for rule in rules:
        by_head.setdefault(rule.head.name, []).append(rule)
    cone = {rule.head.name for rule in rules if rule.has_negation()}
    pending = list(cone)
    while pending:
        predicate = pending.pop()
        for rule in by_head.get(predicate, []):
            for atom in rule.positive_atoms + rule.negative_atoms:
                if atom.name in idbs and atom.name not in cone:
                    cone.add(atom.name)
                    pending.append(atom.name)
    return cone


def _reachable(rules: Sequence[Rule], start: str) -> set[str]:
    """IDB predicates reachable from ``start`` through rule bodies."""
    idbs = {rule.head.name for rule in rules}
    by_head: dict[str, list[Rule]] = {}
    for rule in rules:
        by_head.setdefault(rule.head.name, []).append(rule)
    seen = {start}
    pending = [start]
    while pending:
        predicate = pending.pop()
        for rule in by_head.get(predicate, []):
            for atom in rule.positive_atoms + rule.negative_atoms:
                if atom.name in idbs and atom.name not in seen:
                    seen.add(atom.name)
                    pending.append(atom.name)
    return seen


def magic_plan(
    rules: Sequence[Rule],
    query: MagicQuery,
    theory: ConstraintTheory,
    semantics: str = "auto",
) -> MagicPlan:
    """Plan the demand-driven evaluation of ``query`` against ``rules``.

    Restricts the magic rewrite to the negation-free part of the program
    (see the module docstring); degrades to a tagged full-evaluation plan
    whenever the rewrite would not be sound.
    """
    idbs = {rule.head.name for rule in rules}
    if query.predicate not in idbs:
        raise EvaluationError(f"{query.predicate} is not an IDB predicate")
    bound = query.bound_positions()
    adornment = query.adornment
    if not bound:
        # an all-free query *is* full evaluation; no renames, no seed --
        # and sharing the original rule list verbatim lets the plan cache
        # share one compiled plan with plain ``evaluate`` calls
        return MagicPlan(
            rules=list(rules), answer=query.predicate, adornment=adornment
        )
    # only the subprogram reachable from the query matters; negation in an
    # unreachable rule must not force a fallback
    reachable = _reachable(rules, query.predicate)
    relevant = [rule for rule in rules if rule.head.name in reachable]
    full = MagicPlan(
        rules=relevant,
        answer=query.predicate,
        adornment=adornment,
        full_fallback=True,
        fallback_predicates=tuple(sorted(reachable)),
    )
    has_negation = any(rule.has_negation() for rule in relevant)
    if has_negation and (
        semantics == "inflationary" or not _stratifiable(relevant)
    ):
        return full
    cone = _negation_cone(relevant) if has_negation else set()
    if query.predicate in cone:
        return full
    rewritten, magic_count = _rewrite(relevant, query, reachable - cone)
    for rule in relevant:
        if rule.head.name in cone:
            rewritten.append(rule)
    return MagicPlan(
        rules=rewritten,
        answer=_adorned_name(query.predicate, adornment),
        adornment=adornment,
        seed_name=_magic_name(query.predicate, adornment),
        seed_positions=bound,
        magic_rules=magic_count,
        fallback_predicates=tuple(sorted(cone)),
    )


def magic_rewrite(
    rules: Sequence[Rule], query: MagicQuery, theory: ConstraintTheory
) -> tuple[list[Rule], str]:
    """Rewrite ``rules`` for the given query; returns (rules, answer predicate).

    Negation is not supported here (the classical transformation is defined
    for positive programs) and raises; :func:`magic_plan` is the
    negation-aware front end.  An all-free query returns the original
    program unchanged -- there is nothing to restrict, so renaming every
    predicate would only defeat plan-cache sharing with full evaluation.
    """
    for rule in rules:
        if rule.has_negation():
            raise EvaluationError("magic sets are defined for positive programs")
    idbs = {rule.head.name for rule in rules}
    if query.predicate not in idbs:
        raise EvaluationError(f"{query.predicate} is not an IDB predicate")
    if not query.bound_positions():
        return list(rules), query.predicate
    rewritten, _count = _rewrite(rules, query, idbs)
    return rewritten, _adorned_name(query.predicate, query.adornment)


def _rewrite(
    rules: Sequence[Rule], query: MagicQuery, idbs: set[str]
) -> tuple[list[Rule], int]:
    """The adornment-driven rewrite over ``idbs``; returns (rules, magic rules)."""
    rules_by_head: dict[str, list[Rule]] = {}
    for rule in rules:
        rules_by_head.setdefault(rule.head.name, []).append(rule)
    rewritten: list[Rule] = []
    magic_count = 0
    processed: set[tuple[str, str]] = set()
    pending: list[tuple[str, str]] = [(query.predicate, query.adornment)]
    while pending:
        predicate, adornment = pending.pop()
        if (predicate, adornment) in processed:
            continue
        processed.add((predicate, adornment))
        for rule in rules_by_head.get(predicate, []):
            new_rules, new_magic = _rewrite_rule(rule, adornment, idbs, pending)
            rewritten.extend(new_rules)
            magic_count += new_magic
    return rewritten, magic_count


def _rewrite_rule(
    rule: Rule,
    adornment: str,
    idbs: set[str],
    pending: list[tuple[str, str]],
) -> tuple[list[Rule], int]:
    head_vars = rule.head.args
    bound_positions = [i for i, mark in enumerate(adornment) if mark == "b"]
    bound_vars = {head_vars[i] for i in bound_positions}
    guard = RelationAtom(
        _magic_name(rule.head.name, adornment),
        tuple(head_vars[i] for i in bound_positions),
    ) if bound_positions else None

    new_rules: list[Rule] = []
    magic_count = 0
    prefix: list[object] = [guard] if guard else []
    known = set(bound_vars)
    body_out: list[object] = list(prefix)
    for literal in rule.body:
        if isinstance(literal, RelationAtom) and literal.name in idbs:
            # adorn by currently-known variables (left-to-right SIP)
            sub_adornment = "".join(
                "b" if arg in known else "f" for arg in literal.args
            )
            sub_bound = [
                arg for arg, mark in zip(literal.args, sub_adornment) if mark == "b"
            ]
            if sub_bound:
                magic_head = RelationAtom(
                    _magic_name(literal.name, sub_adornment), tuple(sub_bound)
                )
                new_rules.append(
                    Rule(magic_head, tuple(body_out) or _seed_body(magic_head))
                )
                magic_count += 1
            pending.append((literal.name, sub_adornment))
            body_out.append(
                RelationAtom(_adorned_name(literal.name, sub_adornment), literal.args)
            )
            known |= set(literal.args)
        elif isinstance(literal, RelationAtom):
            body_out.append(literal)
            known |= set(literal.args)
        else:
            assert isinstance(literal, Atom)
            body_out.append(literal)
            known |= literal.variables()
    adorned_head = RelationAtom(
        _adorned_name(rule.head.name, adornment), head_vars
    )
    new_rules.append(Rule(adorned_head, tuple(body_out)))
    return new_rules, magic_count


def _seed_body(magic_head: RelationAtom) -> tuple[object, ...]:
    raise EvaluationError(
        f"magic rule for {magic_head.name} has an empty body; "
        "a fully-free sub-adornment should not generate a magic rule"
    )


# ------------------------------------------------------------------- seeding
def seed_world(
    database: GeneralizedDatabase,
    plan: MagicPlan,
    query: MagicQuery,
) -> GeneralizedDatabase:
    """A copy of ``database`` with the plan's magic seed installed.

    The seed is one *generalized tuple* over the bound positions: the
    conjunction of every bound position's binding atoms plus the equality
    atoms linking bound positions forced equal by the query.  The tuple is
    canonicalized on insertion; an unsatisfiable binding leaves the seed
    relation empty, so the guarded cone (and hence the answer) is empty
    without evaluating anything.

    The source relations are *shared*, not copied -- ``evaluate`` copies
    its input database before deriving anything, so only the fresh seed
    relation is ever created here and the source database is not mutated.
    """
    world = GeneralizedDatabase(database.theory)
    for relation in database.relations():
        world.add_relation(relation)
    if plan.seed_name is None:
        return world
    theory = database.theory
    positions = plan.seed_positions
    variables = tuple(f"_m{i}" for i in range(len(positions)))
    by_position = dict(zip(positions, variables))
    seed = world.create_relation(plan.seed_name, variables)
    atoms: list[Atom] = []
    bindings = query.normalized_bindings(theory)
    for position, variable in zip(positions, variables):
        binding = bindings.get(position)
        if binding is not None:
            atoms.extend(binding.atoms_for(variable))
    for left, right in query.equalities:
        if left in by_position and right in by_position:
            atoms.append(theory.equality(by_position[left], by_position[right]))
    seed.add_tuple(tuple(atoms))
    return world


def select_answers(
    answer: GeneralizedRelation,
    query: MagicQuery,
    theory: ConstraintTheory,
    name: str | None = None,
) -> GeneralizedRelation:
    """Apply the query's binding selection to an answer relation.

    The magic guard guarantees *relevance*, not selection: every derived
    tuple overlaps the bindings, but its constraint may extend beyond them.
    Conjoining the selection atoms and re-canonicalizing lands the answers
    on exactly the canonical forms of full-fixpoint-then-filter.
    """
    selected = GeneralizedRelation(
        name or f"{query.predicate}_answers", answer.variables, theory
    )
    selection = query.selection_atoms(answer.variables, theory)
    for item in answer:
        selected.add_tuple(tuple(item.atoms) + selection)
    return selected


def answer_magic_query(
    rules: Sequence[Rule],
    query: MagicQuery,
    database: GeneralizedDatabase,
    max_iterations: int = 100_000,
) -> GeneralizedRelation:
    """Evaluate a bound query with the magic-set rewriting.

    Seeds the query's magic predicate with the bindings, runs the rewritten
    (or fallback) program, and returns the answer relation with the binding
    selection applied.  This is the minimal driver; :class:`repro.core.
    query.Engine` adds options, statistics, the plan cache and the
    containment-based result-reuse cache.
    """
    theory = database.theory
    plan = magic_plan(rules, query, theory)
    world = seed_world(database, plan, query)
    program = DatalogProgram(plan.rules, theory)
    result_world, _ = program.evaluate(world, max_iterations=max_iterations)
    answer = result_world.relation(plan.answer)
    return select_answers(answer, query, theory)
