"""Magic-set rewriting for Datalog + constraints.

The paper cites Ramakrishnan's magic templates [44] as prior work on
constraint-aware evaluation and asks in Section 6(3) how "various
optimization methods combine with our framework".  This module implements
the classical magic-set transformation in the generalized setting: given a
query ``q(c1, ..., ck, free...)`` with some arguments bound to constants,
the program is rewritten so that bottom-up evaluation only derives facts
*relevant* to those bindings -- the bindings flow through ``magic_``
predicates as ordinary generalized tuples (equality constraints), so the
same engine evaluates the rewritten program unchanged.

Construction (left-to-right sideways information passing):

* every IDB predicate occurrence gets an *adornment* -- a b/f string marking
  which argument positions are bound;
* each rule for an adorned predicate ``p^a`` is guarded by a body atom
  ``magic_p^a(bound args)``;
* for each IDB atom ``r`` in a rule body, a *magic rule* derives
  ``magic_r^b`` from the guard plus the literals to its left;
* the query's bindings seed the magic predicate of the query.

Soundness/completeness relative to the unrewritten program restricted to
the query bindings is the classical theorem; the tests check it by direct
comparison against the plain engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.constraints.base import ConstraintTheory
from repro.core.datalog import DatalogProgram, Rule
from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation
from repro.errors import EvaluationError
from repro.logic.syntax import Atom, RelationAtom


@dataclass(frozen=True)
class MagicQuery:
    """A query ``predicate(args)`` with some positions bound to constants.

    ``bindings`` maps argument positions (0-based) to domain constants.
    """

    predicate: str
    arity: int
    bindings: dict[int, Any]

    @property
    def adornment(self) -> str:
        return "".join(
            "b" if i in self.bindings else "f" for i in range(self.arity)
        )


def _magic_name(predicate: str, adornment: str) -> str:
    return f"_magic_{predicate}_{adornment}"


def _adorned_name(predicate: str, adornment: str) -> str:
    return f"{predicate}__{adornment}"


def magic_rewrite(
    rules: Sequence[Rule], query: MagicQuery, theory: ConstraintTheory
) -> tuple[list[Rule], str]:
    """Rewrite ``rules`` for the given query; returns (rules, answer predicate).

    Negation is not supported (the classical transformation is defined for
    positive programs); programs with negation raise.
    """
    for rule in rules:
        if rule.has_negation():
            raise EvaluationError("magic sets are defined for positive programs")
    idbs = {rule.head.name for rule in rules}
    if query.predicate not in idbs:
        raise EvaluationError(f"{query.predicate} is not an IDB predicate")
    rules_by_head: dict[str, list[Rule]] = {}
    for rule in rules:
        rules_by_head.setdefault(rule.head.name, []).append(rule)

    rewritten: list[Rule] = []
    processed: set[tuple[str, str]] = set()
    pending: list[tuple[str, str]] = [(query.predicate, query.adornment)]
    while pending:
        predicate, adornment = pending.pop()
        if (predicate, adornment) in processed:
            continue
        processed.add((predicate, adornment))
        for rule in rules_by_head.get(predicate, []):
            rewritten.extend(
                _rewrite_rule(rule, adornment, idbs, pending)
            )
    return rewritten, _adorned_name(query.predicate, query.adornment)


def _rewrite_rule(
    rule: Rule,
    adornment: str,
    idbs: set[str],
    pending: list[tuple[str, str]],
) -> list[Rule]:
    head_vars = rule.head.args
    bound_positions = [i for i, mark in enumerate(adornment) if mark == "b"]
    bound_vars = {head_vars[i] for i in bound_positions}
    guard = RelationAtom(
        _magic_name(rule.head.name, adornment),
        tuple(head_vars[i] for i in bound_positions),
    ) if bound_positions else None

    new_rules: list[Rule] = []
    prefix: list[object] = [guard] if guard else []
    known = set(bound_vars)
    body_out: list[object] = list(prefix)
    for literal in rule.body:
        if isinstance(literal, RelationAtom) and literal.name in idbs:
            # adorn by currently-known variables (left-to-right SIP)
            sub_adornment = "".join(
                "b" if arg in known else "f" for arg in literal.args
            )
            sub_bound = [
                arg for arg, mark in zip(literal.args, sub_adornment) if mark == "b"
            ]
            if sub_bound:
                magic_head = RelationAtom(
                    _magic_name(literal.name, sub_adornment), tuple(sub_bound)
                )
                new_rules.append(Rule(magic_head, tuple(body_out) or _seed_body(magic_head)))
            pending.append((literal.name, sub_adornment))
            body_out.append(
                RelationAtom(_adorned_name(literal.name, sub_adornment), literal.args)
            )
            known |= set(literal.args)
        elif isinstance(literal, RelationAtom):
            body_out.append(literal)
            known |= set(literal.args)
        else:
            assert isinstance(literal, Atom)
            body_out.append(literal)
            known |= literal.variables()
    adorned_head = RelationAtom(
        _adorned_name(rule.head.name, adornment), head_vars
    )
    new_rules.append(Rule(adorned_head, tuple(body_out)))
    return new_rules


def _seed_body(magic_head: RelationAtom) -> tuple[object, ...]:
    raise EvaluationError(
        f"magic rule for {magic_head.name} has an empty body; "
        "a fully-free sub-adornment should not generate a magic rule"
    )


def answer_magic_query(
    rules: Sequence[Rule],
    query: MagicQuery,
    database: GeneralizedDatabase,
    max_iterations: int = 100_000,
) -> GeneralizedRelation:
    """Evaluate a bound query with the magic-set rewriting.

    Seeds the query's magic predicate with the binding constants, runs the
    rewritten program, and returns the adorned answer relation with the
    binding selection applied.
    """
    theory = database.theory
    rewritten, answer_name = magic_rewrite(rules, query, theory)
    world = database.copy()
    if query.bindings:
        seed_name = _magic_name(query.predicate, query.adornment)
        positions = sorted(query.bindings)
        seed = world.create_relation(
            seed_name, tuple(f"_m{i}" for i in range(len(positions)))
        )
        seed.add_point([query.bindings[i] for i in positions])
    program = DatalogProgram(rewritten, theory)
    result_world, _ = program.evaluate(world, max_iterations=max_iterations)
    answer = result_world.relation(answer_name)
    # apply the binding selection to the answer (the magic guard guarantees
    # relevance, not selection)
    selected = GeneralizedRelation(
        f"{query.predicate}_answers", answer.variables, theory
    )
    binding_atoms = [
        theory.equality(answer.variables[i], theory.constant(value))
        for i, value in query.bindings.items()
    ]
    for item in answer:
        selected.add_tuple(tuple(item.atoms) + tuple(binding_atoms))
    return selected
