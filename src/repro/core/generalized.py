"""Generalized tuples, relations and databases (Definitions 1.3 and 1.4).

A generalized k-tuple is a finite conjunction of constraints over k
variables; a generalized relation of arity k is a finite set of generalized
k-tuples over the same variables (a DNF formula with at most k distinct
variables); a generalized database is a finite set of generalized relations.
Each generalized relation finitely represents a possibly infinite
*unrestricted* relation: the set of points of D^k satisfying its formula.

Tuples are stored canonicalized (via the theory's ``canonicalize``), which
deduplicates equivalent constraint conjunctions -- the mechanism behind
fixpoint termination in the Datalog engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.constraints.base import ConstraintTheory
from repro.errors import ArityError, UnknownRelationError
from repro.logic.syntax import Atom, Formula, conjoin, disjoin
from repro.runtime.budget import tick


@dataclass(frozen=True)
class GeneralizedTuple:
    """A generalized k-tuple: variables plus a conjunction of constraint atoms.

    The atom conjunction may mention only the tuple's variables (and domain
    constants).  Instances are immutable; equality is syntactic equality of
    the (canonicalized) atom set.
    """

    variables: tuple[str, ...]
    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        scope = set(self.variables)
        for atom in self.atoms:
            loose = atom.variables() - scope
            if loose:
                raise ArityError(
                    f"atom {atom} uses variables {sorted(loose)} outside the "
                    f"tuple scope {self.variables}"
                )

    def atom_set(self) -> frozenset[Atom]:
        return frozenset(self.atoms)

    def rename(self, targets: Sequence[str]) -> "GeneralizedTuple":
        """The same constraint over new variable names (positionally)."""
        if len(targets) != len(self.variables):
            raise ArityError(
                f"renaming arity mismatch: {self.variables} -> {tuple(targets)}"
            )
        mapping = dict(zip(self.variables, targets))
        return GeneralizedTuple(
            tuple(targets), tuple(atom.rename(mapping) for atom in self.atoms)
        )

    def holds(self, assignment: Mapping[str, Any]) -> bool:
        """Whether a point of D^k satisfies the conjunction."""
        return all(atom.holds(assignment) for atom in self.atoms)

    def formula(self) -> Formula:
        return conjoin(self.atoms) if self.atoms else conjoin(())

    def __str__(self) -> str:
        body = " and ".join(str(a) for a in self.atoms) or "true"
        return f"({', '.join(self.variables)}) where {body}"


class GeneralizedRelation:
    """A generalized relation: a named, finite set of generalized k-tuples."""

    def __init__(
        self,
        name: str,
        variables: Sequence[str],
        theory: ConstraintTheory,
        tuples: Iterable[GeneralizedTuple] = (),
    ) -> None:
        if len(set(variables)) != len(variables):
            raise ArityError(f"relation variables must be distinct: {variables}")
        self.name = name
        self.variables: tuple[str, ...] = tuple(variables)
        self.theory = theory
        self._tuples: dict[frozenset[Atom], GeneralizedTuple] = {}
        #: monotone content-version counter: bumped on every successful
        #: ``add``/``discard``, so derived results (e.g. the complement DNF a
        #: negated rule body needs) can be cached per (name, version) and
        #: reused until the relation actually changes
        self.version = 0
        #: monotone count of removal events (``discard``/``clear``).  The
        #: suffix-cursor index maintenance in :mod:`repro.indexing.pool`
        #: assumes relations only grow; a change in this counter tells the
        #: pool the append-only assumption broke and the index must rebuild.
        self.removals = 0
        for item in tuples:
            self.add(item)

    # -------------------------------------------------------------- contents
    @property
    def arity(self) -> int:
        return len(self.variables)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[GeneralizedTuple]:
        return iter(self._tuples.values())

    def tuples(self) -> list[GeneralizedTuple]:
        return list(self._tuples.values())

    def add(self, item: GeneralizedTuple) -> bool:
        """Add a generalized tuple (canonicalized); returns True if new.

        Unsatisfiable tuples denote the empty set and are dropped.
        """
        return self.add_canonical(item) is not None

    def add_canonical(self, item: GeneralizedTuple) -> GeneralizedTuple | None:
        """Like :meth:`add`, but returns the stored canonical tuple if new.

        Callers that need the canonical form (the semi-naive delta) reuse the
        tuple computed by the dedup instead of re-canonicalizing.
        """
        renamed = item.rename(self.variables) if item.variables != self.variables else item
        canonical = self.theory.canonicalize(renamed.atoms)
        if canonical is None:
            return None
        key = frozenset(canonical)
        if key in self._tuples:
            return None
        stored = GeneralizedTuple(self.variables, canonical)
        self._tuples[key] = stored
        self.version += 1
        # supervisor tick: one unit per generalized tuple actually admitted
        # (dropped/duplicate tuples are free)
        tick("tuple")
        return stored

    def adopt_canonical(self, item: GeneralizedTuple) -> GeneralizedTuple | None:
        """Insert a tuple that is *already* in this relation's canonical form.

        The incremental-maintenance delta relations shuttle canonical tuples
        the dedup already computed (they come out of ``add_canonical`` of a
        relation with the same variables); re-canonicalizing them would redo
        the theory work and re-tick the tuple budget for pure bookkeeping.
        The caller vouches for canonicality -- the atom set is used as the
        key verbatim.  Returns the stored tuple if new, None on a duplicate.
        """
        if item.variables != self.variables:
            item = item.rename(self.variables)
        key = frozenset(item.atoms)
        if key in self._tuples:
            return None
        self._tuples[key] = item
        self.version += 1
        return item

    def lookup(self, key: frozenset[Atom]) -> GeneralizedTuple | None:
        """The stored tuple with this canonical atom set, if present."""
        return self._tuples.get(key)

    def keys(self) -> list[frozenset[Atom]]:
        """The canonical atom-set keys (the relation's identity as a set)."""
        return list(self._tuples)

    def entries(self) -> list[tuple[frozenset[Atom], GeneralizedTuple]]:
        """(canonical key, stored tuple) pairs, in insertion order."""
        return list(self._tuples.items())

    def add_tuple(self, atoms: Iterable[Atom]) -> bool:
        """Add a tuple given as a conjunction of atoms over this relation's variables."""
        return self.add(GeneralizedTuple(self.variables, tuple(atoms)))

    def add_point(self, values: Sequence[Any]) -> bool:
        """Add a classical ground tuple, encoded with equality constraints
        (Example 1.5: the relational model is the special case)."""
        if len(values) != self.arity:
            raise ArityError(
                f"{self.name} has arity {self.arity}, got point {values!r}"
            )
        atoms = [
            self.theory.equality(var, self.theory.constant(value))
            for var, value in zip(self.variables, values)
        ]
        return self.add_tuple(atoms)

    def discard(self, item: GeneralizedTuple) -> bool:
        """Remove a tuple (by canonical form); returns True if present."""
        canonical = self.theory.canonicalize(item.rename(self.variables).atoms)
        if canonical is None:
            return False
        if self._tuples.pop(frozenset(canonical), None) is None:
            return False
        self.version += 1
        self.removals += 1
        return True

    def discard_key(self, key: frozenset[Atom]) -> GeneralizedTuple | None:
        """Remove by canonical key; returns the removed tuple if present."""
        removed = self._tuples.pop(key, None)
        if removed is not None:
            self.version += 1
            self.removals += 1
        return removed

    def clear(self) -> None:
        """Drop every tuple (a removal event: indexes over this relation rebuild)."""
        if self._tuples:
            self._tuples.clear()
            self.version += 1
            self.removals += 1

    # ------------------------------------------------------------- semantics
    def contains_point(self, assignment: Mapping[str, Any]) -> bool:
        """Whether the represented unrestricted relation contains the point."""
        return any(t.holds(assignment) for t in self)

    def contains_values(self, values: Sequence[Any]) -> bool:
        if len(values) != self.arity:
            raise ArityError(f"expected {self.arity} values, got {len(values)}")
        return self.contains_point(dict(zip(self.variables, values)))

    def formula(self) -> Formula:
        """The DNF formula phi_r corresponding to the relation (Def 1.3.3)."""
        return disjoin(t.formula() for t in self) if len(self) else disjoin(())

    def constants(self) -> frozenset:
        """All domain constants mentioned in the relation."""
        result: frozenset = frozenset()
        for item in self:
            result |= self.theory.conjunction_constants(item.atoms)
        return result

    def sample_points(self) -> list[dict[str, Any]]:
        """One satisfying point per tuple (where the theory can produce one)."""
        points = []
        for item in self:
            point = self.theory.sample_point(item.atoms, self.variables)
            if point is not None:
                points.append(point)
        return points

    def is_empty_representation(self) -> bool:
        return not self._tuples

    def copy(self, name: str | None = None) -> "GeneralizedRelation":
        return GeneralizedRelation(
            name or self.name, self.variables, self.theory, self.tuples()
        )

    def __str__(self) -> str:
        rows = "\n".join(f"  {t}" for t in self)
        return f"{self.name}({', '.join(self.variables)}):\n{rows or '  <empty>'}"


class GeneralizedDatabase:
    """A finite set of generalized relations over one constraint theory."""

    def __init__(self, theory: ConstraintTheory) -> None:
        self.theory = theory
        self._relations: dict[str, GeneralizedRelation] = {}

    def create_relation(
        self, name: str, variables: Sequence[str]
    ) -> GeneralizedRelation:
        if name in self._relations:
            raise ArityError(f"relation {name} already exists")
        relation = GeneralizedRelation(name, variables, self.theory)
        self._relations[name] = relation
        return relation

    def add_relation(self, relation: GeneralizedRelation) -> None:
        self._relations[relation.name] = relation

    def relation(self, name: str) -> GeneralizedRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(f"no relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def names(self) -> list[str]:
        return sorted(self._relations)

    def relations(self) -> list[GeneralizedRelation]:
        return [self._relations[name] for name in self.names()]

    def constants(self) -> frozenset:
        result: frozenset = frozenset()
        for relation in self._relations.values():
            result |= relation.constants()
        return result

    def copy(self) -> "GeneralizedDatabase":
        clone = GeneralizedDatabase(self.theory)
        for relation in self._relations.values():
            clone.add_relation(relation.copy())
        return clone
