"""The generalized relational algebra (Section 2.1).

"One can think of Tarski's procedure as a generalized relational algebra,
where all the operations are simple variants of the familiar database ones
except for projection.  Projection corresponds to quantifier elimination and
is the nontrivial operation."

Operators over generalized relations:

* ``select``    -- conjoin constraint atoms to every tuple (satisfiability-pruned);
* ``project``   -- existentially quantify dropped attributes (theory QE);
* ``join``      -- natural join: conjoin constraint parts over the union schema;
* ``union``     -- concatenate tuple sets (schemas must match);
* ``rename``    -- rename attributes;
* ``complement``-- the unrestricted-relation complement, via theory negation;
* ``difference``-- complement + join.

Each operator returns a new canonicalized generalized relation; together
they evaluate exactly the relational calculus (the calculus evaluator in
:mod:`repro.core.calculus` is their composition).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.calculus import complement_dnf
from repro.core.generalized import GeneralizedRelation, GeneralizedTuple
from repro.errors import ArityError, EvaluationError
from repro.logic.syntax import Atom


def select(
    relation: GeneralizedRelation,
    atoms: Iterable[Atom],
    name: str = "select",
) -> GeneralizedRelation:
    """Conjoin the constraint atoms to every generalized tuple."""
    extra = tuple(atoms)
    scope = set(relation.variables)
    for atom in extra:
        loose = atom.variables() - scope
        if loose:
            raise ArityError(
                f"selection constraint {atom} uses {sorted(loose)} outside "
                f"the schema {relation.variables}"
            )
    result = GeneralizedRelation(name, relation.variables, relation.theory)
    for item in relation:
        result.add_tuple(tuple(item.atoms) + extra)
    return result


def project(
    relation: GeneralizedRelation,
    attributes: Sequence[str],
    name: str = "project",
) -> GeneralizedRelation:
    """Projection = existential quantification of the dropped attributes.

    The nontrivial operation: each tuple's conjunction goes through the
    theory's quantifier elimination; the result is a DNF, i.e. possibly
    several output tuples per input tuple.
    """
    missing = [a for a in attributes if a not in relation.variables]
    if missing:
        raise ArityError(f"cannot project onto unknown attributes {missing}")
    drop = [v for v in relation.variables if v not in attributes]
    result = GeneralizedRelation(name, tuple(attributes), relation.theory)
    for item in relation:
        for conjunction in relation.theory.eliminate(item.atoms, drop):
            result.add(GeneralizedTuple(tuple(attributes), conjunction))
    return result


def rename(
    relation: GeneralizedRelation,
    mapping: Mapping[str, str],
    name: str = "rename",
) -> GeneralizedRelation:
    """Rename attributes (bijectively on the schema)."""
    new_variables = tuple(mapping.get(v, v) for v in relation.variables)
    result = GeneralizedRelation(name, new_variables, relation.theory)
    for item in relation:
        result.add(item.rename(new_variables))
    return result


def union(
    left: GeneralizedRelation,
    right: GeneralizedRelation,
    name: str = "union",
) -> GeneralizedRelation:
    """Set union of the represented point sets (same schema required)."""
    if left.variables != right.variables:
        raise ArityError(
            f"union schemas differ: {left.variables} vs {right.variables}"
        )
    result = GeneralizedRelation(name, left.variables, left.theory)
    for item in left:
        result.add(item)
    for item in right:
        result.add(item)
    return result


def join(
    left: GeneralizedRelation,
    right: GeneralizedRelation,
    name: str = "join",
) -> GeneralizedRelation:
    """Natural join: conjoin constraints over the union of the schemas.

    Shared attributes are identified by name (the generalized analogue of
    the equality join); unsatisfiable combinations are pruned.
    """
    if left.theory is not right.theory:
        raise EvaluationError("cannot join relations over different theories")
    right_only = [v for v in right.variables if v not in left.variables]
    schema = tuple(left.variables) + tuple(right_only)
    result = GeneralizedRelation(name, schema, left.theory)
    for left_item in left:
        for right_item in right:
            result.add_tuple(tuple(left_item.atoms) + tuple(right_item.atoms))
    return result


def complement(
    relation: GeneralizedRelation, name: str = "complement"
) -> GeneralizedRelation:
    """The complement of the represented (unrestricted) relation in D^k.

    Uses theory-level atom negation with satisfiability pruning; for the
    pointwise theories the result is again polynomially sized for fixed
    arity.
    """
    dnf = [tuple(item.atoms) for item in relation]
    result = GeneralizedRelation(name, relation.variables, relation.theory)
    for conjunction in complement_dnf(dnf, relation.theory):
        result.add_tuple(conjunction)
    return result


def difference(
    left: GeneralizedRelation,
    right: GeneralizedRelation,
    name: str = "difference",
) -> GeneralizedRelation:
    """Points of ``left`` not in ``right`` (same schema required)."""
    if left.variables != right.variables:
        raise ArityError(
            f"difference schemas differ: {left.variables} vs {right.variables}"
        )
    right_complement = complement(right, name="_not_right")
    result = GeneralizedRelation(name, left.variables, left.theory)
    for left_item in left:
        for other in right_complement:
            result.add_tuple(tuple(left_item.atoms) + tuple(other.atoms))
    return result
