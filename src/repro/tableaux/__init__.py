"""Tableau query programs with constraints and their containment (Section 2.2).

* :mod:`repro.tableaux.tableau` -- tagged untyped tableaux in normal form
  (T, C): a summary row, tagged rows of pairwise-distinct variables, and a
  conjunction of constraints (Figure 3's balanced-checkbook query is the
  canonical example);
* :mod:`repro.tableaux.affine` -- exact affine geometry over Q: row
  reduction, consistency, implication, and affine-subspace containment (the
  engine behind Theorem 2.6's NP procedure, via the fact that an affine
  space contained in a finite union of affine spaces is contained in one);
* :mod:`repro.tableaux.containment` -- symbol mappings, homomorphisms, the
  Theorem 2.6 containment decision for linear-equation tableaux, the
  Theorem 2.8 semiinterval counterexample, and evaluation of tableau queries
  over generalized databases;
* :mod:`repro.tableaux.reductions` -- the Theorem 2.7 reduction from
  AE-quantified boolean formulas to containment of quadratic-equation
  tableaux.
"""

from repro.tableaux.affine import LinearSystem
from repro.tableaux.containment import (
    contained_linear,
    evaluate_tableau,
    find_homomorphism,
    symbol_mappings,
)
from repro.tableaux.reductions import qbf_to_tableaux
from repro.tableaux.tableau import TableauQuery, TableauRow, checkbook_query

__all__ = [
    "LinearSystem",
    "TableauQuery",
    "TableauRow",
    "checkbook_query",
    "contained_linear",
    "evaluate_tableau",
    "find_homomorphism",
    "qbf_to_tableaux",
    "symbol_mappings",
]
