"""Tagged untyped tableau query programs with constraints (Section 2.2).

A tableau query is a nonrecursive Datalog rule presented as a table: the
*summary row* is the head, each *tagged row* is a database atom of the body,
and a conjunction of constraints accompanies the table.  In *normal form*
(T, C) every cell of T is a distinct variable and all gluing (repeated
variables, constants) is expressed inside C -- "this normal form is without
loss of generality, since the constraints in C can force any equalities of
the distinct symbols in T" (Section 2.2).

Constraints are polynomial sign conditions (linear equations for Theorem
2.6, quadratic for Theorem 2.7, orderings without arithmetic for Theorem
2.8 -- all are :class:`PolyAtom` instances).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.constraints.real_poly import PolyAtom, poly_eq
from repro.errors import ArityError
from repro.logic.syntax import RelationAtom
from repro.poly.polynomial import Polynomial

if TYPE_CHECKING:  # deferred: tableau <-> engine imports stay lazy at runtime
    from repro.core.datalog import Rule
    from repro.tableaux.affine import Equation


@dataclass(frozen=True)
class TableauRow:
    """A tagged row: predicate tag + the variables in its columns."""

    tag: str
    symbols: tuple[str, ...]


@dataclass
class TableauQuery:
    """A tableau query program in normal form (T, C).

    ``summary`` is the summary row (the head's variables); ``rows`` are the
    tagged rows; ``constraints`` is the conjunction C.  Construction checks
    normal form: all cells (summary + rows) hold pairwise distinct variables.
    """

    summary: tuple[str, ...]
    rows: tuple[TableauRow, ...]
    constraints: tuple[PolyAtom, ...] = ()
    name: str = "Q"

    def __post_init__(self) -> None:
        cells = list(self.summary)
        for row in self.rows:
            cells.extend(row.symbols)
        if len(set(cells)) != len(cells):
            raise ArityError(
                "tableau is not in normal form: cells must be pairwise "
                "distinct variables (use constraints to glue)"
            )

    # ------------------------------------------------------------ inspection
    def all_symbols(self) -> tuple[str, ...]:
        symbols = list(self.summary)
        for row in self.rows:
            symbols.extend(row.symbols)
        return tuple(symbols)

    def tags(self) -> dict[str, list[TableauRow]]:
        grouped: dict[str, list[TableauRow]] = {}
        for row in self.rows:
            grouped.setdefault(row.tag, []).append(row)
        return grouped

    def constraint_equations(self) -> "list[Equation]":
        """The constraints as affine equations (raises if not linear ``= 0``)."""
        from repro.tableaux.affine import equation

        equations: list[Equation] = []
        for atom in self.constraints:
            if atom.op != "=":
                raise ArityError(f"{atom} is not an equation")
            linear = atom.poly.as_linear()
            if linear is None:
                raise ArityError(f"{atom} is not linear")
            coeffs, constant = linear
            equations.append(equation(coeffs, -constant))
        return equations

    # ------------------------------------------------------------- as a rule
    def as_rule(self, head_name: str | None = None) -> "Rule":
        """The tableau as a nonrecursive Datalog rule."""
        from repro.core.datalog import Rule

        body: list[object] = [
            RelationAtom(row.tag, row.symbols) for row in self.rows
        ]
        body.extend(self.constraints)
        return Rule(RelationAtom(head_name or self.name, self.summary), tuple(body))

    def __str__(self) -> str:
        lines = [f"{self.name}({', '.join(self.summary)}) -- summary"]
        for row in self.rows:
            lines.append(f"  {row.tag}({', '.join(row.symbols)})")
        for atom in self.constraints:
            lines.append(f"  where {atom}")
        return "\n".join(lines)


def normalize(
    summary: Sequence[object],
    rows: Sequence[tuple[str, Sequence[object]]],
    constraints: Iterable[PolyAtom] = (),
    name: str = "Q",
) -> TableauQuery:
    """Build a normal-form tableau from a table with repeats and constants.

    Every cell gets a fresh variable; repeated symbols and constants become
    linear equality constraints, exactly the normal-form construction of
    Section 2.2.
    """
    fresh_counter = itertools.count()
    first_occurrence: dict[str, str] = {}
    extra: list[PolyAtom] = []

    def cell(symbol: object) -> str:
        fresh = f"_t{next(fresh_counter)}"
        if isinstance(symbol, str):
            if symbol in first_occurrence:
                extra.append(poly_eq(fresh, first_occurrence[symbol]))
            else:
                first_occurrence[symbol] = fresh
            return fresh
        extra.append(
            PolyAtom(
                Polynomial.variable(fresh) - Polynomial.constant(Fraction(symbol)),  # type: ignore[arg-type]
                "=",
            )
        )
        return fresh

    new_summary = tuple(cell(s) for s in summary)
    new_rows = tuple(
        TableauRow(tag, tuple(cell(s) for s in symbols)) for tag, symbols in rows
    )
    renamed_constraints: list[PolyAtom] = []
    for atom in constraints:
        mapping = {
            original: fresh for original, fresh in first_occurrence.items()
        }
        renamed_constraints.append(atom.rename(mapping))
    return TableauQuery(
        new_summary, new_rows, tuple(renamed_constraints) + tuple(extra), name
    )


def checkbook_query() -> TableauQuery:
    """The Figure 3 / Example 2.4 balanced-checkbook query.

    ``Balanced(z) :- Expenses(z, f, r, m), Savings(z, s), Income(z, w, i),
    f + r + m + s = w + i`` -- widths padded to the maximum arity 4 with
    fresh ("dash") variables, as in the figure.
    """
    x = Polynomial.variable
    balance = PolyAtom(
        x("f") + x("r") + x("m") + x("s") - x("w") - x("i"), "="
    )
    return normalize(
        summary=["z"],
        rows=[
            ("Expenses", ["z", "f", "r", "m"]),
            ("Savings", ["z", "s", "d1", "d2"]),
            ("Income", ["z", "w", "i", "d3"]),
        ],
        constraints=[balance],
        name="Balanced",
    )
