"""Exact affine geometry over the rationals.

A conjunction of linear equations describes an affine subspace of Q^n.  The
Theorem 2.6 containment procedure needs: consistency (is the space
nonempty), implication (does the system entail another equation), and
thereby affine-subspace containment.  All of it is Gaussian elimination with
:class:`fractions.Fraction` arithmetic -- no floating point anywhere.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, Mapping, Sequence

#: a linear equation ``sum coeffs[v] * v = constant``
Equation = tuple[dict[str, Fraction], Fraction]


def equation(coeffs: Mapping[str, int | Fraction], constant: int | Fraction) -> Equation:
    """Build a normalized equation, dropping zero coefficients."""
    clean = {v: Fraction(c) for v, c in coeffs.items() if Fraction(c)}
    return clean, Fraction(constant)


class LinearSystem:
    """A system of linear equations in row-echelon form.

    Rows are kept reduced against each other; adding an equation either
    extends the basis, is redundant, or makes the system inconsistent
    (``0 = c`` with ``c != 0``).
    """

    def __init__(self, equations: Iterable[Equation] = ()) -> None:
        #: pivot variable -> reduced row
        self._rows: dict[str, Equation] = {}
        self._consistent = True
        for coeffs, constant in equations:
            self.add(coeffs, constant)

    @property
    def consistent(self) -> bool:
        return self._consistent

    def rank(self) -> int:
        return len(self._rows)

    def add(self, coeffs: Mapping[str, int | Fraction], constant: int | Fraction) -> None:
        """Add an equation to the system."""
        if not self._consistent:
            return
        reduced_coeffs, reduced_constant = self._reduce(coeffs, constant)
        if not reduced_coeffs:
            if reduced_constant != 0:
                self._consistent = False
            return
        pivot = min(reduced_coeffs)  # deterministic pivot: least variable name
        pivot_value = reduced_coeffs[pivot]
        normalized = {
            v: c / pivot_value for v, c in reduced_coeffs.items()
        }
        normalized_constant = reduced_constant / pivot_value
        # back-substitute into existing rows
        for existing_pivot, (row_coeffs, row_constant) in list(self._rows.items()):
            factor = row_coeffs.get(pivot)
            if factor:
                new_coeffs = dict(row_coeffs)
                for v, c in normalized.items():
                    new_value = new_coeffs.get(v, Fraction(0)) - factor * c
                    if new_value:
                        new_coeffs[v] = new_value
                    else:
                        new_coeffs.pop(v, None)
                self._rows[existing_pivot] = (
                    new_coeffs,
                    row_constant - factor * normalized_constant,
                )
        self._rows[pivot] = (normalized, normalized_constant)

    def _reduce(
        self, coeffs: Mapping[str, int | Fraction], constant: int | Fraction
    ) -> Equation:
        """Reduce an equation modulo the current rows."""
        work = {v: Fraction(c) for v, c in coeffs.items() if Fraction(c)}
        value = Fraction(constant)
        for pivot, (row_coeffs, row_constant) in self._rows.items():
            factor = work.get(pivot)
            if factor:
                for v, c in row_coeffs.items():
                    new_value = work.get(v, Fraction(0)) - factor * c
                    if new_value:
                        work[v] = new_value
                    else:
                        work.pop(v, None)
                value -= factor * row_constant
        return work, value

    def implies(self, coeffs: Mapping[str, int | Fraction], constant: int | Fraction) -> bool:
        """Whether every solution of the system satisfies the equation.

        An inconsistent system (empty space) implies everything.
        """
        if not self._consistent:
            return True
        reduced_coeffs, reduced_constant = self._reduce(coeffs, constant)
        return not reduced_coeffs and reduced_constant == 0

    def implies_all(self, equations: Sequence[Equation]) -> bool:
        return all(self.implies(c, k) for c, k in equations)

    def solve_sample(self, variables: Sequence[str]) -> dict[str, Fraction] | None:
        """A solution with free variables set to 0 (None if inconsistent)."""
        return self.solve_generic(variables, lambda index: Fraction(0))

    def solve_generic(
        self, variables: Sequence[str], free_value: Callable[[int], "Fraction | int"]
    ) -> dict[str, Fraction] | None:
        """A solution with the i-th free variable set to ``free_value(i)``.

        Passing distinct values (e.g. large spread-out rationals) produces a
        *generic* point of the affine space -- the freeze valuation of the
        canonical-database technique, where accidental coincidences between
        frozen symbols must be avoided.
        """
        if not self._consistent:
            return None
        names: list[str] = list(variables)
        for pivot, (row_coeffs, _) in self._rows.items():
            if pivot not in names:
                names.append(pivot)
            for v in row_coeffs:
                if v not in names:
                    names.append(v)
        assignment: dict[str, Fraction] = {}
        free_index = 0
        for name in names:
            if name not in self._rows:
                assignment[name] = Fraction(free_value(free_index))
                free_index += 1
        # evaluate pivots from free variables: pivot + sum(other coeffs) = const
        for pivot, (row_coeffs, row_constant) in self._rows.items():
            value = row_constant
            for v, c in row_coeffs.items():
                if v != pivot:
                    value -= c * assignment[v]
            assignment[pivot] = value
        return assignment


def contains(space: LinearSystem, other: Sequence[Equation]) -> bool:
    """Whether the affine space of ``space`` is contained in that of ``other``.

    ``solutions(space) subseteq solutions(other)`` iff ``space`` implies every
    equation of ``other`` (or is empty).
    """
    return space.implies_all(list(other))
