"""Tableau containment: symbol mappings, homomorphisms, Theorem 2.6/2.8.

``phi1 contained in phi2`` iff for every input generalized database d, all
points of ``phi1[d]`` are points of ``phi2[d]``.  Lemma 2.5 characterizes
this as ``C1 implies h1(C2) or ... or hm(C2)`` over all symbol mappings; for
*linear equation* constraints the affine-union fact ("an affine space
contained in a finite union of affine spaces is contained in one member")
collapses the disjunction to a single homomorphism, giving the NP procedure
of Theorem 2.6: guess a symbol mapping, check affine containment in
polynomial time.

Theorem 2.8's counterexample (the homomorphism property fails for
semiinterval inequality tableaux) is provided as a constructor pair plus the
two witness databases from the proof.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, Sequence

from repro.constraints.dense_order import DenseOrderTheory
from repro.constraints.real_poly import PolyAtom, RealPolynomialTheory
from repro.core.datalog import DatalogProgram, Rule
from repro.core.generalized import GeneralizedDatabase, GeneralizedRelation
from repro.errors import ArityError
from repro.runtime.budget import tick
from repro.tableaux.affine import Equation, LinearSystem, contains, equation
from repro.tableaux.tableau import TableauQuery, TableauRow

SymbolMapping = dict[str, str]


def symbol_mappings(
    target: TableauQuery, source: TableauQuery
) -> Iterator[SymbolMapping]:
    """All symbol mappings from the symbols of ``target`` into ``source``.

    Per Section 2.2: the summary row of ``target`` maps positionally onto the
    summary row of ``source``, constants map to themselves (constants live in
    the constraints here, so only variables are mapped), and each tagged row
    of ``target`` maps onto a *similarly tagged* row of ``source``.  In
    normal form the cells are distinct variables, so a choice of row images
    determines the mapping with no clashes (Lemma 2.5's proof).

    The enumeration is lazy -- one recursive row choice at a time, one
    ambient budget ``tick("join")`` per candidate row -- so a consumer that
    stops early (``find_homomorphism`` returning its first witness) never
    pays for the full product, and adversarial tableaux with many
    similarly-tagged rows degrade gracefully under a supervisor budget
    instead of materializing an exponential choice list.
    """
    if len(target.summary) != len(source.summary):
        return
    source_rows_by_tag = source.tags()
    choices: list[list[TableauRow]] = []
    for row in target.rows:
        candidates = [
            candidate
            for candidate in source_rows_by_tag.get(row.tag, [])
            if len(candidate.symbols) == len(row.symbols)
        ]
        if not candidates:
            return
        choices.append(candidates)

    base: SymbolMapping = dict(zip(target.summary, source.summary))

    def extend(index: int, mapping: SymbolMapping) -> Iterator[SymbolMapping]:
        if index == len(choices):
            yield dict(mapping)
            return
        row = target.rows[index]
        for image in choices[index]:
            tick("join")
            extended = dict(mapping)
            for symbol, image_symbol in zip(row.symbols, image.symbols):
                extended[symbol] = image_symbol
            yield from extend(index + 1, extended)

    yield from extend(0, base)


def _apply_mapping(
    constraints: Sequence[PolyAtom], mapping: SymbolMapping
) -> list[PolyAtom]:
    return [atom.rename(mapping) for atom in constraints]


def find_homomorphism(
    container: TableauQuery, contained: TableauQuery
) -> SymbolMapping | None:
    """A homomorphism witnessing ``contained subseteq container`` (Thm 2.6).

    A symbol mapping h from ``container`` to ``contained`` is a homomorphism
    when ``C_contained`` implies ``h(C_container)``; for linear equation
    constraints the implication is exact affine containment.
    """
    system = LinearSystem(contained.constraint_equations())
    for mapping in symbol_mappings(container, contained):
        mapped_equations: list[Equation] = []
        ok = True
        for atom in _apply_mapping(container.constraints, mapping):
            if atom.op != "=":
                ok = False
                break
            linear = atom.poly.as_linear()
            if linear is None:
                ok = False
                break
            coeffs, constant = linear
            mapped_equations.append(equation(coeffs, -constant))
        if not ok:
            continue
        if contains(system, mapped_equations):
            return mapping
    return None


def contained_linear(phi1: TableauQuery, phi2: TableauQuery) -> bool:
    """Decide ``phi1 subseteq phi2`` for linear-equation tableaux (Thm 2.6).

    By the homomorphism property, containment holds iff some symbol mapping
    from ``phi2`` to ``phi1`` is a homomorphism.  (If ``C1`` is inconsistent
    ``phi1`` is empty and trivially contained.)
    """
    system = LinearSystem(phi1.constraint_equations())
    if not system.consistent:
        return True
    return find_homomorphism(phi2, phi1) is not None


# ------------------------------------------------------------------ evaluation
def evaluate_tableau(
    query: TableauQuery, database: GeneralizedDatabase
) -> GeneralizedRelation:
    """Evaluate a tableau query over a generalized database.

    The tableau is one nonrecursive Datalog rule; evaluation goes through the
    standard engine.
    """
    program = DatalogProgram([query.as_rule("_tableau_out")], database.theory)
    world, _ = program.evaluate(database)
    return world.relation("_tableau_out")


# ---------------------------------------------------------------- Theorem 2.8
def semiinterval_counterexample() -> (
    "tuple[Rule, Rule, GeneralizedDatabase, GeneralizedDatabase]"
):
    """The two semiinterval queries of the Theorem 2.8 proof.

    phi1:  R''(u) :- R'(u), R(x, y), R(y, z), x < 4, z > 4
    phi2:  R''(u) :- R'(u), R(v, w), v < 4, w > 4

    ``phi1 subseteq phi2`` holds, yet no single symbol mapping is a
    homomorphism -- the homomorphism property fails for semiinterval
    inequality tableaux.  Returns (phi1, phi2) built over the dense-order
    theory as Datalog rules, plus the two witness databases of the proof.
    """
    from repro.constraints.dense_order import gt, lt
    from repro.logic.syntax import RelationAtom

    phi1 = Rule(
        RelationAtom("Rpp", ("u",)),
        (
            RelationAtom("Rp", ("u",)),
            RelationAtom("R", ("x", "y")),
            RelationAtom("R", ("y2", "z")),
            lt("x", 4),
            gt("z", 4),
            DenseOrderTheory().equality("y", "y2"),
        ),
    )
    phi2 = Rule(
        RelationAtom("Rpp", ("u",)),
        (
            RelationAtom("Rp", ("u",)),
            RelationAtom("R", ("v", "w")),
            lt("v", 4),
            gt("w", 4),
        ),
    )
    order = DenseOrderTheory()
    witness1 = GeneralizedDatabase(order)
    r1 = witness1.create_relation("R", ("a", "b"))
    r1.add_point([1, 3])
    r1.add_point([3, 5])
    witness1.create_relation("Rp", ("a",)).add_point([7])
    witness2 = GeneralizedDatabase(order)
    r2 = witness2.create_relation("R", ("a", "b"))
    r2.add_point([1, 5])
    r2.add_point([5, 9])
    witness2.create_relation("Rp", ("a",)).add_point([7])
    return phi1, phi2, witness1, witness2


def rule_output(rule: Rule, database: GeneralizedDatabase) -> GeneralizedRelation:
    """Evaluate a single nonrecursive rule over a database."""
    program = DatalogProgram([rule], database.theory)
    world, _ = program.evaluate(database)
    return world.relation(rule.head.name)


def canonical_database(
    query: TableauQuery, theory: RealPolynomialTheory | None = None
) -> tuple[GeneralizedDatabase, dict[str, Fraction]] | None:
    """The *frozen* canonical database of a tableau (the Lemma 2.5 witness).

    Solve the constraint system C for one satisfying valuation theta, and
    build the database whose relations contain exactly the frozen rows
    theta(row).  The classical fact: phi1 is contained in phi2 iff phi2
    applied to freeze(phi1) yields theta(summary of phi1) -- the tests use
    this to cross-validate the Theorem 2.6 homomorphism decision.

    Returns None when C is inconsistent (the query is empty).
    """
    theory = theory or RealPolynomialTheory()
    system = LinearSystem(query.constraint_equations())
    if not system.consistent:
        return None
    # generic freeze: free variables get distinct, spread-out values so that
    # frozen symbols only coincide when the constraints force them to
    valuation = system.solve_generic(
        query.all_symbols(), lambda index: Fraction(10_007 * (index + 1), 1)
    )
    for symbol in query.all_symbols():
        valuation.setdefault(symbol, Fraction(0))
    db = GeneralizedDatabase(theory)
    arities: dict[str, int] = {}
    for row in query.rows:
        arities.setdefault(row.tag, len(row.symbols))
        if arities[row.tag] != len(row.symbols):
            raise ArityError(f"tag {row.tag} used with two arities")
    for tag, arity in arities.items():
        db.create_relation(tag, tuple(f"_c{i}" for i in range(arity)))
    for row in query.rows:
        db.relation(row.tag).add_point([valuation[s] for s in row.symbols])
    return db, valuation


def contained_by_canonical_database(
    phi1: TableauQuery, phi2: TableauQuery
) -> bool:
    """Decide containment by the freeze technique (cross-validation only).

    ``phi1 subseteq phi2`` iff evaluating phi2 over freeze(phi1) produces
    phi1's frozen summary row.  Exact for equation constraints whose
    canonical valuation is generic; the tests use it against
    :func:`contained_linear` on random instances.
    """
    frozen = canonical_database(phi1)
    if frozen is None:
        return True  # empty query contained everywhere
    db, valuation = frozen
    # phi2 must mention only tags/arities present in the frozen database
    for row in phi2.rows:
        if row.tag not in db:
            return False
        if db.relation(row.tag).arity != len(row.symbols):
            return False
    output = evaluate_tableau(phi2, db)
    summary_values = [valuation[s] for s in phi1.summary]
    if len(phi2.summary) != len(summary_values):
        return False
    return output.contains_values(summary_values)
