"""The Theorem 2.7 reduction: AE-QBF to quadratic-tableau containment.

Given a quantified boolean formula ``forall xs exists ys psi(xs, ys)`` (with
negation pushed to the leaves), the construction produces two constraint-only
tableau queries:

* ``phi2``: ``R(xs) :- x_i(1-x_i)=0, y_j(1-y_j)=0, chi(xs, ys, ss)`` whose
  output is the set of 0/1 vectors ``xs`` for which some 0/1 ``ys`` makes
  ``psi`` true;
* ``phi1``: ``R(xs) :- x_i(1-x_i)=0`` whose output is all 0/1 vectors;

so ``phi1 subseteq phi2`` iff the QBF is true.  The gadget ``chi`` assigns a
fresh variable ``s_k`` to every subformula ``F_k`` with the quadratic
equations

* ``s_k = s_i + s_j``   if ``F_k = F_i and F_j``
* ``s_k = s_i * s_j``   if ``F_k = F_i or F_j``
* ``s_k = 1 - x_i`` / ``1 - y_j``   for positive literals
* ``s_k = x_i`` / ``y_j``           for negated literals
* ``s_top = 0``

so that (by induction, with all values nonnegative) ``F_k`` is true iff
``s_k = 0``.

Because both queries are constraint-only (no database atoms), containment is
plain set inclusion of their outputs, which this module can also *decide*
for small instances by brute force over 0/1 vectors -- used to validate the
reduction against a direct QBF decision procedure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.constraints.real_poly import PolyAtom
from repro.poly.polynomial import Polynomial
from repro.tableaux.tableau import TableauQuery


# ------------------------------------------------------------ formula syntax
@dataclass(frozen=True)
class BVarRef:
    """A literal: variable index into xs (universal) or ys (existential)."""

    kind: str  # "x" or "y"
    index: int
    negated: bool = False


@dataclass(frozen=True)
class BNode:
    """An internal and/or node."""

    op: str  # "and" | "or"
    left: "BNode | BVarRef"
    right: "BNode | BVarRef"


BFormula = BNode | BVarRef


def eval_bformula(formula: BFormula, xs: Sequence[bool], ys: Sequence[bool]) -> bool:
    if isinstance(formula, BVarRef):
        value = xs[formula.index] if formula.kind == "x" else ys[formula.index]
        return (not value) if formula.negated else value
    left = eval_bformula(formula.left, xs, ys)
    right = eval_bformula(formula.right, xs, ys)
    return (left and right) if formula.op == "and" else (left or right)


def qbf_ae_truth(formula: BFormula, n_x: int, n_y: int) -> bool:
    """Brute-force decision of ``forall xs exists ys psi``."""
    for xs in itertools.product([False, True], repeat=n_x):
        if not any(
            eval_bformula(formula, xs, ys)
            for ys in itertools.product([False, True], repeat=n_y)
        ):
            return False
    return True


# ------------------------------------------------------------- the reduction
def chi_constraints(
    formula: BFormula, n_x: int, n_y: int
) -> tuple[list[PolyAtom], dict[BFormula, str]]:
    """The gadget chi(xs, ys, ss): one fresh s-variable per subformula."""
    constraints: list[PolyAtom] = []
    names: dict[int, str] = {}
    counter = itertools.count()

    def x_poly(ref: BVarRef) -> Polynomial:
        base = Polynomial.variable(
            f"x{ref.index}" if ref.kind == "x" else f"y{ref.index}"
        )
        return base if ref.negated else (Polynomial.one() - base)

    def visit(node: BFormula) -> Polynomial:
        """Returns the polynomial for s_node, adding its defining equation."""
        s_name = f"s{next(counter)}"
        s = Polynomial.variable(s_name)
        if isinstance(node, BVarRef):
            constraints.append(PolyAtom(s - x_poly(node), "="))
        else:
            left = visit(node.left)
            right = visit(node.right)
            if node.op == "and":
                constraints.append(PolyAtom(s - left - right, "="))
            else:
                constraints.append(PolyAtom(s - left * right, "="))
        names[id(node)] = s_name
        return s

    top = visit(formula)
    constraints.append(PolyAtom(top, "="))  # s_top = 0
    return constraints, names  # type: ignore[return-value]


def _zero_one(poly_name: str) -> PolyAtom:
    """The constraint ``v (1 - v) = 0`` restricting v to {0, 1}."""
    v = Polynomial.variable(poly_name)
    return PolyAtom(v * (Polynomial.one() - v), "=")


def qbf_to_tableaux(
    formula: BFormula, n_x: int, n_y: int
) -> tuple[TableauQuery, TableauQuery]:
    """The pair (phi1, phi2) of Theorem 2.7.

    ``phi1 subseteq phi2`` iff ``forall xs exists ys psi`` is true.
    """
    xs = [f"x{i}" for i in range(n_x)]
    phi1 = TableauQuery(
        summary=tuple(xs),
        rows=(),
        constraints=tuple(_zero_one(x) for x in xs),
        name="phi1",
    )
    constraints = [_zero_one(x) for x in xs]
    constraints.extend(_zero_one(f"y{j}") for j in range(n_y))
    chi, _ = chi_constraints(formula, n_x, n_y)
    constraints.extend(chi)
    phi2 = TableauQuery(
        summary=tuple(xs), rows=(), constraints=tuple(constraints), name="phi2"
    )
    return phi1, phi2


def tableau_output_01(query: TableauQuery, n_x: int) -> set[tuple[int, ...]]:
    """The 0/1 vectors in the output of a constraint-only tableau.

    Decided by brute force: enumerate 0/1 assignments of the summary
    variables and check satisfiability of the remaining (existential)
    constraint system by propagating the s-equations bottom-up.  Used to
    validate the reduction on small instances.
    """
    from repro.constraints.real_poly import RealPolynomialTheory

    theory = RealPolynomialTheory()
    result: set[tuple[int, ...]] = set()
    summary = query.summary
    other = sorted(
        {
            v
            for atom in query.constraints
            for v in atom.poly.variables()
            if v not in summary
        }
    )
    y_vars = [v for v in other if v.startswith("y")]
    s_vars = [v for v in other if v.startswith("s")]
    for bits in itertools.product([0, 1], repeat=len(summary)):
        x_assignment = dict(zip(summary, bits))
        satisfied = False
        for y_bits in itertools.product([0, 1], repeat=len(y_vars)):
            assignment = dict(x_assignment)
            assignment.update(zip(y_vars, y_bits))
            # the s-equations are a triangular system: solve them in order
            if _solve_s_chain(query.constraints, assignment, s_vars):
                satisfied = True
                break
        if satisfied:
            result.add(bits)
    return result


def _solve_s_chain(
    constraints: Sequence[PolyAtom], assignment: dict, s_vars: list[str]
) -> bool:
    """Propagate s-variable values through the chi equations; check all."""
    values = dict(assignment)
    remaining = list(constraints)
    progress = True
    while progress:
        progress = False
        still = []
        for atom in remaining:
            unknowns = [v for v in atom.poly.variables() if v not in values]
            if not unknowns:
                if atom.poly.evaluate(values) != 0:
                    return False
                progress = True
                continue
            if len(unknowns) == 1 and atom.op == "=":
                # s - f(known) = 0 with s linear: solve for it
                (unknown,) = unknowns
                coeffs = atom.poly.coefficients_in(unknown)
                if len(coeffs) == 2 and coeffs[1].is_constant():
                    known_part = coeffs[0].evaluate(values)
                    lead = coeffs[1].constant_value()
                    values[unknown] = -known_part / lead
                    progress = True
                    continue
            still.append(atom)
        remaining = still
    return not remaining
